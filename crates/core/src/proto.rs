//! The composition-server wire protocol: one request/response surface
//! shared by the `knitc` CLI, in-process [`SessionHandle`]s, and the
//! [`server`](crate::server) daemon.
//!
//! Every `knitc` subcommand — build, lint, explain, pgo-suggest, watch —
//! reduces to a sequence of [`Request`]s and renders the resulting
//! [`Response`]s; whether those requests are handled by an in-process
//! [`Engine`](crate::server::Engine) or travel over a socket to a running
//! `knitc serve` daemon is invisible to the command logic. The wire format
//! is newline-delimited JSON: one request per line, one response per line,
//! plus asynchronous [`Response::Event`] lines on watch-subscribed
//! connections.
//!
//! The codec is hand-rolled in the same style as `machine::Profile`'s (the
//! build environment vendors no serialization crates): a stable writer with
//! fixed key order — so `crates/core/tests/proto.rs` can pin request and
//! response bytes — and a small JSON value parser that keeps unsigned
//! integers as exact `u64`s (session fingerprints and image hashes do not
//! survive an `f64` round trip).
//!
//! Versioning: every connection opens with [`Request::Hello`] carrying
//! [`VERSION`]; a mismatch is rejected with a `K0016` diagnostic before any
//! other request is honored. Malformed or unknown requests are `K0017`.
//!
//! [`SessionHandle`]: crate::session::SessionHandle

use std::collections::BTreeMap;
use std::time::Duration;

use cobj::image::{CallTarget, RInstr, SymbolLoc};
use cobj::ir::{BinOp, Reg, UnOp, Width};
use cobj::{Image, ImageFunc};

use crate::analyze::LintLevel;
use crate::diag::{Diagnostic, Severity};
use crate::driver::BuildReport;

/// Protocol version. Bumped on any incompatible change to the wire types;
/// the [`Request::Hello`] handshake rejects mismatches with a `K0016`
/// diagnostic.
pub const VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// wire types
// ---------------------------------------------------------------------------

/// Build options as they travel over the wire — a plain-data mirror of
/// [`BuildOptions`](crate::BuildOptions) (the layout profile rides along as
/// its JSON encoding, [`BuildOptions::jobs`](crate::BuildOptions) as
/// `None` = "server default").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionOptions {
    /// Name of the root unit.
    pub root: String,
    /// Entry member ([`BuildOptions::entry`](crate::BuildOptions)).
    pub entry: Option<String>,
    /// Run the constraint checker.
    pub check_constraints: bool,
    /// Honor `flatten` markers.
    pub flatten: bool,
    /// Compile parallelism; `None` leaves the handler's default.
    pub jobs: Option<usize>,
    /// Compiler flags for units that name no `flags` declaration.
    /// Empty = keep the handler's default (`-O2`).
    pub default_flags: Vec<String>,
    /// Names the runtime provides. Empty = the handler's default
    /// (`machine::runtime_symbols()`).
    pub runtime_symbols: Vec<String>,
    /// A `machine::Profile` JSON document driving profile-guided layout.
    pub profile: Option<String>,
}

impl SessionOptions {
    /// Options for building `root` with every knob at its default.
    pub fn new(root: impl Into<String>) -> SessionOptions {
        SessionOptions {
            root: root.into(),
            entry: None,
            check_constraints: true,
            flatten: true,
            jobs: None,
            default_flags: Vec::new(),
            runtime_symbols: Vec::new(),
            profile: None,
        }
    }
}

/// Lint configuration as it travels over the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintOptions {
    /// Per-lint level overrides, `(lint name, level)`, applied in order.
    /// Unknown names are rejected by the handler with `K0003`.
    pub overrides: Vec<(String, LintLevel)>,
    /// Promote surviving warnings to errors (`--deny warnings`).
    pub deny_warnings: bool,
}

/// One request on the composition-server protocol.
///
/// Every variant that touches a session names it explicitly — connections
/// are stateless beyond the version handshake, so any client can address
/// any session and requests from different connections interleave freely
/// (the server serializes per-session work on the session's own lock).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake; must be the first request on a connection.
    Hello {
        /// The client's [`VERSION`].
        version: u32,
    },
    /// Create (or reconfigure) the named session.
    Open {
        /// Session name; creates it if absent.
        session: String,
        /// Build options to (re)configure the session with.
        options: SessionOptions,
    },
    /// Register a `.unit` file's declarations (duplicates are errors).
    LoadUnits {
        /// Target session.
        session: String,
        /// `.unit` file name (becomes the diagnostic span file).
        file: String,
        /// File contents.
        text: String,
    },
    /// Re-register a `.unit` file, replacing same-named declarations.
    UpdateUnit {
        /// Target session.
        session: String,
        /// `.unit` file name.
        file: String,
        /// File contents.
        text: String,
    },
    /// Add or replace one C source or header.
    UpdateSource {
        /// Target session.
        session: String,
        /// Source-tree path.
        path: String,
        /// File contents.
        text: String,
    },
    /// Build (or incrementally rebuild) the session's image.
    Build {
        /// Target session.
        session: String,
        /// Ship the full image back ([`Response::Built`]'s `image`), for
        /// clients that run or inspect it. Off by default: the
        /// [`BuildOutcome`] (with its stable image hash) is usually
        /// enough, and images are large.
        want_image: bool,
    },
    /// Run the cross-unit lints over the session.
    Lint {
        /// Target session.
        session: String,
        /// Lint level configuration.
        config: LintOptions,
    },
    /// Describe a diagnostic code (errors and lints alike).
    Explain {
        /// The code, e.g. `K0011`.
        code: String,
    },
    /// Build and run the PGO flatten advisor over the given profile.
    PgoSuggest {
        /// Target session.
        session: String,
        /// A `machine::Profile` JSON document.
        profile: String,
    },
    /// Subscribe this connection to the session's build events.
    Watch {
        /// Session whose builds to stream.
        session: String,
    },
    /// Drop the named session (its memoized artifacts are freed; the
    /// shared compile cache keeps its entries).
    Close {
        /// Session to drop.
        session: String,
    },
    /// Liveness probe.
    Ping,
    /// Stop the server after draining in-flight requests.
    Shutdown,
}

/// Everything a build produced, minus the image itself: the plain-data
/// mirror of [`BuildReport`] that travels over the wire. The image is
/// identified by `image_hash` (and optionally shipped alongside, see
/// [`Request::Build`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BuildOutcome {
    /// Root unit that was built.
    pub root: String,
    /// Atomic unit instances linked.
    pub instances: usize,
    /// Distinct units that ran the compiler this build.
    pub units_compiled: usize,
    /// Distinct units whose objects were reused (cache or session memo).
    pub units_reused: usize,
    /// Objects handed to the final link.
    pub objects: usize,
    /// Flatten groups merged.
    pub flatten_groups: usize,
    /// Total text bytes of the image.
    pub text_size: u64,
    /// Units served from the shared compile cache.
    pub cache_hits: usize,
    /// Units that went through the compiler.
    pub cache_misses: usize,
    /// Parallelism the build ran with.
    pub jobs: usize,
    /// Stable hash of the produced image (see [`image_hash`]) — equal
    /// exactly when the images are byte-identical.
    pub image_hash: u64,
    /// Per-phase wall-clock times, `(phase, microseconds)`.
    pub phases: Vec<(String, u64)>,
    /// The initializer schedule, as `path.func` strings.
    pub schedule: Vec<String>,
    /// Constraint totals when checking ran:
    /// `(constraints, vars, annotated_units)`.
    pub constraints: Option<(usize, usize, usize)>,
    /// Root export members: `"port.member"` → link-level symbol.
    pub exports: Vec<(String, String)>,
    /// Per-unit compile record: `(unit, microseconds, reused)`.
    pub unit_compiles: Vec<(String, u64, bool)>,
    /// Every source-tree path the session's compiles consulted (the
    /// dependency ledger union) — what a file watcher needs to poll.
    pub watched: Vec<String>,
}

impl BuildOutcome {
    /// Project a [`BuildReport`] onto its wire form. `watched` is the
    /// session's dependency-ledger union
    /// ([`SessionHandle::watched_paths`](crate::session::SessionHandle::watched_paths)).
    pub fn from_report(report: &BuildReport, watched: Vec<String>) -> BuildOutcome {
        let micros = |d: &Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        BuildOutcome {
            root: report.elaboration.root.clone(),
            instances: report.stats.instances,
            units_compiled: report.stats.units_compiled,
            units_reused: report.stats.units_reused,
            objects: report.stats.objects,
            flatten_groups: report.stats.flatten_groups,
            text_size: report.stats.text_size,
            cache_hits: report.stats.cache_hits,
            cache_misses: report.stats.cache_misses,
            jobs: report.jobs,
            image_hash: image_hash(&report.image),
            phases: report.phases.iter().map(|(n, d)| (n.to_string(), micros(d))).collect(),
            schedule: report.schedule.clone(),
            constraints: report
                .constraints
                .as_ref()
                .map(|c| (c.constraints, c.vars, c.annotated_units)),
            exports: report.exports.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            unit_compiles: report
                .unit_compiles
                .iter()
                .map(|u| (u.unit.clone(), micros(&u.duration), u.cache_hit))
                .collect(),
            watched,
        }
    }
}

/// One streamed build notification (see [`Request::Watch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildEvent {
    /// Session that built.
    pub session: String,
    /// Per-session sequence number, starting at 1 and gap-free — a
    /// subscriber that sees `seq` jump has lost events.
    pub seq: u64,
    /// Whether the build succeeded.
    pub ok: bool,
    /// Units recompiled (successful builds).
    pub units_compiled: usize,
    /// Units reused (successful builds).
    pub units_reused: usize,
    /// Image text bytes (successful builds).
    pub text_size: u64,
    /// Stable image hash (successful builds; 0 on failure).
    pub image_hash: u64,
}

/// One response on the composition-server protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted; carries the server's [`VERSION`].
    Hello {
        /// The server's protocol version.
        version: u32,
    },
    /// Generic success for state-changing requests.
    Ok,
    /// A session was opened ([`Request::Open`]): `created` distinguishes a
    /// fresh session from reconfiguring an existing one (clients use this
    /// to pick [`Request::LoadUnits`] — duplicate-detecting — vs
    /// [`Request::UpdateUnit`] — redefining).
    Opened {
        /// True when the session did not exist before this request.
        created: bool,
    },
    /// A build completed ([`Request::Build`]).
    Built {
        /// The build's wire-level report.
        outcome: BuildOutcome,
        /// Hex encoding of the image ([`encode_image`]) when the request
        /// set `want_image`.
        image: Option<String>,
    },
    /// Lints ran ([`Request::Lint`]).
    Linted {
        /// Distinct units analyzed.
        units_analyzed: usize,
        /// Warning-severity count (after level configuration).
        warnings: usize,
        /// Error-severity count (after level configuration).
        errors: usize,
        /// The diagnostics, in canonical order.
        diagnostics: Vec<Diagnostic>,
    },
    /// A diagnostic code was resolved ([`Request::Explain`]).
    Explained {
        /// The code.
        code: String,
        /// One-line summary.
        summary: String,
        /// Minimal triggering example.
        example: String,
        /// `(name, default level)` when the code is a lint.
        lint: Option<(String, LintLevel)>,
    },
    /// The PGO advisor ran ([`Request::PgoSuggest`]); carries its
    /// rendered report.
    Suggested {
        /// `PgoReport::render()` output.
        text: String,
    },
    /// The connection is now subscribed to a session's build events.
    Subscribed {
        /// The watched session.
        session: String,
    },
    /// An asynchronous build notification on a watch-subscribed
    /// connection.
    Event(BuildEvent),
    /// The request failed; diagnostics in canonical order.
    Error {
        /// Structured diagnostics (same shapes as `--error-format=json`).
        diagnostics: Vec<Diagnostic>,
    },
    /// Liveness reply.
    Pong,
    /// The server acknowledged [`Request::Shutdown`] and is draining.
    Bye,
}

impl Response {
    /// Build the canonical rejection for a request kind this endpoint
    /// cannot serve: a single spanless diagnostic with the given code.
    pub fn error(code: &'static str, message: impl Into<String>, notes: Vec<String>) -> Response {
        Response::Error {
            diagnostics: vec![Diagnostic {
                code,
                severity: Severity::Error,
                message: message.into(),
                span: None,
                notes,
            }],
        }
    }

    /// The version-mismatch rejection mandated by the handshake.
    pub fn version_mismatch(client: u32) -> Response {
        Response::error(
            "K0016",
            format!(
                "protocol version mismatch: client speaks v{client}, server speaks v{}",
                VERSION
            ),
            vec![format!("upgrade so both ends speak protocol v{}", VERSION)],
        )
    }

    /// The malformed-request rejection.
    pub fn malformed(what: impl std::fmt::Display) -> Response {
        Response::error(
            "K0017",
            format!("malformed protocol request: {what}"),
            vec!["see docs/protocol.md for the wire format".to_string()],
        )
    }
}

// ---------------------------------------------------------------------------
// serialization: stable writers
// ---------------------------------------------------------------------------

fn js(out: &mut String, s: &str) {
    machine::profile::json_string(out, s);
}

fn lint_level_str(l: LintLevel) -> &'static str {
    match l {
        LintLevel::Allow => "allow",
        LintLevel::Warn => "warn",
        LintLevel::Deny => "deny",
    }
}

fn lint_level_parse(s: &str) -> Result<LintLevel, String> {
    match s {
        "allow" => Ok(LintLevel::Allow),
        "warn" => Ok(LintLevel::Warn),
        "deny" => Ok(LintLevel::Deny),
        other => Err(format!("bad lint level `{other}`")),
    }
}

fn write_options(out: &mut String, o: &SessionOptions) {
    out.push_str("{\"root\":");
    js(out, &o.root);
    out.push_str(",\"entry\":");
    match &o.entry {
        Some(e) => js(out, e),
        None => out.push_str("null"),
    }
    out.push_str(&format!(
        ",\"check_constraints\":{},\"flatten\":{}",
        o.check_constraints, o.flatten
    ));
    out.push_str(",\"jobs\":");
    match o.jobs {
        Some(j) => out.push_str(&j.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"default_flags\":");
    write_str_array(out, &o.default_flags);
    out.push_str(",\"runtime_symbols\":");
    write_str_array(out, &o.runtime_symbols);
    out.push_str(",\"profile\":");
    match &o.profile {
        Some(p) => js(out, p),
        None => out.push_str("null"),
    }
    out.push('}');
}

fn write_str_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        js(out, s);
    }
    out.push(']');
}

fn write_outcome(out: &mut String, o: &BuildOutcome) {
    out.push_str("{\"root\":");
    js(out, &o.root);
    out.push_str(&format!(
        ",\"instances\":{},\"units_compiled\":{},\"units_reused\":{},\"objects\":{}",
        o.instances, o.units_compiled, o.units_reused, o.objects
    ));
    out.push_str(&format!(
        ",\"flatten_groups\":{},\"text_size\":{},\"cache_hits\":{},\"cache_misses\":{}",
        o.flatten_groups, o.text_size, o.cache_hits, o.cache_misses
    ));
    out.push_str(&format!(",\"jobs\":{},\"image_hash\":{}", o.jobs, o.image_hash));
    out.push_str(",\"phases\":[");
    for (i, (name, us)) in o.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        js(out, name);
        out.push_str(&format!(",{us}]"));
    }
    out.push_str("],\"schedule\":");
    write_str_array(out, &o.schedule);
    out.push_str(",\"constraints\":");
    match o.constraints {
        Some((c, v, a)) => {
            out.push_str(&format!("{{\"constraints\":{c},\"vars\":{v},\"annotated_units\":{a}}}"))
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"exports\":[");
    for (i, (k, v)) in o.exports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        js(out, k);
        out.push(',');
        js(out, v);
        out.push(']');
    }
    out.push_str("],\"unit_compiles\":[");
    for (i, (unit, us, reused)) in o.unit_compiles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        js(out, unit);
        out.push_str(&format!(",{us},{reused}]"));
    }
    out.push_str("],\"watched\":");
    write_str_array(out, &o.watched);
    out.push('}');
}

impl Request {
    /// Serialize to the canonical single-line JSON wire form (no trailing
    /// newline; the transport adds framing).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            Request::Hello { version } => {
                out.push_str(&format!("{{\"req\":\"hello\",\"version\":{version}}}"));
            }
            Request::Open { session, options } => {
                out.push_str("{\"req\":\"open\",\"session\":");
                js(&mut out, session);
                out.push_str(",\"options\":");
                write_options(&mut out, options);
                out.push('}');
            }
            Request::LoadUnits { session, file, text } => {
                out.push_str("{\"req\":\"load_units\",\"session\":");
                js(&mut out, session);
                out.push_str(",\"file\":");
                js(&mut out, file);
                out.push_str(",\"text\":");
                js(&mut out, text);
                out.push('}');
            }
            Request::UpdateUnit { session, file, text } => {
                out.push_str("{\"req\":\"update_unit\",\"session\":");
                js(&mut out, session);
                out.push_str(",\"file\":");
                js(&mut out, file);
                out.push_str(",\"text\":");
                js(&mut out, text);
                out.push('}');
            }
            Request::UpdateSource { session, path, text } => {
                out.push_str("{\"req\":\"update_source\",\"session\":");
                js(&mut out, session);
                out.push_str(",\"path\":");
                js(&mut out, path);
                out.push_str(",\"text\":");
                js(&mut out, text);
                out.push('}');
            }
            Request::Build { session, want_image } => {
                out.push_str("{\"req\":\"build\",\"session\":");
                js(&mut out, session);
                out.push_str(&format!(",\"want_image\":{want_image}}}"));
            }
            Request::Lint { session, config } => {
                out.push_str("{\"req\":\"lint\",\"session\":");
                js(&mut out, session);
                out.push_str(",\"config\":{\"overrides\":[");
                for (i, (name, level)) in config.overrides.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    js(&mut out, name);
                    out.push(',');
                    js(&mut out, lint_level_str(*level));
                    out.push(']');
                }
                out.push_str(&format!("],\"deny_warnings\":{}}}}}", config.deny_warnings));
            }
            Request::Explain { code } => {
                out.push_str("{\"req\":\"explain\",\"code\":");
                js(&mut out, code);
                out.push('}');
            }
            Request::PgoSuggest { session, profile } => {
                out.push_str("{\"req\":\"pgo_suggest\",\"session\":");
                js(&mut out, session);
                out.push_str(",\"profile\":");
                js(&mut out, profile);
                out.push('}');
            }
            Request::Watch { session } => {
                out.push_str("{\"req\":\"watch\",\"session\":");
                js(&mut out, session);
                out.push('}');
            }
            Request::Close { session } => {
                out.push_str("{\"req\":\"close\",\"session\":");
                js(&mut out, session);
                out.push('}');
            }
            Request::Ping => out.push_str("{\"req\":\"ping\"}"),
            Request::Shutdown => out.push_str("{\"req\":\"shutdown\"}"),
        }
        out
    }

    /// Parse a request from its wire form.
    pub fn from_json(text: &str) -> Result<Request, String> {
        let v = Json::parse(text)?;
        let obj = v.as_object().ok_or("request must be a JSON object")?;
        let kind = obj.get("req").and_then(Json::as_str).ok_or("request missing `req`")?;
        let session = |obj: &BTreeMap<String, Json>| -> Result<String, String> {
            Ok(obj
                .get("session")
                .and_then(Json::as_str)
                .ok_or("request missing `session`")?
                .to_string())
        };
        let field = |obj: &BTreeMap<String, Json>, key: &str| -> Result<String, String> {
            Ok(obj
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("request missing `{key}`"))?
                .to_string())
        };
        Ok(match kind {
            "hello" => Request::Hello {
                version: obj
                    .get("version")
                    .and_then(Json::as_u64)
                    .ok_or("hello missing `version`")?
                    .try_into()
                    .map_err(|_| "hello: version out of range")?,
            },
            "open" => {
                let oo =
                    obj.get("options").and_then(Json::as_object).ok_or("open missing `options`")?;
                let str_list = |key: &str| -> Result<Vec<String>, String> {
                    match oo.get(key) {
                        None | Some(Json::Null) => Ok(Vec::new()),
                        Some(v) => v
                            .as_array()
                            .ok_or_else(|| format!("options.{key} must be an array"))?
                            .iter()
                            .map(|s| {
                                s.as_str()
                                    .map(str::to_string)
                                    .ok_or_else(|| format!("options.{key} must hold strings"))
                            })
                            .collect(),
                    }
                };
                Request::Open {
                    session: session(obj)?,
                    options: SessionOptions {
                        root: oo
                            .get("root")
                            .and_then(Json::as_str)
                            .ok_or("options missing `root`")?
                            .to_string(),
                        entry: oo.get("entry").and_then(Json::as_str).map(str::to_string),
                        check_constraints: oo
                            .get("check_constraints")
                            .and_then(Json::as_bool)
                            .unwrap_or(true),
                        flatten: oo.get("flatten").and_then(Json::as_bool).unwrap_or(true),
                        jobs: oo.get("jobs").and_then(Json::as_u64).map(|j| j as usize),
                        default_flags: str_list("default_flags")?,
                        runtime_symbols: str_list("runtime_symbols")?,
                        profile: oo.get("profile").and_then(Json::as_str).map(str::to_string),
                    },
                }
            }
            "load_units" => Request::LoadUnits {
                session: session(obj)?,
                file: field(obj, "file")?,
                text: field(obj, "text")?,
            },
            "update_unit" => Request::UpdateUnit {
                session: session(obj)?,
                file: field(obj, "file")?,
                text: field(obj, "text")?,
            },
            "update_source" => Request::UpdateSource {
                session: session(obj)?,
                path: field(obj, "path")?,
                text: field(obj, "text")?,
            },
            "build" => Request::Build {
                session: session(obj)?,
                want_image: obj.get("want_image").and_then(Json::as_bool).unwrap_or(false),
            },
            "lint" => {
                let co =
                    obj.get("config").and_then(Json::as_object).ok_or("lint missing `config`")?;
                let mut overrides = Vec::new();
                if let Some(arr) = co.get("overrides").and_then(Json::as_array) {
                    for o in arr {
                        let pair = o.as_array().ok_or("lint override must be [name, level]")?;
                        let (name, level) = match pair {
                            [n, l] => (
                                n.as_str().ok_or("lint override name must be a string")?,
                                l.as_str().ok_or("lint override level must be a string")?,
                            ),
                            _ => return Err("lint override must be [name, level]".to_string()),
                        };
                        overrides.push((name.to_string(), lint_level_parse(level)?));
                    }
                }
                Request::Lint {
                    session: session(obj)?,
                    config: LintOptions {
                        overrides,
                        deny_warnings: co
                            .get("deny_warnings")
                            .and_then(Json::as_bool)
                            .unwrap_or(false),
                    },
                }
            }
            "explain" => Request::Explain { code: field(obj, "code")? },
            "pgo_suggest" => {
                Request::PgoSuggest { session: session(obj)?, profile: field(obj, "profile")? }
            }
            "watch" => Request::Watch { session: session(obj)? },
            "close" => Request::Close { session: session(obj)? },
            "ping" => Request::Ping,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown request kind `{other}`")),
        })
    }
}

fn write_diag(out: &mut String, d: &Diagnostic) {
    // Identical to `Diagnostic::json()` — the wire format for diagnostics
    // IS the `--error-format=json` format, by design.
    out.push_str(&d.json());
}

fn parse_diag(v: &Json) -> Result<Diagnostic, String> {
    let o = v.as_object().ok_or("diagnostic must be an object")?;
    let code = o.get("code").and_then(Json::as_str).ok_or("diagnostic missing `code`")?;
    let code = crate::diag::static_code(code)
        .ok_or_else(|| format!("unknown diagnostic code `{code}`"))?;
    let severity = match o.get("severity").and_then(Json::as_str) {
        Some("error") => Severity::Error,
        Some("warning") => Severity::Warning,
        Some("note") => Severity::Note,
        other => return Err(format!("bad diagnostic severity {other:?}")),
    };
    let message =
        o.get("message").and_then(Json::as_str).ok_or("diagnostic missing `message`")?.to_string();
    let span = match o.get("span") {
        None | Some(Json::Null) => None,
        Some(s) => {
            let so = s.as_object().ok_or("diagnostic span must be an object")?;
            Some((
                so.get("file").and_then(Json::as_str).ok_or("span missing `file`")?.to_string(),
                so.get("line").and_then(Json::as_u64).ok_or("span missing `line`")? as u32,
                so.get("col").and_then(Json::as_u64).ok_or("span missing `col`")? as u32,
            ))
        }
    };
    let mut notes = Vec::new();
    if let Some(arr) = o.get("notes").and_then(Json::as_array) {
        for n in arr {
            notes.push(n.as_str().ok_or("notes must be strings")?.to_string());
        }
    }
    Ok(Diagnostic { code, severity, message, span, notes })
}

fn write_diags(out: &mut String, diags: &[Diagnostic]) {
    out.push('[');
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_diag(out, d);
    }
    out.push(']');
}

impl Response {
    /// Serialize to the canonical single-line JSON wire form.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            Response::Hello { version } => {
                out.push_str(&format!("{{\"resp\":\"hello\",\"version\":{version}}}"));
            }
            Response::Ok => out.push_str("{\"resp\":\"ok\"}"),
            Response::Opened { created } => {
                out.push_str(&format!("{{\"resp\":\"opened\",\"created\":{created}}}"));
            }
            Response::Built { outcome, image } => {
                out.push_str("{\"resp\":\"built\",\"outcome\":");
                write_outcome(&mut out, outcome);
                out.push_str(",\"image\":");
                match image {
                    Some(hex) => js(&mut out, hex),
                    None => out.push_str("null"),
                }
                out.push('}');
            }
            Response::Linted { units_analyzed, warnings, errors, diagnostics } => {
                out.push_str(&format!(
                    "{{\"resp\":\"linted\",\"units_analyzed\":{units_analyzed},\"warnings\":{warnings},\"errors\":{errors},\"diagnostics\":"
                ));
                write_diags(&mut out, diagnostics);
                out.push('}');
            }
            Response::Explained { code, summary, example, lint } => {
                out.push_str("{\"resp\":\"explained\",\"code\":");
                js(&mut out, code);
                out.push_str(",\"summary\":");
                js(&mut out, summary);
                out.push_str(",\"example\":");
                js(&mut out, example);
                out.push_str(",\"lint\":");
                match lint {
                    Some((name, level)) => {
                        out.push_str("{\"name\":");
                        js(&mut out, name);
                        out.push_str(",\"default_level\":");
                        js(&mut out, lint_level_str(*level));
                        out.push('}');
                    }
                    None => out.push_str("null"),
                }
                out.push('}');
            }
            Response::Suggested { text } => {
                out.push_str("{\"resp\":\"suggested\",\"text\":");
                js(&mut out, text);
                out.push('}');
            }
            Response::Subscribed { session } => {
                out.push_str("{\"resp\":\"subscribed\",\"session\":");
                js(&mut out, session);
                out.push('}');
            }
            Response::Event(e) => {
                out.push_str("{\"resp\":\"event\",\"session\":");
                js(&mut out, &e.session);
                out.push_str(&format!(
                    ",\"seq\":{},\"ok\":{},\"units_compiled\":{},\"units_reused\":{},\"text_size\":{},\"image_hash\":{}}}",
                    e.seq, e.ok, e.units_compiled, e.units_reused, e.text_size, e.image_hash
                ));
            }
            Response::Error { diagnostics } => {
                out.push_str("{\"resp\":\"error\",\"diagnostics\":");
                write_diags(&mut out, diagnostics);
                out.push('}');
            }
            Response::Pong => out.push_str("{\"resp\":\"pong\"}"),
            Response::Bye => out.push_str("{\"resp\":\"bye\"}"),
        }
        out
    }

    /// Parse a response from its wire form.
    pub fn from_json(text: &str) -> Result<Response, String> {
        let v = Json::parse(text)?;
        let obj = v.as_object().ok_or("response must be a JSON object")?;
        let kind = obj.get("resp").and_then(Json::as_str).ok_or("response missing `resp`")?;
        let usize_of = |obj: &BTreeMap<String, Json>, key: &str| -> Result<usize, String> {
            Ok(obj
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing `{key}`"))? as usize)
        };
        Ok(match kind {
            "hello" => Response::Hello {
                version: obj
                    .get("version")
                    .and_then(Json::as_u64)
                    .ok_or("hello missing `version`")?
                    .try_into()
                    .map_err(|_| "hello: version out of range")?,
            },
            "ok" => Response::Ok,
            "opened" => Response::Opened {
                created: obj
                    .get("created")
                    .and_then(Json::as_bool)
                    .ok_or("opened missing `created`")?,
            },
            "built" => {
                let oo = obj
                    .get("outcome")
                    .and_then(Json::as_object)
                    .ok_or("built missing `outcome`")?;
                let str_list = |key: &str| -> Result<Vec<String>, String> {
                    oo.get(key)
                        .and_then(Json::as_array)
                        .ok_or_else(|| format!("outcome missing `{key}`"))?
                        .iter()
                        .map(|s| {
                            s.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| format!("outcome.{key} must hold strings"))
                        })
                        .collect()
                };
                let u = |key: &str| -> Result<u64, String> {
                    oo.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("outcome missing `{key}`"))
                };
                let mut outcome = BuildOutcome {
                    root: oo
                        .get("root")
                        .and_then(Json::as_str)
                        .ok_or("outcome missing `root`")?
                        .to_string(),
                    instances: u("instances")? as usize,
                    units_compiled: u("units_compiled")? as usize,
                    units_reused: u("units_reused")? as usize,
                    objects: u("objects")? as usize,
                    flatten_groups: u("flatten_groups")? as usize,
                    text_size: u("text_size")?,
                    cache_hits: u("cache_hits")? as usize,
                    cache_misses: u("cache_misses")? as usize,
                    jobs: u("jobs")? as usize,
                    image_hash: u("image_hash")?,
                    schedule: str_list("schedule")?,
                    watched: str_list("watched")?,
                    ..BuildOutcome::default()
                };
                for p in oo.get("phases").and_then(Json::as_array).unwrap_or(&[]) {
                    match p.as_array() {
                        Some([name, us]) => outcome.phases.push((
                            name.as_str().ok_or("phase name must be a string")?.to_string(),
                            us.as_u64().ok_or("phase time must be a number")?,
                        )),
                        _ => return Err("phase must be [name, micros]".to_string()),
                    }
                }
                outcome.constraints = match oo.get("constraints") {
                    None | Some(Json::Null) => None,
                    Some(c) => {
                        let co = c.as_object().ok_or("constraints must be an object")?;
                        Some((
                            usize_of(co, "constraints")?,
                            usize_of(co, "vars")?,
                            usize_of(co, "annotated_units")?,
                        ))
                    }
                };
                for e in oo.get("exports").and_then(Json::as_array).unwrap_or(&[]) {
                    match e.as_array() {
                        Some([k, v]) => outcome.exports.push((
                            k.as_str().ok_or("export key must be a string")?.to_string(),
                            v.as_str().ok_or("export value must be a string")?.to_string(),
                        )),
                        _ => return Err("export must be [port.member, symbol]".to_string()),
                    }
                }
                for c in oo.get("unit_compiles").and_then(Json::as_array).unwrap_or(&[]) {
                    match c.as_array() {
                        Some([unit, us, reused]) => outcome.unit_compiles.push((
                            unit.as_str().ok_or("unit name must be a string")?.to_string(),
                            us.as_u64().ok_or("unit time must be a number")?,
                            reused.as_bool().ok_or("unit reuse must be a bool")?,
                        )),
                        _ => return Err("unit compile must be [unit, micros, reused]".to_string()),
                    }
                }
                Response::Built {
                    outcome,
                    image: obj.get("image").and_then(Json::as_str).map(str::to_string),
                }
            }
            "linted" => {
                let mut diagnostics = Vec::new();
                for d in obj
                    .get("diagnostics")
                    .and_then(Json::as_array)
                    .ok_or("linted missing `diagnostics`")?
                {
                    diagnostics.push(parse_diag(d)?);
                }
                Response::Linted {
                    units_analyzed: usize_of(obj, "units_analyzed")?,
                    warnings: usize_of(obj, "warnings")?,
                    errors: usize_of(obj, "errors")?,
                    diagnostics,
                }
            }
            "explained" => {
                let lint = match obj.get("lint") {
                    None | Some(Json::Null) => None,
                    Some(l) => {
                        let lo = l.as_object().ok_or("lint must be an object")?;
                        Some((
                            lo.get("name")
                                .and_then(Json::as_str)
                                .ok_or("lint missing `name`")?
                                .to_string(),
                            lint_level_parse(
                                lo.get("default_level")
                                    .and_then(Json::as_str)
                                    .ok_or("lint missing `default_level`")?,
                            )?,
                        ))
                    }
                };
                Response::Explained {
                    code: obj
                        .get("code")
                        .and_then(Json::as_str)
                        .ok_or("explained missing `code`")?
                        .to_string(),
                    summary: obj
                        .get("summary")
                        .and_then(Json::as_str)
                        .ok_or("explained missing `summary`")?
                        .to_string(),
                    example: obj
                        .get("example")
                        .and_then(Json::as_str)
                        .ok_or("explained missing `example`")?
                        .to_string(),
                    lint,
                }
            }
            "suggested" => Response::Suggested {
                text: obj
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or("suggested missing `text`")?
                    .to_string(),
            },
            "subscribed" => Response::Subscribed {
                session: obj
                    .get("session")
                    .and_then(Json::as_str)
                    .ok_or("subscribed missing `session`")?
                    .to_string(),
            },
            "event" => Response::Event(BuildEvent {
                session: obj
                    .get("session")
                    .and_then(Json::as_str)
                    .ok_or("event missing `session`")?
                    .to_string(),
                seq: obj.get("seq").and_then(Json::as_u64).ok_or("event missing `seq`")?,
                ok: obj.get("ok").and_then(Json::as_bool).ok_or("event missing `ok`")?,
                units_compiled: usize_of(obj, "units_compiled")?,
                units_reused: usize_of(obj, "units_reused")?,
                text_size: obj
                    .get("text_size")
                    .and_then(Json::as_u64)
                    .ok_or("event missing `text_size`")?,
                image_hash: obj
                    .get("image_hash")
                    .and_then(Json::as_u64)
                    .ok_or("event missing `image_hash`")?,
            }),
            "error" => {
                let mut diagnostics = Vec::new();
                for d in obj
                    .get("diagnostics")
                    .and_then(Json::as_array)
                    .ok_or("error missing `diagnostics`")?
                {
                    diagnostics.push(parse_diag(d)?);
                }
                Response::Error { diagnostics }
            }
            "pong" => Response::Pong,
            "bye" => Response::Bye,
            other => return Err(format!("unknown response kind `{other}`")),
        })
    }
}

// ---------------------------------------------------------------------------
// image codec: stable binary encoding, shipped as hex
// ---------------------------------------------------------------------------

const IMAGE_MAGIC: &[u8; 5] = b"KIMG1";

struct ByteWriter(Vec<u8>);

impl ByteWriter {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn opt_reg(&mut self, r: Option<Reg>) {
        match r {
            Some(r) => {
                self.u8(1);
                self.u32(r);
            }
            None => self.u8(0),
        }
    }
    fn regs(&mut self, rs: &[Reg]) {
        self.u32(rs.len() as u32);
        for &r in rs {
            self.u32(r);
        }
    }
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| format!("image: truncated at byte {}", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| "image: bad utf-8".to_string())
    }
    fn opt_reg(&mut self) -> Result<Option<Reg>, String> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.u32()?),
        })
    }
    fn regs(&mut self) -> Result<Vec<Reg>, String> {
        let n = self.u32()? as usize;
        (0..n).map(|_| self.u32()).collect()
    }
}

fn width_tag(w: Width) -> u8 {
    match w {
        Width::W1 => 1,
        Width::W2 => 2,
        Width::W4 => 4,
        Width::W8 => 8,
    }
}

fn width_untag(t: u8) -> Result<Width, String> {
    Ok(match t {
        1 => Width::W1,
        2 => Width::W2,
        4 => Width::W4,
        8 => Width::W8,
        other => return Err(format!("image: bad width tag {other}")),
    })
}

const BIN_OPS: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

const UN_OPS: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::BitNot];

fn write_instr(w: &mut ByteWriter, i: &RInstr) {
    match i {
        RInstr::Const { dst, value } => {
            w.u8(0);
            w.u32(*dst);
            w.i64(*value);
        }
        RInstr::Mov { dst, src } => {
            w.u8(1);
            w.u32(*dst);
            w.u32(*src);
        }
        RInstr::Bin { op, dst, a, b } => {
            w.u8(2);
            w.u8(BIN_OPS.iter().position(|o| o == op).expect("known binop") as u8);
            w.u32(*dst);
            w.u32(*a);
            w.u32(*b);
        }
        RInstr::Un { op, dst, a } => {
            w.u8(3);
            w.u8(UN_OPS.iter().position(|o| o == op).expect("known unop") as u8);
            w.u32(*dst);
            w.u32(*a);
        }
        RInstr::Load { dst, addr, offset, width } => {
            w.u8(4);
            w.u32(*dst);
            w.u32(*addr);
            w.i64(*offset);
            w.u8(width_tag(*width));
        }
        RInstr::Store { addr, offset, src, width } => {
            w.u8(5);
            w.u32(*addr);
            w.i64(*offset);
            w.u32(*src);
            w.u8(width_tag(*width));
        }
        RInstr::FrameAddr { dst, offset } => {
            w.u8(6);
            w.u32(*dst);
            w.i64(*offset);
        }
        RInstr::VarArg { dst, idx } => {
            w.u8(7);
            w.u32(*dst);
            w.u32(*idx);
        }
        RInstr::Call { dst, target, args } => {
            w.u8(8);
            w.opt_reg(*dst);
            match target {
                CallTarget::Func(f) => {
                    w.u8(0);
                    w.u32(*f);
                }
                CallTarget::Intrinsic(i) => {
                    w.u8(1);
                    w.u32(*i);
                }
            }
            w.regs(args);
        }
        RInstr::CallInd { dst, target, args } => {
            w.u8(9);
            w.opt_reg(*dst);
            w.u32(*target);
            w.regs(args);
        }
        RInstr::Jump { target } => {
            w.u8(10);
            w.u64(*target as u64);
        }
        RInstr::Branch { cond, then_to, else_to } => {
            w.u8(11);
            w.u32(*cond);
            w.u64(*then_to as u64);
            w.u64(*else_to as u64);
        }
        RInstr::Ret { value } => {
            w.u8(12);
            w.opt_reg(*value);
        }
        RInstr::Nop => w.u8(13),
    }
}

fn read_instr(r: &mut ByteReader) -> Result<RInstr, String> {
    Ok(match r.u8()? {
        0 => RInstr::Const { dst: r.u32()?, value: r.i64()? },
        1 => RInstr::Mov { dst: r.u32()?, src: r.u32()? },
        2 => {
            let op = *BIN_OPS.get(r.u8()? as usize).ok_or("image: bad binop tag")?;
            RInstr::Bin { op, dst: r.u32()?, a: r.u32()?, b: r.u32()? }
        }
        3 => {
            let op = *UN_OPS.get(r.u8()? as usize).ok_or("image: bad unop tag")?;
            RInstr::Un { op, dst: r.u32()?, a: r.u32()? }
        }
        4 => RInstr::Load {
            dst: r.u32()?,
            addr: r.u32()?,
            offset: r.i64()?,
            width: width_untag(r.u8()?)?,
        },
        5 => RInstr::Store {
            addr: r.u32()?,
            offset: r.i64()?,
            src: r.u32()?,
            width: width_untag(r.u8()?)?,
        },
        6 => RInstr::FrameAddr { dst: r.u32()?, offset: r.i64()? },
        7 => RInstr::VarArg { dst: r.u32()?, idx: r.u32()? },
        8 => {
            let dst = r.opt_reg()?;
            let target = match r.u8()? {
                0 => CallTarget::Func(r.u32()?),
                1 => CallTarget::Intrinsic(r.u32()?),
                other => return Err(format!("image: bad call target tag {other}")),
            };
            RInstr::Call { dst, target, args: r.regs()? }
        }
        9 => RInstr::CallInd { dst: r.opt_reg()?, target: r.u32()?, args: r.regs()? },
        10 => RInstr::Jump { target: r.u64()? as usize },
        11 => RInstr::Branch {
            cond: r.u32()?,
            then_to: r.u64()? as usize,
            else_to: r.u64()? as usize,
        },
        12 => RInstr::Ret { value: r.opt_reg()? },
        13 => RInstr::Nop,
        other => return Err(format!("image: bad instruction tag {other}")),
    })
}

/// Encode an [`Image`] into the stable binary form used on the wire (and
/// by [`image_hash`]). Two images encode identically exactly when they are
/// `==` — every function, instruction, address, and data byte is covered.
pub fn encode_image_bytes(img: &Image) -> Vec<u8> {
    let mut w = ByteWriter(Vec::with_capacity(4096));
    w.0.extend_from_slice(IMAGE_MAGIC);
    w.u32(img.funcs.len() as u32);
    for f in &img.funcs {
        w.str(&f.name);
        w.u64(f.addr);
        w.u64(f.size);
        w.u32(f.params);
        w.u32(f.nregs);
        w.u32(f.frame_size);
        w.u32(f.body.len() as u32);
        for i in &f.body {
            write_instr(&mut w, i);
        }
        for &a in &f.instr_addrs {
            w.u64(a);
        }
        for &s in &f.instr_sizes {
            w.u16(s);
        }
    }
    w.u32(img.addr_to_func.len() as u32);
    for (&addr, &idx) in &img.addr_to_func {
        w.u64(addr);
        w.u32(idx);
    }
    w.u32(img.data.len() as u32);
    w.0.extend_from_slice(&img.data);
    w.u64(img.data_base);
    w.u64(img.heap_base);
    w.u32(img.symbols.len() as u32);
    for (name, loc) in &img.symbols {
        w.str(name);
        match loc {
            SymbolLoc::Func(i) => {
                w.u8(0);
                w.u64(u64::from(*i));
            }
            SymbolLoc::Data(a) => {
                w.u8(1);
                w.u64(*a);
            }
        }
    }
    w.u32(img.intrinsics.len() as u32);
    for s in &img.intrinsics {
        w.str(s);
    }
    w.u64(img.text_size);
    match img.entry {
        Some(e) => {
            w.u8(1);
            w.u32(e);
        }
        None => w.u8(0),
    }
    w.0
}

/// Decode an image from its stable binary form.
pub fn decode_image_bytes(bytes: &[u8]) -> Result<Image, String> {
    let mut r = ByteReader { bytes, pos: 0 };
    if r.take(IMAGE_MAGIC.len())? != IMAGE_MAGIC {
        return Err("image: bad magic".to_string());
    }
    let nfuncs = r.u32()? as usize;
    let mut funcs = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        let name = r.str()?;
        let addr = r.u64()?;
        let size = r.u64()?;
        let params = r.u32()?;
        let nregs = r.u32()?;
        let frame_size = r.u32()?;
        let nbody = r.u32()? as usize;
        let body = (0..nbody).map(|_| read_instr(&mut r)).collect::<Result<Vec<_>, _>>()?;
        let instr_addrs = (0..nbody).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
        let instr_sizes = (0..nbody).map(|_| r.u16()).collect::<Result<Vec<_>, _>>()?;
        funcs.push(ImageFunc {
            name,
            addr,
            size,
            params,
            nregs,
            frame_size,
            body,
            instr_addrs,
            instr_sizes,
        });
    }
    let mut addr_to_func = BTreeMap::new();
    for _ in 0..r.u32()? {
        let addr = r.u64()?;
        addr_to_func.insert(addr, r.u32()?);
    }
    let ndata = r.u32()? as usize;
    let data = r.take(ndata)?.to_vec();
    let data_base = r.u64()?;
    let heap_base = r.u64()?;
    let mut symbols = BTreeMap::new();
    for _ in 0..r.u32()? {
        let name = r.str()?;
        let loc = match r.u8()? {
            0 => SymbolLoc::Func(r.u64()? as u32),
            1 => SymbolLoc::Data(r.u64()?),
            other => return Err(format!("image: bad symbol tag {other}")),
        };
        symbols.insert(name, loc);
    }
    let nintr = r.u32()? as usize;
    let intrinsics = (0..nintr).map(|_| r.str()).collect::<Result<Vec<_>, _>>()?;
    let text_size = r.u64()?;
    let entry = match r.u8()? {
        0 => None,
        _ => Some(r.u32()?),
    };
    if r.pos != bytes.len() {
        return Err(format!("image: trailing garbage at byte {}", r.pos));
    }
    Ok(Image {
        funcs,
        addr_to_func,
        data,
        data_base,
        heap_base,
        symbols,
        intrinsics,
        text_size,
        entry,
    })
}

/// Encode an image as a lowercase-hex string for the JSON wire.
pub fn encode_image(img: &Image) -> String {
    let bytes = encode_image_bytes(img);
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode an image from [`encode_image`]'s hex form.
pub fn decode_image(hex: &str) -> Result<Image, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("image: odd hex length".to_string());
    }
    let bytes = hex
        .as_bytes()
        .chunks_exact(2)
        .map(|c| {
            u8::from_str_radix(std::str::from_utf8(c).map_err(|_| "image: bad hex")?, 16)
                .map_err(|_| "image: bad hex".to_string())
        })
        .collect::<Result<Vec<_>, String>>()?;
    decode_image_bytes(&bytes)
}

/// Stable 64-bit FNV-1a hash of an image's binary encoding. Two images
/// hash equal exactly when they are byte-identical, so a client can check
/// server builds against local ones without shipping the image.
pub fn image_hash(img: &Image) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in encode_image_bytes(img) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// JSON value parser (shared by Request/Response::from_json)
// ---------------------------------------------------------------------------

/// A parsed JSON value — just enough JSON for the protocol schema.
/// Unsigned integers are kept as exact `u64`s (image hashes exceed 2^53).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("json: trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("json: expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("json: bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("json: unexpected byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            m.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("json: expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("json: expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("json: unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("json: truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "json: bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "json: bad \\u escape")?;
                            // Surrogate pairs: the writer never emits them
                            // (it escapes only controls), but accept them.
                            if (0xd800..0xdc00).contains(&code) {
                                let rest = self.bytes.get(self.pos + 5..self.pos + 11);
                                match rest {
                                    Some([b'\\', b'u', h @ ..]) => {
                                        let low = u32::from_str_radix(
                                            std::str::from_utf8(h)
                                                .map_err(|_| "json: bad surrogate")?,
                                            16,
                                        )
                                        .map_err(|_| "json: bad surrogate")?;
                                        let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                        s.push(char::from_u32(c).ok_or("json: bad surrogate")?);
                                        self.pos += 10;
                                    }
                                    _ => return Err("json: lone surrogate".to_string()),
                                }
                            } else {
                                s.push(char::from_u32(code).ok_or("json: bad \\u escape")?);
                                self.pos += 4;
                            }
                        }
                        other => return Err(format!("json: bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "json: bad utf-8".to_string())?;
                    let c = rest.chars().next().expect("nonempty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("json: bad number at byte {start}"))
    }
}

// ---------------------------------------------------------------------------
// generated protocol documentation
// ---------------------------------------------------------------------------

/// Render the protocol reference as markdown — the generator for
/// `docs/protocol.md` (a test pins the file to this output, the same
/// mechanism as `docs/diagnostics.md`).
pub fn protocol_markdown() -> String {
    let mut out = String::new();
    out.push_str("# The `knitc serve` wire protocol\n\n");
    out.push_str("Generated by `knit::proto::protocol_markdown()`; do not edit by hand.\n\n");
    out.push_str(&format!("Protocol version: **{VERSION}**.\n\n"));
    out.push_str(
        "Transport: newline-delimited JSON over a local socket (Unix domain \
         socket, TCP loopback fallback). One request per line, one response \
         per line, in order; a connection that issued `watch` additionally \
         receives asynchronous `event` lines. Every connection must open \
         with `hello`; a version mismatch is rejected with a `K0016` \
         diagnostic, a malformed request with `K0017`. Diagnostics use the \
         exact `--error-format=json` object shape.\n\n",
    );
    out.push_str("## Requests\n\n");
    let reqs: &[(&str, Request)] = &[
        ("version handshake (must be first)", Request::Hello { version: VERSION }),
        (
            "create or reconfigure a named session",
            Request::Open { session: "ci".to_string(), options: SessionOptions::new("App") },
        ),
        (
            "register a `.unit` file (duplicates are errors)",
            Request::LoadUnits {
                session: "ci".to_string(),
                file: "app.unit".to_string(),
                text: "unit App = { ... }".to_string(),
            },
        ),
        (
            "re-register a `.unit` file (replaces same-named declarations)",
            Request::UpdateUnit {
                session: "ci".to_string(),
                file: "app.unit".to_string(),
                text: "unit App = { ... }".to_string(),
            },
        ),
        (
            "add or replace one C source or header",
            Request::UpdateSource {
                session: "ci".to_string(),
                path: "app.c".to_string(),
                text: "int main() { return 0; }".to_string(),
            },
        ),
        (
            "build (incrementally); `want_image` ships the image back as hex",
            Request::Build { session: "ci".to_string(), want_image: false },
        ),
        (
            "run the cross-unit lints",
            Request::Lint {
                session: "ci".to_string(),
                config: LintOptions {
                    overrides: vec![("unused-import".to_string(), LintLevel::Deny)],
                    deny_warnings: false,
                },
            },
        ),
        ("describe a diagnostic code", Request::Explain { code: "K0011".to_string() }),
        (
            "run the PGO flatten advisor over a `machine::Profile` JSON document",
            Request::PgoSuggest { session: "ci".to_string(), profile: "{ ... }".to_string() },
        ),
        (
            "subscribe this connection to a session's build events",
            Request::Watch { session: "ci".to_string() },
        ),
        ("drop a session", Request::Close { session: "ci".to_string() }),
        ("liveness probe", Request::Ping),
        ("stop the server after draining in-flight requests", Request::Shutdown),
    ];
    for (desc, req) in reqs {
        out.push_str(&format!("- {desc}:\n\n  ```json\n  {}\n  ```\n\n", req.to_json()));
    }
    out.push_str("## Responses\n\n");
    let resps: &[(&str, Response)] = &[
        ("handshake accepted", Response::Hello { version: VERSION }),
        ("generic success", Response::Ok),
        (
            "a session was opened; `created` distinguishes fresh from \
             reconfigured",
            Response::Opened { created: true },
        ),
        (
            "a build completed; `outcome.image_hash` is the stable FNV-1a hash \
             of the image's binary encoding (equal exactly when images are \
             byte-identical), `outcome.watched` the dependency-ledger paths a \
             file watcher needs to poll",
            Response::Built {
                outcome: BuildOutcome {
                    root: "App".to_string(),
                    instances: 1,
                    units_reused: 1,
                    objects: 2,
                    text_size: 64,
                    cache_hits: 1,
                    jobs: 1,
                    image_hash: 7,
                    phases: vec![("elaborate".to_string(), 10)],
                    schedule: vec!["App.init".to_string()],
                    exports: vec![("main.main".to_string(), "main_main_i0".to_string())],
                    unit_compiles: vec![("App".to_string(), 3, true)],
                    watched: vec!["app.c".to_string()],
                    ..BuildOutcome::default()
                },
                image: None,
            },
        ),
        (
            "lints ran; diagnostics use the `--error-format=json` shape",
            Response::Linted { units_analyzed: 4, warnings: 1, errors: 0, diagnostics: vec![] },
        ),
        (
            "a diagnostic code resolved",
            Response::Explained {
                code: "K1002".to_string(),
                summary: "an imported bundle member is never referenced".to_string(),
                example: "imports [ log : Log ];".to_string(),
                lint: Some(("unused-import".to_string(), LintLevel::Warn)),
            },
        ),
        (
            "the PGO advisor's rendered report",
            Response::Suggested { text: "suggestion #1: ...".to_string() },
        ),
        ("watch subscription accepted", Response::Subscribed { session: "ci".to_string() }),
        (
            "asynchronous build notification; `seq` is per-session and \
             gap-free",
            Response::Event(BuildEvent {
                session: "ci".to_string(),
                seq: 3,
                ok: true,
                units_compiled: 1,
                units_reused: 11,
                text_size: 4096,
                image_hash: 7,
            }),
        ),
        ("a request failed", Response::error("K0016", "protocol version mismatch: ...", vec![])),
        ("liveness reply", Response::Pong),
        ("shutdown acknowledged", Response::Bye),
    ];
    for (desc, resp) in resps {
        out.push_str(&format!("- {desc}:\n\n  ```json\n  {}\n  ```\n\n", resp.to_json()));
    }
    out.push_str("## Byte identity\n\n");
    out.push_str(
        "An image built through the server is byte-identical to the image a \
         direct `BuildSession` produces for the same request stream — the \
         server is a concurrency and caching layer, never a semantic one. \
         `tests/server.rs` enforces this end to end (decode the wire image, \
         compare `==` against a local build), and `bench --bin table_serve` \
         gates on it.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_json_round_trips() {
        let reqs = vec![
            Request::Hello { version: VERSION },
            Request::Open {
                session: "s".to_string(),
                options: SessionOptions {
                    root: "R\"x".to_string(),
                    entry: Some("main".to_string()),
                    check_constraints: false,
                    flatten: true,
                    jobs: Some(3),
                    default_flags: vec!["-O2".to_string()],
                    runtime_symbols: vec!["__print".to_string()],
                    profile: Some("{}\n".to_string()),
                },
            },
            Request::UpdateSource {
                session: "s".to_string(),
                path: "a.c".to_string(),
                text: "int x;\n\t\"quoted\"".to_string(),
            },
            Request::Build { session: "s".to_string(), want_image: true },
            Request::Lint {
                session: "s".to_string(),
                config: LintOptions {
                    overrides: vec![("unused-import".to_string(), LintLevel::Allow)],
                    deny_warnings: true,
                },
            },
            Request::Ping,
            Request::Shutdown,
        ];
        for r in reqs {
            let j = r.to_json();
            assert!(!j.contains('\n'), "wire form must be one line: {j}");
            assert_eq!(Request::from_json(&j).unwrap(), r, "{j}");
        }
    }

    #[test]
    fn response_json_round_trips_with_exact_u64() {
        let outcome = BuildOutcome {
            root: "R".to_string(),
            image_hash: u64::MAX - 1,
            text_size: 1 << 60,
            phases: vec![("link".to_string(), 123)],
            unit_compiles: vec![("U".to_string(), 5, false)],
            watched: vec!["a.c".to_string()],
            ..BuildOutcome::default()
        };
        let r = Response::Built { outcome, image: Some("00ff".to_string()) };
        let j = r.to_json();
        assert_eq!(Response::from_json(&j).unwrap(), r, "{j}");

        for created in [false, true] {
            let o = Response::Opened { created };
            assert_eq!(Response::from_json(&o.to_json()).unwrap(), o);
        }

        let e = Response::Event(BuildEvent {
            session: "s".to_string(),
            seq: u64::MAX,
            ok: false,
            units_compiled: 0,
            units_reused: 0,
            text_size: 0,
            image_hash: 0x8000_0000_0000_0001,
        });
        let j = e.to_json();
        assert_eq!(Response::from_json(&j).unwrap(), e, "{j}");
    }

    #[test]
    fn handshake_mismatch_is_k0016_and_malformed_is_k0017() {
        let v = Response::version_mismatch(99);
        let Response::Error { diagnostics } = &v else { panic!("not an error") };
        assert_eq!(diagnostics[0].code, "K0016");
        let j = v.to_json();
        assert_eq!(Response::from_json(&j).unwrap(), v);

        let m = Response::malformed("nope");
        let Response::Error { diagnostics } = &m else { panic!("not an error") };
        assert_eq!(diagnostics[0].code, "K0017");
    }
}
