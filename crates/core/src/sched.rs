//! Automatic scheduling of initializers and finalizers (§3.2).
//!
//! Each atomic unit declares `initializer f for bundle;` plus fine-grained
//! dependencies:
//!
//! * `serveLog needs stdio` — *export-level*: stdio must be initialized
//!   before any function of the `serveLog` bundle is **called** (but this
//!   alone does not order the two components' initializers);
//! * `open_log needs stdio` — *initializer-level*: stdio must be
//!   initialized before `open_log` itself **runs**.
//!
//! The paper calls this distinction "crucial to avoid over-constraining the
//! initialization order". We reproduce it exactly: for every instance
//! export port we compute the set of initializers that must complete before
//! the port is usable (a fixpoint, since import graphs may be cyclic), and
//! only *initializer-level* dependencies induce ordering edges between
//! initializers. A cycle among initializers is a configuration error,
//! reported with the cycle path — the fix, per the paper, is finer-grained
//! dependency declarations.

use std::collections::{BTreeMap, BTreeSet};

use knit_lang::ast::{DepAtom, DepSide, UnitBody, UnitDecl};

use crate::elaborate::{Elaboration, Wire};
use crate::error::KnitError;
use crate::model::Program;

/// One scheduled call: (instance id, C function name).
pub type InitKey = (usize, String);

/// The computed schedule.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Initializers, in call order.
    pub inits: Vec<InitKey>,
    /// Finalizers, in call order (consumers before providers).
    pub finis: Vec<InitKey>,
}

impl Schedule {
    /// Human-readable rendering (`path.func`), for logs and tests.
    pub fn describe(&self, el: &Elaboration) -> Vec<String> {
        self.inits.iter().map(|(i, f)| format!("{}.{}", el.instances[*i].path, f)).collect()
    }
}

/// Per-instance dependency info extracted from the unit declaration.
struct InstDeps {
    /// export port -> declared import-port deps
    port_deps: BTreeMap<String, BTreeSet<String>>,
    /// init/fini function name -> declared import-port deps
    func_deps: BTreeMap<String, BTreeSet<String>>,
    /// export port -> initializers registered `for` it (declaration order)
    inits_for: BTreeMap<String, Vec<String>>,
    /// all initializers (declaration order)
    inits: Vec<String>,
    /// all finalizers (declaration order)
    finis: Vec<String>,
    /// fini function -> its port
    fini_port: BTreeMap<String, String>,
}

fn extract(unit: &UnitDecl) -> InstDeps {
    let mut d = InstDeps {
        port_deps: BTreeMap::new(),
        func_deps: BTreeMap::new(),
        inits_for: BTreeMap::new(),
        inits: Vec::new(),
        finis: Vec::new(),
        fini_port: BTreeMap::new(),
    };
    let a = match &unit.body {
        UnitBody::Atomic(a) => a,
        UnitBody::Compound(_) => return d,
    };
    let import_ports: Vec<String> = unit.imports.iter().map(|p| p.name.clone()).collect();
    let export_ports: Vec<String> = unit.exports.iter().map(|p| p.name.clone()).collect();
    let init_names: BTreeSet<&str> =
        a.initializers.iter().chain(a.finalizers.iter()).map(|i| i.func.as_str()).collect();

    for dep in &a.depends {
        let rhs: BTreeSet<String> = dep
            .rhs
            .iter()
            .flat_map(|atom| match atom {
                DepAtom::Imports => import_ports.clone(),
                DepAtom::Name(n) => vec![n.clone()],
            })
            .collect();
        match &dep.lhs {
            DepSide::Exports => {
                for p in &export_ports {
                    d.port_deps.entry(p.clone()).or_default().extend(rhs.iter().cloned());
                }
            }
            DepSide::Name(n) => {
                if init_names.contains(n.as_str()) {
                    d.func_deps.entry(n.clone()).or_default().extend(rhs.iter().cloned());
                } else {
                    d.port_deps.entry(n.clone()).or_default().extend(rhs.iter().cloned());
                }
            }
        }
    }
    for i in &a.initializers {
        d.inits_for.entry(i.bundle.clone()).or_default().push(i.func.clone());
        d.inits.push(i.func.clone());
    }
    for f in &a.finalizers {
        d.finis.push(f.func.clone());
        d.fini_port.insert(f.func.clone(), f.bundle.clone());
    }
    d
}

/// Compute the initialization and finalization schedule.
pub fn schedule(program: &Program, el: &Elaboration) -> Result<Schedule, KnitError> {
    let deps: Vec<InstDeps> =
        el.instances.iter().map(|i| extract(&program.units[&i.unit])).collect();

    // --- fixpoint: usable(inst, port) = initializers needed before the
    // functions of that export port may be called ---
    let mut usable: BTreeMap<(usize, String), BTreeSet<InitKey>> = BTreeMap::new();
    for inst in &el.instances {
        let unit = &program.units[&inst.unit];
        for p in &unit.exports {
            let mut base: BTreeSet<InitKey> = BTreeSet::new();
            if let Some(fs) = deps[inst.id].inits_for.get(&p.name) {
                base.extend(fs.iter().map(|f| (inst.id, f.clone())));
            }
            usable.insert((inst.id, p.name.clone()), base);
        }
    }
    loop {
        let mut changed = false;
        for inst in &el.instances {
            let unit = &program.units[&inst.unit];
            for p in &unit.exports {
                let mut add: BTreeSet<InitKey> = BTreeSet::new();
                if let Some(ports) = deps[inst.id].port_deps.get(&p.name) {
                    for dport in ports {
                        if let Some(Wire::Export { instance, port }) = inst.imports.get(dport) {
                            if let Some(s) = usable.get(&(*instance, port.clone())) {
                                add.extend(s.iter().cloned());
                            }
                        }
                    }
                }
                let entry = usable.get_mut(&(inst.id, p.name.clone())).expect("seeded");
                let before = entry.len();
                entry.extend(add);
                if entry.len() != before {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // --- ordering edges between initializers: g must run before f ---
    let mut all_inits: Vec<InitKey> = Vec::new();
    for inst in &el.instances {
        for f in &deps[inst.id].inits {
            all_inits.push((inst.id, f.clone()));
        }
    }
    let required_before = |inst: usize, func: &str| -> BTreeSet<InitKey> {
        let mut out = BTreeSet::new();
        if let Some(ports) = deps[inst].func_deps.get(func) {
            for dport in ports {
                if let Some(Wire::Export { instance, port }) = el.instances[inst].imports.get(dport)
                {
                    if let Some(s) = usable.get(&(*instance, port.clone())) {
                        out.extend(s.iter().cloned());
                    }
                }
            }
        }
        out.remove(&(inst, func.to_string()));
        out
    };

    let mut preds: BTreeMap<InitKey, BTreeSet<InitKey>> = BTreeMap::new();
    for key in &all_inits {
        let mut before = required_before(key.0, &key.1);
        // self-dependency through a chain is a cycle
        if before.contains(key) {
            before.remove(key);
        }
        // keep only real initializers (usable may reference keys of
        // instances without matching init declarations — cannot happen by
        // construction, but stay defensive)
        before.retain(|k| all_inits.contains(k));
        preds.insert(key.clone(), before);
    }
    // detect chains where f transitively requires itself
    check_cycles(&preds, el)?;

    // --- deterministic Kahn topological sort ---
    // stable order: by (instance path, declaration position)
    let pos: BTreeMap<&InitKey, usize> =
        all_inits.iter().enumerate().map(|(i, k)| (k, i)).collect();
    let mut order: Vec<InitKey> = Vec::with_capacity(all_inits.len());
    let mut remaining: BTreeSet<&InitKey> = all_inits.iter().collect();
    while !remaining.is_empty() {
        let mut ready: Vec<&InitKey> = remaining
            .iter()
            .filter(|k| preds[**k].iter().all(|p| !remaining.contains(p)))
            .cloned()
            .collect();
        if ready.is_empty() {
            // cycle — should have been caught above
            let cycle: Vec<String> =
                remaining.iter().map(|(i, f)| format!("{}.{}", el.instances[*i].path, f)).collect();
            return Err(KnitError::InitCycle { cycle });
        }
        ready.sort_by_key(|k| pos[*k]);
        for k in ready {
            order.push(k.clone());
            remaining.remove(k);
        }
    }

    // --- finalizers: consumers before providers ---
    // A finalizer f (for port P, with deps D) must run BEFORE the
    // finalizers of the providers it depends on (they stay alive until f is
    // done). We order by the reverse of the provider relation; where no
    // relation exists, reverse of init order of the owning instances keeps
    // intuitive symmetry.
    let mut all_finis: Vec<InitKey> = Vec::new();
    for inst in &el.instances {
        for f in &deps[inst.id].finis {
            all_finis.push((inst.id, f.clone()));
        }
    }
    // instance -> earliest init position (for the symmetry heuristic)
    let init_pos: BTreeMap<usize, usize> = order
        .iter()
        .enumerate()
        .map(|(p, (i, _))| (*i, p))
        .rev() // first occurrence wins after collect
        .collect();
    let mut finis = all_finis.clone();
    finis.sort_by_key(|(i, _)| std::cmp::Reverse(init_pos.get(i).copied().unwrap_or(usize::MAX)));
    // refine with explicit fini deps: f before providers' finis
    let fini_set: BTreeSet<InitKey> = finis.iter().cloned().collect();
    let mut fini_preds: BTreeMap<InitKey, BTreeSet<InitKey>> = BTreeMap::new();
    for key in &all_finis {
        fini_preds.entry(key.clone()).or_default();
    }
    for key in &all_finis {
        // providers this fini depends on: their finis must come AFTER key,
        // i.e. key is a predecessor of those finis.
        if let Some(ports) = deps[key.0].func_deps.get(&key.1) {
            for dport in ports {
                if let Some(Wire::Export { instance, port: _ }) =
                    el.instances[key.0].imports.get(dport)
                {
                    for pf in &deps[*instance].finis {
                        let provider_key = (*instance, pf.clone());
                        if provider_key != *key && fini_set.contains(&provider_key) {
                            fini_preds.get_mut(&provider_key).expect("seeded").insert(key.clone());
                        }
                    }
                }
            }
        }
    }
    // topo-sort finis with the heuristic order as tiebreak
    let fpos: BTreeMap<&InitKey, usize> = finis.iter().enumerate().map(|(i, k)| (k, i)).collect();
    let mut forder: Vec<InitKey> = Vec::with_capacity(all_finis.len());
    let mut fremaining: BTreeSet<&InitKey> = all_finis.iter().collect();
    while !fremaining.is_empty() {
        let mut ready: Vec<&InitKey> = fremaining
            .iter()
            .filter(|k| fini_preds[**k].iter().all(|p| !fremaining.contains(p)))
            .cloned()
            .collect();
        if ready.is_empty() {
            let cycle: Vec<String> = fremaining
                .iter()
                .map(|(i, f)| format!("{}.{}", el.instances[*i].path, f))
                .collect();
            return Err(KnitError::InitCycle { cycle });
        }
        ready.sort_by_key(|k| fpos[*k]);
        for k in ready {
            forder.push(k.clone());
            fremaining.remove(k);
        }
    }

    Ok(Schedule { inits: order, finis: forder })
}

/// DFS cycle check over initializer predecessor edges, with path reporting.
fn check_cycles(
    preds: &BTreeMap<InitKey, BTreeSet<InitKey>>,
    el: &Elaboration,
) -> Result<(), KnitError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let keys: Vec<&InitKey> = preds.keys().collect();
    let idx: BTreeMap<&InitKey, usize> = keys.iter().enumerate().map(|(i, k)| (*k, i)).collect();
    let mut marks = vec![Mark::White; keys.len()];
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        u: usize,
        keys: &[&InitKey],
        idx: &BTreeMap<&InitKey, usize>,
        preds: &BTreeMap<InitKey, BTreeSet<InitKey>>,
        marks: &mut [Mark],
        stack: &mut Vec<usize>,
        el: &Elaboration,
    ) -> Result<(), KnitError> {
        marks[u] = Mark::Grey;
        stack.push(u);
        for p in &preds[keys[u]] {
            if let Some(&v) = idx.get(p) {
                match marks[v] {
                    Mark::Grey => {
                        let start = stack.iter().position(|&s| s == v).unwrap_or(0);
                        let mut cycle: Vec<String> = stack[start..]
                            .iter()
                            .map(|&s| {
                                let (i, f) = keys[s];
                                format!("{}.{}", el.instances[*i].path, f)
                            })
                            .collect();
                        let (i, f) = keys[v];
                        cycle.push(format!("{}.{}", el.instances[*i].path, f));
                        return Err(KnitError::InitCycle { cycle });
                    }
                    Mark::White => dfs(v, keys, idx, preds, marks, stack, el)?,
                    Mark::Black => {}
                }
            }
        }
        stack.pop();
        marks[u] = Mark::Black;
        Ok(())
    }

    for u in 0..keys.len() {
        if marks[u] == Mark::White {
            dfs(u, &keys, &idx, preds, &mut marks, &mut stack, el)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;

    fn build(src: &str, root: &str) -> (Program, Elaboration) {
        let mut p = Program::new();
        p.load_str("t.unit", src).unwrap();
        let el = elaborate(&p, root).unwrap();
        (p, el)
    }

    /// The paper's exact scenario: open_log needs stdio orders the two
    /// components; serveLog needs stdio alone would not.
    #[test]
    fn initializer_level_dep_orders_components() {
        let src = r#"
            bundletype Serve = { serve_web }
            bundletype Stdio = { fopen }
            unit StdioU = {
                exports [ stdio : Stdio ];
                initializer stdio_init for stdio;
                files { "s.c" };
            }
            unit Log = {
                imports [ stdio : Stdio ];
                exports [ serveLog : Serve ];
                initializer open_log for serveLog;
                depends { open_log needs stdio; serveLog needs stdio; };
                files { "l.c" };
            }
            unit Sys = {
                exports [ out : Serve ];
                link {
                    s : StdioU;
                    l : Log [ stdio = s.stdio ];
                    out = l.serveLog;
                };
            }
        "#;
        let (p, el) = build(src, "Sys");
        let sched = schedule(&p, &el).unwrap();
        let names = sched.describe(&el);
        let pos = |n: &str| names.iter().position(|x| x.ends_with(n)).unwrap();
        assert!(pos("stdio_init") < pos("open_log"), "{names:?}");
    }

    /// Export-level deps alone must NOT order the initializers (§3.2:
    /// "this declaration alone does not constrain the order").
    #[test]
    fn export_level_dep_does_not_overconstrain() {
        let src = r#"
            bundletype A = { fa }
            bundletype B = { fb }
            unit UA = {
                imports [ b : B ];
                exports [ a : A ];
                initializer ia for a;
                depends { a needs b; };
                files { "a.c" };
            }
            unit UB = {
                imports [ a : A ];
                exports [ b : B ];
                initializer ib for b;
                depends { b needs a; };
                files { "b.c" };
            }
            unit Sys = {
                exports [ out : A ];
                link {
                    ua : UA [ b = ub.b ];
                    ub : UB [ a = ua.a ];
                    out = ua.a;
                };
            }
        "#;
        // mutual *export-level* deps form no initializer cycle
        let (p, el) = build(src, "Sys");
        let sched = schedule(&p, &el).unwrap();
        assert_eq!(sched.inits.len(), 2);
    }

    /// Initializer-level mutual deps DO form a cycle and must be reported.
    #[test]
    fn init_cycle_detected_with_path() {
        let src = r#"
            bundletype A = { fa }
            bundletype B = { fb }
            unit UA = {
                imports [ b : B ];
                exports [ a : A ];
                initializer ia for a;
                depends { ia needs b; };
                files { "a.c" };
            }
            unit UB = {
                imports [ a : A ];
                exports [ b : B ];
                initializer ib for b;
                depends { ib needs a; };
                files { "b.c" };
            }
            unit Sys = {
                exports [ out : A ];
                link {
                    ua : UA [ b = ub.b ];
                    ub : UB [ a = ua.a ];
                    out = ua.a;
                };
            }
        "#;
        let (p, el) = build(src, "Sys");
        match schedule(&p, &el) {
            Err(KnitError::InitCycle { cycle }) => {
                assert!(cycle.len() >= 2, "{cycle:?}");
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    /// Transitive ordering through a middle unit with no initializer.
    #[test]
    fn transitive_ordering_through_uninitialized_unit() {
        let src = r#"
            bundletype A = { fa }
            bundletype B = { fb }
            bundletype C = { fc }
            unit Base = {
                exports [ c : C ];
                initializer ic for c;
                files { "c.c" };
            }
            unit Middle = {
                imports [ c : C ];
                exports [ b : B ];
                depends { b needs c; };
                files { "m.c" };
            }
            unit Top = {
                imports [ b : B ];
                exports [ a : A ];
                initializer ia for a;
                depends { ia needs b; };
                files { "t.c" };
            }
            unit Sys = {
                exports [ out : A ];
                link {
                    base : Base;
                    mid : Middle [ c = base.c ];
                    top : Top [ b = mid.b ];
                    out = top.a;
                };
            }
        "#;
        let (p, el) = build(src, "Sys");
        let sched = schedule(&p, &el).unwrap();
        let names = sched.describe(&el);
        let pos = |n: &str| names.iter().position(|x| x.ends_with(n)).unwrap();
        // ia needs b; b (middle) needs c; so ic must run before ia even
        // though the middle unit has no initializer of its own.
        assert!(pos("ic") < pos("ia"), "{names:?}");
    }

    #[test]
    fn finalizers_run_in_reverse_dependency_order() {
        let src = r#"
            bundletype S = { fs }
            bundletype L = { fl }
            unit StdioU = {
                exports [ s : S ];
                initializer is for s;
                finalizer fs_close for s;
                files { "s.c" };
            }
            unit Log = {
                imports [ s : S ];
                exports [ l : L ];
                initializer il for l;
                finalizer fl_close for l;
                depends { il needs s; fl_close needs s; };
                files { "l.c" };
            }
            unit Sys = {
                exports [ out : L ];
                link {
                    s : StdioU;
                    l : Log [ s = s.s ];
                    out = l.l;
                };
            }
        "#;
        let (p, el) = build(src, "Sys");
        let sched = schedule(&p, &el).unwrap();
        let inits = sched.describe(&el);
        let finis: Vec<String> =
            sched.finis.iter().map(|(i, f)| format!("{}.{}", el.instances[*i].path, f)).collect();
        let ipos = |n: &str| inits.iter().position(|x| x.ends_with(n)).unwrap();
        let fpos = |n: &str| finis.iter().position(|x| x.ends_with(n)).unwrap();
        assert!(ipos("is") < ipos("il"));
        // log's finalizer uses stdio, so it must run BEFORE stdio's.
        assert!(fpos("fl_close") < fpos("fs_close"), "{finis:?}");
    }

    #[test]
    fn schedule_is_deterministic() {
        let src = r#"
            bundletype T = { f }
            unit Leaf = {
                exports [ o : T ];
                initializer boot for o;
                files { "l.c" };
            }
            unit Sys = {
                exports [ a : T, b : T, c : T ];
                link {
                    x : Leaf; y : Leaf; z : Leaf;
                    a = x.o; b = y.o; c = z.o;
                };
            }
        "#;
        let (p, el) = build(src, "Sys");
        let s1 = schedule(&p, &el).unwrap();
        let s2 = schedule(&p, &el).unwrap();
        assert_eq!(s1.inits, s2.inits);
        assert_eq!(s1.inits.len(), 3);
    }
}
