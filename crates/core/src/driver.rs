//! The Knit compiler pipeline.
//!
//! Mirrors §6 of the paper: *"In a typical use, the Knit compiler reads the
//! linking specification and unit files, generates initialization and
//! finalization code, runs the C compiler or assembler when necessary, and
//! ultimately produces object files. The object files are then processed by
//! a slightly modified version of GNU's objcopy, which handles renaming
//! symbols and duplicating object code for multiply-instantiated units.
//! Finally, these object files are linked together using ld to produce the
//! program."*
//!
//! Phases (each timed in [`BuildReport::phases`], reproducing the paper's
//! ">95% of build time is spent in the C compiler and linker" claim):
//!
//! 1. elaborate — compound units dissolve into an instance graph;
//! 2. constraints — architectural checks (§4), optional;
//! 3. schedule — initializer/finalizer order (§3.2);
//! 4. compile — each unit's C files through `cmini` (cached per unit:
//!    multiple instances share one compile);
//! 5. objcopy — per-instance symbol renaming and duplication;
//! 6. flatten — groups marked `flatten` are source-merged and recompiled
//!    (§6), replacing their per-instance objects;
//! 7. generate — the `__knit_boot` object with `__knit_init`,
//!    `__knit_fini`, and `__start`;
//! 8. link — everything through the same bag-of-objects `ld` as the
//!    baseline, now collision-free by construction.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cmini::CompileOptions;
use cobj::ir::Instr;
use cobj::object::{FuncDef, ObjectFile, Symbol};
use cobj::{Image, LayoutProfile};
use knit_lang::ast::{AtomicBody, UnitBody, UnitDecl};

use crate::cache::{BuildCache, StableHasher};
use crate::constraints::ConstraintReport;
use crate::elaborate::{Elaboration, Wire};
use crate::error::KnitError;
use crate::model::Program;
use crate::sched::Schedule;
use crate::vfs::SourceTree;

/// Options for one build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Name of the root unit.
    pub root: String,
    /// Bundle member of a root export to call from `__start` (after
    /// `__knit_init`, before `__knit_fini`). Defaults to `main`, silently
    /// skipped when absent; a member named here explicitly must exist.
    pub entry: Option<String>,
    /// Run the constraint checker (§4). Default true.
    pub check_constraints: bool,
    /// Honor `flatten` markers (§6). Default true.
    pub flatten: bool,
    /// Compiler flags for units that name no `flags` declaration.
    pub default_flags: Vec<String>,
    /// Names the runtime provides (undefined references to these become
    /// intrinsics; see `machine::runtime_symbols`).
    pub runtime_symbols: BTreeSet<String>,
    /// Maximum concurrent unit compilations (also bounds flatten-group
    /// recompiles). Defaults to the host's available parallelism; `1` gives
    /// a strictly serial build. Parallelism never changes the produced
    /// image: results are merged in deterministic unit order, so symbol
    /// mangling and link order are identical for every `jobs` value.
    pub jobs: usize,
    /// Execution profile driving the linker's profile-guided code layout
    /// (Pettis–Hansen-style hot/cold placement; see `cobj::layout`).
    /// `None` (the default) keeps the historical input-order placement
    /// byte-for-byte. In a session, swapping the profile invalidates
    /// exactly the link phase: compiles, objcopy, and flattening all
    /// reuse.
    pub profile: Option<Arc<LayoutProfile>>,
}

/// The host's available parallelism (the default for
/// [`BuildOptions::jobs`]).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl BuildOptions {
    /// Options for building `root` with the given runtime symbols.
    pub fn new(root: impl Into<String>, runtime: impl IntoIterator<Item = String>) -> Self {
        BuildOptions {
            root: root.into(),
            entry: None,
            check_constraints: true,
            flatten: true,
            default_flags: vec!["-O2".to_string()],
            runtime_symbols: runtime.into_iter().collect(),
            jobs: default_jobs(),
            profile: None,
        }
    }

    /// Start a fluent [`BuildOptionsBuilder`] for building `root`.
    ///
    /// ```
    /// use knit::BuildOptions;
    /// let opts = BuildOptions::root("Main").entry("main").jobs(4).flatten(false).build();
    /// assert_eq!(opts.root, "Main");
    /// assert_eq!(opts.entry.as_deref(), Some("main"));
    /// assert_eq!(opts.jobs, 4);
    /// assert!(!opts.flatten);
    /// ```
    pub fn root(root: impl Into<String>) -> BuildOptionsBuilder {
        BuildOptionsBuilder { opts: BuildOptions::new(root, Vec::new()) }
    }
}

/// Fluent builder for [`BuildOptions`], started by [`BuildOptions::root`].
/// Every setter has the field's default (documented on [`BuildOptions`])
/// until called.
#[derive(Debug, Clone)]
pub struct BuildOptionsBuilder {
    opts: BuildOptions,
}

impl BuildOptionsBuilder {
    /// Call this root export member from `__start` (it must exist).
    #[must_use]
    pub fn entry(mut self, member: impl Into<String>) -> Self {
        self.opts.entry = Some(member.into());
        self
    }

    /// Maximum concurrent unit compilations ([`BuildOptions::jobs`]).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.opts.jobs = jobs;
        self
    }

    /// Honor (or ignore) `flatten` markers (§6).
    #[must_use]
    pub fn flatten(mut self, on: bool) -> Self {
        self.opts.flatten = on;
        self
    }

    /// Run (or skip) the constraint checker (§4).
    #[must_use]
    pub fn check_constraints(mut self, on: bool) -> Self {
        self.opts.check_constraints = on;
        self
    }

    /// Compiler flags for units that name no `flags` declaration.
    #[must_use]
    pub fn default_flags(mut self, flags: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.opts.default_flags = flags.into_iter().map(Into::into).collect();
        self
    }

    /// Names the runtime provides (see `machine::runtime_symbols`).
    #[must_use]
    pub fn runtime_symbols(mut self, syms: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.opts.runtime_symbols = syms.into_iter().map(Into::into).collect();
        self
    }

    /// Drive code layout from an execution profile
    /// ([`BuildOptions::profile`]).
    #[must_use]
    pub fn profile(mut self, profile: impl Into<Option<Arc<LayoutProfile>>>) -> Self {
        self.opts.profile = profile.into();
        self
    }

    /// Finish, yielding the [`BuildOptions`].
    pub fn build(self) -> BuildOptions {
        self.opts
    }
}

/// Aggregate statistics about a build. Everything here is a deterministic
/// function of the program, sources, options, and cache warmth — never of
/// timing or of [`BuildOptions::jobs`] — so two builds of the same inputs
/// compare equal regardless of parallelism.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Atomic unit instances linked.
    pub instances: usize,
    /// Distinct units that actually went through `cmini` this build.
    /// Units whose objects were reused — from the [`BuildCache`] or from a
    /// session's memoized artifacts — count in
    /// [`BuildStats::units_reused`] instead.
    pub units_compiled: usize,
    /// Distinct units whose compiled objects were reused without running
    /// the compiler (cache hits plus incremental-session reuses).
    pub units_reused: usize,
    /// Objects handed to the final link.
    pub objects: usize,
    /// Flatten groups merged.
    pub flatten_groups: usize,
    /// Total text bytes of the image.
    pub text_size: u64,
    /// Units whose compiled objects came from the [`BuildCache`].
    pub cache_hits: usize,
    /// Units that went through `cmini` this build.
    pub cache_misses: usize,
}

/// Timing record for one distinct unit's compile step.
#[derive(Debug, Clone)]
pub struct UnitCompile {
    /// Unit name.
    pub unit: String,
    /// Wall-clock time spent (hashing + compiling, or hashing only on a
    /// cache hit).
    pub duration: Duration,
    /// Whether the compiled objects came from the cache.
    pub cache_hit: bool,
}

/// The result of a successful build.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// The linked, runnable image (entry = `__start`).
    pub image: Image,
    /// Per-phase wall-clock times, in pipeline order.
    pub phases: Vec<(&'static str, Duration)>,
    /// The initializer schedule, as `path.func` strings.
    pub schedule: Vec<String>,
    /// Constraint report, when checking ran.
    pub constraints: Option<ConstraintReport>,
    /// Mangled link-level name of each root export member
    /// (`"port.member"` → symbol), for harnesses that call into the image.
    pub exports: BTreeMap<String, String>,
    /// Build statistics.
    pub stats: BuildStats,
    /// Per-unit compile timings, sorted by unit name.
    pub unit_compiles: Vec<UnitCompile>,
    /// The parallelism this build ran with.
    pub jobs: usize,
    /// The elaboration (instance graph), for tools and tests.
    pub elaboration: Elaboration,
}

/// Mangled link-level name for an instance's export member.
pub fn mangle_export(inst: usize, port: &str, member: &str) -> String {
    format!("{member}_{port}_i{inst}")
}

/// Mangled link-level name for an instance-private global.
pub fn mangle_private(inst: usize, name: &str) -> String {
    format!("{name}_p{inst}")
}

/// Build `opts.root` from `program` and `tree` into a runnable image,
/// with a cold (single-use) compile cache.
pub fn build(
    program: &Program,
    tree: &SourceTree,
    opts: &BuildOptions,
) -> Result<BuildReport, KnitError> {
    // One-shot by design: a cold cache every time is the point here, so
    // the deprecated shared-cache path is the right implementation.
    #[allow(deprecated)]
    build_with_cache(program, tree, opts, &BuildCache::new())
}

/// Build `opts.root`, compiling through `cache`: units whose content
/// (preprocessed sources + flags + renames, see [`BuildCache`]) is already
/// cached skip `cmini` entirely. Reuse one cache across builds to make
/// rebuilds warm.
///
/// # Migration
///
/// Deprecated in favour of [`SessionHandle`](crate::SessionHandle), the
/// thread-safe session facade that also backs the composition server
/// ([`Server::open_session`](crate::server::Server)). A session keeps the
/// dependency ledger and per-phase memo between builds, so a rebuild after
/// a small edit redoes only the affected phases — this function re-runs
/// everything except the compile cache. Port code like this:
///
/// ```
/// use knit::{BuildOptions, SessionHandle};
///
/// let handle = SessionHandle::new(BuildOptions::root("App").jobs(1).build());
/// handle.load_units("app.unit", r#"
///     bundletype Main = { main }
///     unit App = { exports [ main : Main ]; files { "app.c" }; }
/// "#).unwrap();
/// handle.update_source("app.c", "int main() { return 7; }");
/// let cold = handle.build().unwrap();
/// let warm = handle.build().unwrap(); // full reuse, no work
/// assert_eq!(cold.image, warm.image);
/// ```
///
/// To share a compile cache across sessions (what the `cache` argument
/// gave you), open sessions from one [`Engine`](crate::server::Engine).
#[deprecated(
    since = "0.2.0",
    note = "use `SessionHandle` (or `Engine::open_session`) — sessions keep \
            the dependency ledger between builds and are thread-safe"
)]
pub fn build_with_cache(
    program: &Program,
    tree: &SourceTree,
    opts: &BuildOptions,
    cache: &BuildCache,
) -> Result<BuildReport, KnitError> {
    let mut memo = crate::session::Memo::default();
    let mut stats = crate::session::SessionStats::default();
    crate::session::run_build(program, tree, opts, cache, &mut memo, &mut stats, &BTreeSet::new())
}

/// Run `task(0..n)` on up to `jobs` scoped worker threads and return the
/// results in index order. With `jobs <= 1` (or a single task) everything
/// runs inline on the caller's thread — the serial baseline pays no thread
/// overhead. Results are merged by index, so callers observe a
/// deterministic order regardless of scheduling.
pub(crate) fn run_indexed<T, F>(jobs: usize, n: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, task(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("compile worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots.into_iter().map(|v| v.expect("every index produced")).collect()
}

/// Compile options for flattened groups: always optimize (that is the
/// point), with a generous inline budget.
pub(crate) fn flatten_opts(opts: &BuildOptions) -> CompileOptions {
    let mut c = CompileOptions::from_flags(&opts.default_flags).unwrap_or_default();
    c.opt = cmini::OptLevel::O2;
    c.inline_budget = 48;
    c
}

/// A unit compiled once, shared by all its instances — and, through the
/// [`BuildCache`], by every later build of the same content.
#[derive(Debug)]
pub struct CompiledUnit {
    /// Parsed translation units (for flattening).
    pub(crate) tus: Vec<cmini::ast::TranslationUnit>,
    /// Compiled objects, one per source file.
    pub(crate) objects: Vec<ObjectFile>,
    /// All link-visible names defined across the objects.
    pub(crate) defined: BTreeSet<String>,
    /// All undefined references across the objects.
    pub(crate) undefined: BTreeSet<String>,
}

/// One resolved `files { … }` entry, preprocessed and ready to hash or
/// compile.
enum FileInput {
    /// A registered pre-compiled object (used as-is).
    Object(ObjectFile),
    /// A C source, already preprocessed (so the hash sees through
    /// `#include`, and a cache miss does not preprocess twice).
    Source { file: String, expanded: String },
}

/// The result of pushing one unit through [`compile_unit_cached`]: the
/// shared compiled artifact, its content-hash cache key, whether the cache
/// supplied it, and every source-tree path the compile consulted. Misses
/// are recorded too — a header that did not exist yet must still
/// invalidate the unit when it appears.
pub(crate) struct UnitBuild {
    /// The compiled unit (possibly shared with the cache and other memos).
    pub(crate) cu: Arc<CompiledUnit>,
    /// The [`BuildCache`] content key — a fingerprint of everything that
    /// can change the compiled objects.
    pub(crate) key: u64,
    /// Whether `cu` came out of the cache without running `cmini`.
    pub(crate) cache_hit: bool,
    /// Every source-tree path consulted (sources, headers, objects; hits
    /// and misses) — the dependency ledger for incremental invalidation.
    pub(crate) reads: BTreeSet<String>,
}

/// A [`SourceTree`] view that records every path consulted, hit or miss.
pub(crate) struct RecordingTree<'a> {
    pub(crate) tree: &'a SourceTree,
    pub(crate) reads: RefCell<BTreeSet<String>>,
}

impl<'a> RecordingTree<'a> {
    pub(crate) fn new(tree: &'a SourceTree) -> RecordingTree<'a> {
        RecordingTree { tree, reads: RefCell::new(BTreeSet::new()) }
    }

    pub(crate) fn note(&self, path: &str) {
        self.reads.borrow_mut().insert(path.to_string());
    }
}

impl cmini::FileProvider for RecordingTree<'_> {
    fn read_file(&self, path: &str) -> Option<String> {
        self.note(path);
        self.tree.get(path).map(str::to_string)
    }
}

/// Compile `unit_name` through the cache.
///
/// The key hashes everything that can change the compiled objects — the
/// preprocessed text of every source, the structure of every pre-compiled
/// object, the effective flags (in order), and the unit's renames — and
/// nothing else, so unrelated edits leave entries valid. Runs concurrently
/// with other units under [`BuildOptions::jobs`]; `cmini`'s entry points
/// are pure functions of their arguments, which is what makes both the
/// parallelism and the caching sound.
pub(crate) fn compile_unit_cached(
    program: &Program,
    tree: &SourceTree,
    unit_name: &str,
    opts: &BuildOptions,
    cache: &BuildCache,
) -> Result<UnitBuild, KnitError> {
    let unit = &program.units[unit_name];
    let body = atomic_body(unit);
    let flags: Vec<String> = match &body.flags {
        Some(name) => program.flags[name].clone(),
        None => opts.default_flags.clone(),
    };
    let copts = CompileOptions::from_flags(&flags)
        .map_err(|e| KnitError::BadDeclaration { unit: unit_name.to_string(), what: e })?;

    // --- resolve + preprocess every file, hashing as we go ---
    let recorder = RecordingTree::new(tree);
    let mut h = StableHasher::new();
    for f in &flags {
        h.write_str("flag");
        h.write_str(f);
    }
    for r in &body.renames {
        h.write_str("rename");
        h.write_str(&r.port);
        h.write_str(&r.member);
        h.write_str(&r.to);
    }
    let mut inputs: Vec<FileInput> = Vec::with_capacity(body.files.len());
    for file in &body.files {
        recorder.note(file);
        // pre-compiled objects: "Knit can actually work with C, assembly,
        // and object code" (§3.2); registered objects are used as-is
        if let Some(obj) = tree.get_object(file) {
            h.write_str("obj");
            h.write_str(&format!("{obj:?}"));
            inputs.push(FileInput::Object(obj.clone()));
            continue;
        }
        let src = tree.get(file).ok_or_else(|| KnitError::MissingSource {
            unit: unit_name.to_string(),
            path: file.clone(),
        })?;
        let expanded = cmini::pp::preprocess(file, src, &copts.pp, &recorder)?;
        h.write_str("src");
        h.write_str(file);
        h.write_str(&expanded);
        inputs.push(FileInput::Source { file: file.clone(), expanded });
    }
    let key = h.finish();
    if let Some(cu) = cache.lookup(key) {
        return Ok(UnitBuild { cu, key, cache_hit: true, reads: recorder.reads.into_inner() });
    }

    // --- miss: run the compiler over the preprocessed inputs ---
    let mut tus = Vec::new();
    let mut objects = Vec::new();
    let mut defined = BTreeSet::new();
    let mut undefined = BTreeSet::new();
    for input in inputs {
        match input {
            FileInput::Object(obj) => {
                obj.validate().map_err(|e| KnitError::BadDeclaration {
                    unit: unit_name.to_string(),
                    what: format!("pre-compiled object `{}` is invalid: {e}", obj.name),
                })?;
                defined.extend(obj.exported_names().iter().map(|s| s.to_string()));
                undefined.extend(obj.undefined_names().iter().map(|s| s.to_string()));
                objects.push(obj);
            }
            FileInput::Source { file, expanded } => {
                let tu = cmini::frontend_expanded(&file, &expanded)?;
                let obj = cmini::backend(tu.clone(), &copts)?;
                defined.extend(obj.exported_names().iter().map(|s| s.to_string()));
                undefined.extend(obj.undefined_names().iter().map(|s| s.to_string()));
                tus.push(tu);
                objects.push(obj);
            }
        }
    }
    // cross-file references inside the unit are not "undefined"
    undefined.retain(|n| !defined.contains(n));
    let cu = Arc::new(CompiledUnit { tus, objects, defined, undefined });
    cache.insert(key, Arc::clone(&cu));
    Ok(UnitBuild { cu, key, cache_hit: false, reads: recorder.reads.into_inner() })
}

pub(crate) fn atomic_body(unit: &UnitDecl) -> &AtomicBody {
    match &unit.body {
        UnitBody::Atomic(a) => a,
        UnitBody::Compound(_) => unreachable!("instances are atomic by construction"),
    }
}

/// The C identifier of a port member, after the unit's `rename` clauses.
pub(crate) fn c_id(body: &AtomicBody, port: &str, member: &str) -> String {
    body.renames
        .iter()
        .find(|r| r.port == port && r.member == member)
        .map(|r| r.to.clone())
        .unwrap_or_else(|| member.to_string())
}

/// Build the link-level symbol map for one instance: exports to their
/// mangles, imports to their providers' mangles (or raw member names when
/// wired to the external world), everything else defined by the unit to a
/// private per-instance mangle. Errors reproduce Knit's checks: missing
/// export definitions, import/export C-identifier conflicts (→ rename),
/// and references to symbols that are neither imported nor defined.
pub(crate) fn instance_symbol_map(
    program: &Program,
    el: &Elaboration,
    inst_id: usize,
    cu: &CompiledUnit,
) -> Result<BTreeMap<String, String>, KnitError> {
    let inst = &el.instances[inst_id];
    let unit = &program.units[&inst.unit];
    let body = atomic_body(unit);
    let mut map: BTreeMap<String, String> = BTreeMap::new();

    // exports
    let mut export_cids: BTreeMap<String, (String, String)> = BTreeMap::new();
    for p in &unit.exports {
        for member in program.members_of(&p.bundle_type).expect("validated") {
            let cid = c_id(body, &p.name, member);
            if export_cids.insert(cid.clone(), (p.name.clone(), member.clone())).is_some() {
                return Err(KnitError::NeedsRename { unit: unit.name.clone(), c_name: cid });
            }
            if !cu.defined.contains(&cid) {
                return Err(KnitError::BadDeclaration {
                    unit: unit.name.clone(),
                    what: format!(
                        "export `{}.{member}` should be defined as C symbol `{cid}`, but no file defines it",
                        p.name
                    ),
                });
            }
            map.insert(cid, mangle_export(inst_id, &p.name, member));
        }
    }
    // imports
    for p in &unit.imports {
        let wire = inst.imports.get(&p.name).expect("elaboration wired every import");
        for member in program.members_of(&p.bundle_type).expect("validated") {
            let cid = c_id(body, &p.name, member);
            if export_cids.contains_key(&cid) || map.contains_key(&cid) {
                return Err(KnitError::NeedsRename { unit: unit.name.clone(), c_name: cid });
            }
            let target = match wire {
                Wire::Export { instance, port } => mangle_export(*instance, port, member),
                Wire::External { .. } => member.clone(),
            };
            map.insert(cid, target);
        }
    }
    // initializers/finalizers must be defined
    for d in body.initializers.iter().chain(body.finalizers.iter()) {
        if !cu.defined.contains(&d.func) && !map.contains_key(&d.func) {
            return Err(KnitError::BadDeclaration {
                unit: unit.name.clone(),
                what: format!("initializer/finalizer `{}` is not defined by the unit", d.func),
            });
        }
    }
    // remaining defined globals become instance-private
    for name in &cu.defined {
        if !map.contains_key(name) && !name.starts_with("__") {
            map.insert(name.clone(), mangle_private(inst_id, name));
        }
    }
    // remaining undefined references must be runtime symbols
    for name in &cu.undefined {
        if !map.contains_key(name) && !name.starts_with("__") {
            return Err(KnitError::UnboundSymbol {
                instance: inst.path.clone(),
                symbol: name.clone(),
            });
        }
    }
    Ok(map)
}

/// Link-visible names a flatten group must keep: exports wired to
/// instances outside the group, root exports provided by the group, and
/// the group's initializers/finalizers (called by the boot object).
pub(crate) fn group_externals(
    program: &Program,
    el: &Elaboration,
    group: &BTreeSet<usize>,
    schedule: &Schedule,
    maps: &[BTreeMap<String, String>],
) -> BTreeSet<String> {
    let mut ext: BTreeSet<String> = BTreeSet::new();
    fn add_port(
        ext: &mut BTreeSet<String>,
        program: &Program,
        el: &Elaboration,
        inst: usize,
        port: &str,
    ) {
        let unit = &program.units[&el.instances[inst].unit];
        if let Some(p) = unit.exports.iter().find(|p| p.name == port) {
            for member in program.members_of(&p.bundle_type).expect("validated") {
                ext.insert(mangle_export(inst, port, member));
            }
        }
    }
    // imports of outside instances wired into the group
    for inst in &el.instances {
        if group.contains(&inst.id) {
            continue;
        }
        for wire in inst.imports.values() {
            if let Wire::Export { instance, port } = wire {
                if group.contains(instance) {
                    add_port(&mut ext, program, el, *instance, port);
                }
            }
        }
    }
    // root exports provided by the group
    for (inst, port) in el.root_exports.values() {
        if group.contains(inst) {
            add_port(&mut ext, program, el, *inst, port);
        }
    }
    // initializers/finalizers of group members
    for (inst, func) in schedule.inits.iter().chain(schedule.finis.iter()) {
        if group.contains(inst) {
            if let Some(m) = maps[*inst].get(func) {
                ext.insert(m.clone());
            }
        }
    }
    ext
}

/// Mangled link-level name of each root export member
/// (`"port.member"` → symbol) — the image's public call surface.
pub(crate) fn root_exports_map(program: &Program, el: &Elaboration) -> BTreeMap<String, String> {
    let mut exports = BTreeMap::new();
    let root_unit = &program.units[&el.root];
    for p in &root_unit.exports {
        let (inst, eport) = &el.root_exports[&p.name];
        for member in program.members_of(&p.bundle_type).expect("validated") {
            exports.insert(format!("{}.{member}", p.name), mangle_export(*inst, eport, member));
        }
    }
    exports
}

/// Generate the `__knit_boot` object: `__knit_init`, `__knit_fini`, and
/// `__start` (init → optional entry call → fini → return).
pub(crate) fn boot_object(
    program: &Program,
    el: &Elaboration,
    schedule: &Schedule,
    maps: &[BTreeMap<String, String>],
    opts: &BuildOptions,
) -> Result<(ObjectFile, BTreeMap<String, String>), KnitError> {
    let mut obj = ObjectFile::new("__knit_boot.o");
    let init_sym = obj.add_symbol(Symbol::func("__knit_init"));
    let fini_sym = obj.add_symbol(Symbol::func("__knit_fini"));
    let start_sym = obj.add_symbol(Symbol::func("__start"));

    let resolve = |inst: usize, func: &str| -> String {
        maps[inst].get(func).cloned().unwrap_or_else(|| func.to_string())
    };

    // __knit_init
    let mut body = Vec::new();
    for (inst, func) in &schedule.inits {
        let target = obj.add_symbol(Symbol::undef(resolve(*inst, func)));
        body.push(Instr::Call { dst: None, target, args: vec![] });
    }
    body.push(Instr::Ret { value: None });
    obj.funcs.push(FuncDef { sym: init_sym, params: 0, nregs: 0, frame_size: 0, body });

    // __knit_fini
    let mut body = Vec::new();
    for (inst, func) in &schedule.finis {
        let target = obj.add_symbol(Symbol::undef(resolve(*inst, func)));
        body.push(Instr::Call { dst: None, target, args: vec![] });
    }
    body.push(Instr::Ret { value: None });
    obj.funcs.push(FuncDef { sym: fini_sym, params: 0, nregs: 0, frame_size: 0, body });

    // exports table: every root export member's mangled name
    let exports = root_exports_map(program, el);

    // __start
    let entry_member = opts.entry.clone().unwrap_or_else(|| "main".to_string());
    let entry_symbol = exports
        .iter()
        .find(|(k, _)| k.ends_with(&format!(".{entry_member}")))
        .map(|(_, v)| v.clone());
    if opts.entry.is_some() && entry_symbol.is_none() {
        return Err(KnitError::Unknown {
            kind: "entry member",
            name: entry_member,
            context: "root unit exports".to_string(),
        });
    }
    let mut body = Vec::new();
    body.push(Instr::Call { dst: None, target: init_sym, args: vec![] });
    let ret_reg = match entry_symbol {
        Some(sym) => {
            let target = obj.add_symbol(Symbol::undef(sym));
            body.push(Instr::Call { dst: Some(0), target, args: vec![] });
            Some(0)
        }
        None => None,
    };
    body.push(Instr::Call { dst: None, target: fini_sym, args: vec![] });
    body.push(Instr::Ret { value: ret_reg });
    obj.funcs.push(FuncDef { sym: start_sym, params: 0, nregs: 1, frame_size: 0, body });

    Ok((obj, exports))
}
