//! Cross-unit static analysis: lints over the instance graph and ASTs.
//!
//! The analyzer runs after elaboration and scheduling but *before*
//! compilation — it parses each unit's preprocessed sources with
//! [`cmini::frontend_expanded`] (a pure frontend pass) and never invokes
//! the backend, so a lint-dirty program can still be analyzed even when a
//! full build would abort (e.g. on an undefined export, which the build
//! pipeline hard-errors as `K0009`).
//!
//! Lints live in the [`LINTS`] registry under stable `K1xxx` codes. Each
//! has a default level that can be overridden per run with [`LintConfig`]
//! (the `knitc lint --allow/--warn/--deny` flags) and per unit with
//! `#[allow(...)]` / `#[warn(...)]` / `#[deny(...)]` pragmas on the unit
//! declaration. Results come back as ordinary
//! [`Diagnostic`]s in the canonical deterministic
//! order ([`crate::diag::sort_dedupe`]).
//!
//! The four shipped lints:
//!
//! * **K1001 `undefined-export`** — a bundle the unit claims to export has
//!   a member no source file defines; the build would fail later, the lint
//!   points at the port.
//! * **K1002 `unused-import`** — an imported symbol no C body or global
//!   initializer ever references; dead wiring in the link block.
//! * **K1003 `dead-export`** — an instance export no other instance
//!   imports and the root does not re-export; dead code the linker drags
//!   in anyway.
//! * **K1004 `init-order-use`** — code reachable from an initializer calls
//!   an imported function whose provider initializes *later* in the
//!   computed schedule (§3.2); the fix is a fine-grained `depends` clause.
//! * **K1005 `flatten-hazard`** — constructs the flattening inliner (§6)
//!   bails on inside a `flatten` group: varargs, address-taken functions,
//!   self-recursion, and same-named statics across the unit's files.
//! * **K1006–K1009** — the concurrency lints of the cross-unit lockset
//!   race analysis (the `race` submodule): unguarded shared writes, inconsistent
//!   locks, lock leaks, and lock-free read-modify-writes of shared
//!   statics, for compositions whose root exports two or more
//!   concurrently-drivable ports.
//!
//! [`BuildSession::analyze`](crate::session::BuildSession::analyze)
//! memoizes per-unit summaries by declaration fingerprint and source
//! reads, so an incremental session re-analyzes exactly the units an edit
//! touched. The one-shot entry point is [`lint`].

pub(crate) mod race;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cmini::ast::{Item, Storage};
use cmini::visit::{merge_uses, tu_uses, TuUses};
use cmini::CompileOptions;
use knit_lang::ast::{PragmaLevel, UnitDecl};

use crate::diag::{self, Diagnostic, Severity};
use crate::driver::{atomic_body, c_id, BuildOptions, RecordingTree};
use crate::elaborate::{elaborate, Elaboration, Wire};
use crate::error::KnitError;
use crate::model::Program;
use crate::sched::{self, Schedule};
use crate::session::{fp_unit_decl, PhaseCount};
use crate::vfs::SourceTree;

/// How a lint's findings are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Suppress the lint entirely.
    Allow,
    /// Report as a warning (does not fail `knitc lint`).
    Warn,
    /// Report as an error (`knitc lint` exits nonzero).
    Deny,
}

/// One registered lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable diagnostic code (`K1001`…).
    pub code: &'static str,
    /// Human name, hyphenated (`unused-import`). Pragmas and CLI flags
    /// accept either `-` or `_` as the separator.
    pub name: &'static str,
    /// Level applied when neither a pragma nor the CLI overrides it.
    pub default_level: LintLevel,
    /// One-line summary for `knitc explain` and the docs table.
    pub summary: &'static str,
    /// A minimal example that triggers it.
    pub example: &'static str,
}

/// The lint registry. Ordered by code; every entry defaults to
/// [`LintLevel::Warn`] so `knitc lint` is advisory unless `--deny` is
/// given.
pub const LINTS: &[Lint] = &[
    Lint {
        code: "K1001",
        name: "undefined-export",
        default_level: LintLevel::Warn,
        summary: "a bundle export has a member no source file of the unit defines",
        example: "exports [ m : Math ];  // but no file defines `add`, Math's only member",
    },
    Lint {
        code: "K1002",
        name: "unused-import",
        default_level: LintLevel::Warn,
        summary: "an imported symbol is never referenced in any C body or global initializer",
        example: "imports [ log : Log ];  // but `log_msg` never appears in the unit's files",
    },
    Lint {
        code: "K1003",
        name: "dead-export",
        default_level: LintLevel::Warn,
        summary: "an instance export no other instance imports and the root does not re-export",
        example: "link { spare : Logger; }  // nothing wires an import to spare.log",
    },
    Lint {
        code: "K1004",
        name: "init-order-use",
        default_level: LintLevel::Warn,
        summary: "an initializer reaches a call to an import whose provider initializes later",
        example: "initializer boot for runp;  // boot() calls log_msg, Logger's init runs later",
    },
    Lint {
        code: "K1005",
        name: "flatten-hazard",
        default_level: LintLevel::Warn,
        summary: "a flattened unit uses constructs the cross-unit inliner bails on",
        example: "int chatter(int n, ...) { ... }  // varargs are never inlined (§6)",
    },
    Lint {
        code: "K1006",
        name: "unguarded-shared-write",
        default_level: LintLevel::Warn,
        summary: "a static reachable from two or more root export closures is written with no lock held",
        example: "sq_copy(ring[slot], p->data, n);  // called from router0 and router1, no `lock = 1` first",
    },
    Lint {
        code: "K1007",
        name: "inconsistent-lock",
        default_level: LintLevel::Warn,
        summary: "the same shared static is guarded by different locks on different paths",
        example: "while (lock_a) { } lock_a = 1; n++;  // but pop() guards `n` with lock_b",
    },
    Lint {
        code: "K1008",
        name: "lock-leak",
        default_level: LintLevel::Warn,
        summary: "a function can return while still holding a spin lock it acquired",
        example: "lock = 1; if (fault) return -1;  // the early return skips `lock = 0`",
    },
    Lint {
        code: "K1009",
        name: "atomicity-hint",
        default_level: LintLevel::Warn,
        summary: "a read-modify-write of a shared static happens outside any lock region",
        example: "contended++;  // racing increments from two cores lose updates",
    },
];

/// Normalize a lint name: pragmas use `_` (the `.unit` lexer has no `-`
/// token), the CLI and registry use `-`; both spellings resolve.
fn norm(name: &str) -> String {
    name.replace('-', "_")
}

/// Look up a lint by name, accepting either separator style.
pub fn lint_by_name(name: &str) -> Option<&'static Lint> {
    let n = norm(name);
    LINTS.iter().find(|l| norm(l.name) == n)
}

/// Per-run lint configuration: CLI-level overrides plus `--deny warnings`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    levels: BTreeMap<&'static str, LintLevel>,
    deny_warnings: bool,
}

impl LintConfig {
    /// A configuration with every lint at its default level.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Override `name`'s level for this run (strongest override: beats
    /// both the default and unit pragmas). Unknown names are a `K0003`
    /// error so CLI typos don't silently configure nothing.
    pub fn set(&mut self, name: &str, level: LintLevel) -> Result<(), KnitError> {
        let lint = lint_by_name(name).ok_or_else(|| KnitError::Unknown {
            kind: "lint",
            name: name.to_string(),
            context: "lint level flag".to_string(),
        })?;
        self.levels.insert(lint.code, level);
        Ok(())
    }

    /// Promote surviving warnings to errors (`--deny warnings`). An
    /// `allow` still suppresses.
    pub fn deny_warnings(&mut self, on: bool) {
        self.deny_warnings = on;
    }

    /// Resolve the effective level of `lint` for `unit`: registry default,
    /// then the unit's pragmas in declaration order, then CLI overrides.
    fn level_for(&self, lint: &Lint, unit: &UnitDecl) -> LintLevel {
        let mut level = lint.default_level;
        let lint_norm = norm(lint.name);
        for p in &unit.pragmas {
            if p.lints.iter().any(|n| norm(n) == lint_norm) {
                level = match p.level {
                    PragmaLevel::Allow => LintLevel::Allow,
                    PragmaLevel::Warn => LintLevel::Warn,
                    PragmaLevel::Deny => LintLevel::Deny,
                };
            }
        }
        if let Some(&l) = self.levels.get(lint.code) {
            level = l;
        }
        level
    }
}

/// What the analyzer learned about one unit's sources: merged identifier
/// and call-graph facts, link-visible definitions, and cross-file static
/// collisions. Cached per unit by the session engine.
#[derive(Debug, Clone, Default)]
pub(crate) struct UnitSummary {
    /// Merged [`TuUses`] across the unit's files.
    pub(crate) uses: TuUses,
    /// Link-visible symbols the unit defines (non-static functions with
    /// bodies, public globals, and exports of pre-compiled objects).
    pub(crate) defined: BTreeSet<String>,
    /// `static` names defined in more than one of the unit's files.
    pub(crate) static_collisions: BTreeSet<String>,
    /// Source-tree paths read while summarizing (files plus includes);
    /// the session evicts the summary when any of them changes.
    pub(crate) reads: BTreeSet<String>,
    /// Lock-skeleton facts for the race lints (K1006–K1009).
    pub(crate) race: race::RaceSummary,
}

/// Parse (but do not compile) every file of `unit_name` and summarize it.
pub(crate) fn summarize_unit(
    program: &Program,
    tree: &SourceTree,
    unit_name: &str,
    opts: &BuildOptions,
) -> Result<UnitSummary, KnitError> {
    let body = atomic_body(&program.units[unit_name]);
    let flags: Vec<String> = match &body.flags {
        Some(name) => program.flags[name].clone(),
        None => opts.default_flags.clone(),
    };
    let copts = CompileOptions::from_flags(&flags)
        .map_err(|e| KnitError::BadDeclaration { unit: unit_name.to_string(), what: e })?;

    let recorder = RecordingTree::new(tree);
    let mut summary = UnitSummary::default();
    let mut statics_seen: BTreeSet<String> = BTreeSet::new();
    let mut parsed: Vec<cmini::ast::TranslationUnit> = Vec::new();
    for file in &body.files {
        recorder.note(file);
        if let Some(obj) = tree.get_object(file) {
            summary.defined.extend(obj.exported_names().iter().map(|s| s.to_string()));
            // an object's undefined references count as uses of imports
            summary.uses.referenced.extend(obj.undefined_names().iter().map(|s| s.to_string()));
            continue;
        }
        let src = tree.get(file).ok_or_else(|| KnitError::MissingSource {
            unit: unit_name.to_string(),
            path: file.clone(),
        })?;
        let expanded = cmini::pp::preprocess(file, src, &copts.pp, &recorder)?;
        let tu = cmini::frontend_expanded(file, &expanded)?;
        for item in &tu.items {
            match item {
                Item::Func(f) if f.body.is_some() && f.storage != Storage::Static => {
                    summary.defined.insert(f.name.clone());
                }
                Item::Global(g) if g.storage == Storage::Public => {
                    summary.defined.insert(g.name.clone());
                }
                _ => {}
            }
        }
        let uses = tu_uses(&tu);
        for s in &uses.statics {
            if !statics_seen.insert(s.clone()) {
                summary.static_collisions.insert(s.clone());
            }
        }
        merge_uses(&mut summary.uses, &uses);
        parsed.push(tu);
    }
    summary.race = race::race_summary(&parsed);
    summary.reads = recorder.reads.into_inner();
    Ok(summary)
}

/// The result of one analysis run.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All emitted diagnostics, in canonical order.
    pub diagnostics: Vec<Diagnostic>,
    /// Distinct units whose sources were analyzed.
    pub units_analyzed: usize,
}

impl AnalysisReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether any diagnostic is an error (drives `knitc lint`'s exit
    /// status).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }
}

/// A memoized per-unit summary, keyed by the unit's declaration
/// fingerprint; the session evicts it when any of `summary.reads` is
/// dirtied.
#[derive(Debug)]
pub(crate) struct AnalysisMemo {
    pub(crate) decl_fp: u64,
    pub(crate) summary: Arc<UnitSummary>,
}

/// Summarize every instantiated unit (through `memo`) and run the lint
/// passes. `counts` tallies per-unit summary runs vs reuses.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_analysis(
    program: &Program,
    tree: &SourceTree,
    opts: &BuildOptions,
    config: &LintConfig,
    el: &Elaboration,
    schedule: &Schedule,
    memo: &mut BTreeMap<String, AnalysisMemo>,
    counts: &mut PhaseCount,
) -> Result<AnalysisReport, KnitError> {
    let distinct: BTreeSet<&str> = el.instances.iter().map(|i| i.unit.as_str()).collect();
    let mut summaries: BTreeMap<&str, Arc<UnitSummary>> = BTreeMap::new();
    for name in &distinct {
        let decl_fp = fp_unit_decl(program, name, opts);
        if let Some(m) = memo.get(*name) {
            if m.decl_fp == decl_fp {
                counts.reuses += 1;
                summaries.insert(name, Arc::clone(&m.summary));
                continue;
            }
        }
        counts.runs += 1;
        let summary = Arc::new(summarize_unit(program, tree, name, opts)?);
        memo.insert(name.to_string(), AnalysisMemo { decl_fp, summary: Arc::clone(&summary) });
        summaries.insert(name, summary);
    }
    let mut diagnostics = run_lints(program, el, schedule, opts, &summaries, config);
    diag::sort_dedupe(&mut diagnostics);
    Ok(AnalysisReport { diagnostics, units_analyzed: distinct.len() })
}

/// One-shot analysis: elaborate, schedule, and lint `opts.root`.
pub fn lint(
    program: &Program,
    tree: &SourceTree,
    opts: &BuildOptions,
    config: &LintConfig,
) -> Result<AnalysisReport, KnitError> {
    let el = elaborate(program, &opts.root)?;
    let schedule = sched::schedule(program, &el)?;
    let mut memo = BTreeMap::new();
    let mut counts = PhaseCount::default();
    run_analysis(program, tree, opts, config, &el, &schedule, &mut memo, &mut counts)
}

/// Emit one finding at the level `config` resolves for (`lint`, `unit`).
#[allow(clippy::too_many_arguments)]
fn emit(
    diags: &mut Vec<Diagnostic>,
    config: &LintConfig,
    lint_code: &str,
    unit: &UnitDecl,
    span: Option<(String, u32, u32)>,
    message: String,
    notes: Vec<String>,
) {
    let lint = LINTS.iter().find(|l| l.code == lint_code).expect("registered lint");
    let severity = match config.level_for(lint, unit) {
        LintLevel::Allow => return,
        LintLevel::Warn if !config.deny_warnings => Severity::Warning,
        _ => Severity::Error,
    };
    diags.push(Diagnostic { code: lint.code, severity, message, span, notes });
}

/// Names of every function transitively reachable from `start` through
/// the direct-call graph (including undefined callees — those are the
/// imports we care about).
fn reachable_calls(calls: &BTreeMap<String, BTreeSet<String>>, start: &str) -> BTreeSet<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut work = vec![start.to_string()];
    while let Some(f) = work.pop() {
        if let Some(callees) = calls.get(&f) {
            for c in callees {
                if seen.insert(c.clone()) {
                    work.push(c.clone());
                }
            }
        }
    }
    seen
}

fn span_in(file: Option<&str>, s: knit_lang::token::Span) -> Option<(String, u32, u32)> {
    file.map(|f| (f.to_string(), s.line, s.col))
}

fn run_lints(
    program: &Program,
    el: &Elaboration,
    schedule: &Schedule,
    opts: &BuildOptions,
    summaries: &BTreeMap<&str, Arc<UnitSummary>>,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // --- per-unit lints: K1001 undefined-export, K1002 unused-import ---
    for (unit_name, summary) in summaries {
        let unit = &program.units[*unit_name];
        let body = atomic_body(unit);
        let file = program.unit_site(unit_name).map(|(f, _)| f);
        for p in &unit.exports {
            for m in program.members_of(&p.bundle_type).unwrap_or_default() {
                let cid = c_id(body, &p.name, m);
                if !summary.defined.contains(&cid) {
                    emit(
                        &mut diags,
                        config,
                        "K1001",
                        unit,
                        span_in(file, p.span),
                        format!(
                            "unit `{unit_name}`: export `{}.{m}` resolves to C symbol \
                             `{cid}`, but no file of the unit defines it",
                            p.name
                        ),
                        vec![format!(
                            "define `{cid}` in one of {{ {} }} or rename the member",
                            body.files.join(", ")
                        )],
                    );
                }
            }
        }
        for p in &unit.imports {
            for m in program.members_of(&p.bundle_type).unwrap_or_default() {
                let cid = c_id(body, &p.name, m);
                if !summary.uses.referenced.contains(&cid) {
                    emit(
                        &mut diags,
                        config,
                        "K1002",
                        unit,
                        span_in(file, p.span),
                        format!(
                            "unit `{unit_name}`: imported symbol `{}.{m}` (C `{cid}`) is \
                             never referenced",
                            p.name
                        ),
                        vec![format!("drop the import `{}` or use `{cid}`", p.name)],
                    );
                }
            }
        }
    }

    // --- K1003 dead-export: graph-level liveness of instance exports ---
    let mut used: BTreeSet<(usize, &str)> = BTreeSet::new();
    for inst in &el.instances {
        for w in inst.imports.values() {
            if let Wire::Export { instance, port } = w {
                used.insert((*instance, port.as_str()));
            }
        }
    }
    for (inst, port) in el.root_exports.values() {
        used.insert((*inst, port.as_str()));
    }
    for inst in &el.instances {
        let unit = &program.units[&inst.unit];
        let file = program.unit_site(&inst.unit).map(|(f, _)| f);
        for p in &unit.exports {
            if !used.contains(&(inst.id, p.name.as_str())) {
                emit(
                    &mut diags,
                    config,
                    "K1003",
                    unit,
                    span_in(file, p.span),
                    format!(
                        "instance `{}`: export `{}` is never imported by any instance \
                         and is not a root export",
                        inst.path, p.name
                    ),
                    vec!["remove the instance or wire something to the export".to_string()],
                );
            }
        }
    }

    // --- K1004 init-order-use: initializer call graph vs schedule ---
    let pos: BTreeMap<(usize, &str), usize> =
        schedule.inits.iter().enumerate().map(|(i, (id, f))| ((*id, f.as_str()), i)).collect();
    for inst in &el.instances {
        let unit = &program.units[&inst.unit];
        let body = atomic_body(unit);
        let file = program.unit_site(&inst.unit).map(|(f, _)| f);
        let Some(summary) = summaries.get(inst.unit.as_str()) else { continue };
        for init in &body.initializers {
            let Some(&my_pos) = pos.get(&(inst.id, init.func.as_str())) else { continue };
            let reach = reachable_calls(&summary.uses.calls, &init.func);
            for p in &unit.imports {
                let Some(Wire::Export { instance: prov, port }) = inst.imports.get(&p.name) else {
                    continue;
                };
                for m in program.members_of(&p.bundle_type).unwrap_or_default() {
                    let cid = c_id(body, &p.name, m);
                    if !reach.contains(&cid) {
                        continue;
                    }
                    let prov_inst = &el.instances[*prov];
                    let prov_body = atomic_body(&program.units[&prov_inst.unit]);
                    for pi in prov_body.initializers.iter().filter(|pi| &pi.bundle == port) {
                        if let Some(&ppos) = pos.get(&(*prov, pi.func.as_str())) {
                            if ppos > my_pos {
                                emit(
                                    &mut diags,
                                    config,
                                    "K1004",
                                    unit,
                                    span_in(file, init.span),
                                    format!(
                                        "instance `{}`: initializer `{}` reaches a call to \
                                         imported `{}.{m}` (C `{cid}`), but provider `{}`'s \
                                         initializer `{}` is scheduled later",
                                        inst.path, init.func, p.name, prov_inst.path, pi.func
                                    ),
                                    vec![format!(
                                        "add `depends {{ {} needs ({}); }}` to unit `{}` so \
                                         the scheduler runs `{}` first",
                                        init.func, p.name, inst.unit, pi.func
                                    )],
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    // --- K1005 flatten-hazard: inliner bail conditions in flatten groups ---
    if opts.flatten {
        let mut flat_units: BTreeSet<&str> = BTreeSet::new();
        for group in &el.flatten_groups {
            for id in group {
                flat_units.insert(el.instances[*id].unit.as_str());
            }
        }
        for unit_name in flat_units {
            let unit = &program.units[unit_name];
            let Some(summary) = summaries.get(unit_name) else { continue };
            let site = program.unit_site(unit_name);
            let span = site.map(|(f, s)| (f.to_string(), s.line, s.col));
            let mut hazard = |what: String, why: &str| {
                emit(
                    &mut diags,
                    config,
                    "K1005",
                    unit,
                    span.clone(),
                    format!("unit `{unit_name}` (in a flatten group): {what}"),
                    vec![why.to_string()],
                );
            };
            for f in &summary.uses.varargs_funcs {
                hazard(
                    format!("function `{f}` takes varargs"),
                    "the flattening inliner never inlines vararg functions",
                );
            }
            for f in &summary.uses.address_taken {
                hazard(
                    format!("the address of function `{f}` is taken"),
                    "calls through a function pointer defeat cross-unit inlining",
                );
            }
            for f in &summary.uses.self_recursive {
                hazard(
                    format!("function `{f}` is self-recursive"),
                    "the inliner bails on recursive calls",
                );
            }
            for s in &summary.static_collisions {
                hazard(
                    format!("static `{s}` is defined in more than one file of the unit"),
                    "flattening merges the unit's files; same-named statics are \
                     collision-prone under source merging",
                );
            }
        }
    }

    // --- K1006–K1009: the cross-unit lockset race analysis ---
    race::run_race_lints(program, el, summaries, config, &mut diags);

    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_resolve_with_either_separator() {
        assert_eq!(lint_by_name("unused-import").unwrap().code, "K1002");
        assert_eq!(lint_by_name("unused_import").unwrap().code, "K1002");
        assert!(lint_by_name("no-such-lint").is_none());
    }

    #[test]
    fn unknown_lint_name_errors_k0003() {
        let mut cfg = LintConfig::new();
        let err = cfg.set("not-a-lint", LintLevel::Deny).unwrap_err();
        assert_eq!(err.code(), "K0003");
        assert!(cfg.set("flatten-hazard", LintLevel::Allow).is_ok());
    }

    #[test]
    fn every_diagnostic_code_has_an_explain_entry() {
        // every error code issued by KnitError…
        for i in 1..=15 {
            let code = format!("K{i:04}");
            let e = crate::diag::explain(&code)
                .unwrap_or_else(|| panic!("no explain entry for {code}"));
            assert_eq!(e.code, code);
            assert!(!e.summary.is_empty() && !e.example.is_empty());
        }
        // …and every registered lint.
        for l in LINTS {
            let e = crate::diag::explain(l.code)
                .unwrap_or_else(|| panic!("no explain entry for {}", l.code));
            assert_eq!(e.summary, l.summary);
        }
        // the generated markdown table mentions every code
        let md = crate::diag::diagnostics_markdown();
        for i in 1..=15 {
            assert!(md.contains(&format!("| K{i:04} |")), "K{i:04} missing from markdown");
        }
        for l in LINTS {
            assert!(md.contains(&format!("| {} |", l.code)), "{} missing from markdown", l.code);
        }
    }

    #[test]
    fn pragma_and_cli_levels_compose() {
        let src = r#"
            bundletype T = { f }
            #[allow(unused_import)]
            #[deny(dead_export)]
            unit U = {
                imports [ a : T ];
                files { "u.c" };
            }
        "#;
        let kf = knit_lang::parser::parse("t.unit", src).unwrap();
        let unit = kf
            .decls
            .iter()
            .find_map(|d| match d {
                knit_lang::ast::Decl::Unit(u) => Some((**u).clone()),
                _ => None,
            })
            .unwrap();
        let cfg = LintConfig::new();
        let unused = lint_by_name("unused-import").unwrap();
        let dead = lint_by_name("dead-export").unwrap();
        let undef = lint_by_name("undefined-export").unwrap();
        assert_eq!(cfg.level_for(unused, &unit), LintLevel::Allow);
        assert_eq!(cfg.level_for(dead, &unit), LintLevel::Deny);
        assert_eq!(cfg.level_for(undef, &unit), LintLevel::Warn);
        // CLI overrides beat pragmas
        let mut cli = LintConfig::new();
        cli.set("unused-import", LintLevel::Deny).unwrap();
        assert_eq!(cli.level_for(unused, &unit), LintLevel::Deny);
    }
}
