//! Interprocedural lockset race analysis (Eraser/RacerX-style) over
//! parse-only cmini ASTs plus the elaborated instance graph.
//!
//! The analysis is two-phase, mirroring the per-unit memoization the rest
//! of the analyzer uses (PAPERS.md, "Local Reasoning about Parametric
//! Component-based Systems": analyze each unit once, instantiate the
//! verdict per instance):
//!
//! 1. **Per-unit summary** ([`RaceSummary`], computed inside
//!    `summarize_unit` and therefore memoized with the rest of
//!    [`super::UnitSummary`]): recognized spin-lock statics, and per
//!    function an ordered *lock skeleton* ([`LockOp`]) — acquires,
//!    releases, static accesses, calls, branches, and loops, with all
//!    other computation erased. A static `int L` is a lock iff the unit
//!    both spins on it (`while (L) ...` with a bare-identifier condition)
//!    and assigns it a nonzero constant (`L = 1`), the idiom of
//!    `sync_spin.c` and the Clack `SharedQueue`.
//!
//! 2. **Per-elaboration evaluation** ([`run_race_lints`]): each root
//!    export port of the composition is one concurrently-drivable entry
//!    closure (the multi-core harness drives `router0..routerN` round-
//!    robin). Statics of an instance reachable from ≥ 2 entries are
//!    *shared*; for those, locksets are propagated through the cross-
//!    instance call graph (imports resolved through the elaboration's
//!    wires, meet = set intersection over call sites) and every access is
//!    checked against the must-held set at that point.
//!
//! Verdicts:
//!
//! * **K1006 `unguarded-shared-write`** — a shared static is written on a
//!   path where the computed lockset is empty.
//! * **K1007 `inconsistent-lock`** — writes to the same shared static are
//!   guarded by disjoint (nonempty) locksets on different paths.
//! * **K1008 `lock-leak`** — a function can reach a `return` while still
//!   net-holding a lock it acquired locally (may-hold semantics; purely
//!   per-unit, so it also fires in single-core compositions). Lock
//!   *provider* units (`SpinLock`) leak by design and carry
//!   `#[allow(lock_leak)]`.
//! * **K1009 `atomicity-hint`** — every access to a shared static is
//!   lock-free and every write is a read-modify-write (`contended++`):
//!   racing increments lose updates but corrupt nothing else, so this is
//!   a softer verdict than K1006.
//!
//! Reads with an empty lockset do *not* report on their own (a stats
//! read like `count_value()` returning a monotonic counter is a staleness
//! hazard, not a corruption hazard); the dynamic oracle in
//! `machine::mesi` is stricter there, so the differential fuzz suite only
//! drives entry points whose read-only stats are not sampled.
//!
//! Known static blind spots, covered dynamically by the MESI-bus oracle:
//! writes through escaped pointers (the escape itself is recorded as a
//! write at the point the address leaves the static), function pointers,
//! and accesses in code only reachable from initializers.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cmini::ast::{Expr, ExprKind, Item, Stmt, TranslationUnit, Type};

use crate::diag::Diagnostic;
use crate::driver::{atomic_body, c_id};
use crate::elaborate::{Elaboration, Wire};
use crate::model::Program;

use super::{emit, LintConfig, UnitSummary};

/// One step of a function's lock-relevant skeleton, in evaluation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum LockOp {
    /// `L = <nonzero>` on a recognized lock static.
    Acquire(String),
    /// `L = 0` on a recognized lock static.
    Release(String),
    /// A read, write, or read-modify-write of a unit static (never a
    /// lock). Address escapes are conservatively recorded as writes.
    Access { name: String, write: bool, rmw: bool },
    /// A direct call by name (local function or import C symbol).
    Call(String),
    /// Two-way branch (`if`/`else`, `?:`); either side runs.
    Branch(Vec<LockOp>, Vec<LockOp>),
    /// A loop body (plus its condition re-evaluation); runs zero or more
    /// times.
    Loop(Vec<LockOp>),
    /// A `return` site (the end of a body is an implicit one).
    Return,
}

/// The race-relevant facts of one unit, merged across its files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RaceSummary {
    /// Statics recognized as spin locks by the `while (L) ...; L = 1`
    /// idiom.
    pub(crate) locks: BTreeSet<String>,
    /// Lock skeleton per defined function (including file-local ones).
    pub(crate) funcs: BTreeMap<String, Vec<LockOp>>,
    /// Unit statics (excluding locks) with their array depth; depth 0 is
    /// a scalar.
    pub(crate) statics: BTreeMap<String, u32>,
}

fn array_depth(ty: &Type) -> u32 {
    match ty {
        Type::Array(inner, _) => 1 + array_depth(inner),
        _ => 0,
    }
}

/// Build the [`RaceSummary`] for one unit from its parsed files.
pub(crate) fn race_summary(tus: &[TranslationUnit]) -> RaceSummary {
    // Pass 1: statics, spin conditions, and nonzero constant assignments.
    //
    // Non-`extern` file-scope globals count as statics here whether or
    // not they carry the `static` keyword: the driver mangles every
    // defined-but-not-exported global instance-private (bundles wire
    // functions, not data), so a plain `int lock;` has the same sharing
    // structure as `static int lock;` — it is just also link-visible,
    // which is what lets the dynamic oracle locate lock words by name.
    let mut statics: BTreeMap<String, u32> = BTreeMap::new();
    for tu in tus {
        for item in &tu.items {
            if let Item::Global(g) = item {
                if g.storage != cmini::ast::Storage::Extern {
                    statics.insert(g.name.clone(), array_depth(&g.ty));
                }
            }
        }
    }
    let mut spin_conds: BTreeSet<String> = BTreeSet::new();
    let mut const_assigned: BTreeSet<String> = BTreeSet::new();
    for tu in tus {
        for f in tu.funcs() {
            if let Some(body) = &f.body {
                for s in body {
                    scan_idiom(s, &mut spin_conds, &mut const_assigned);
                }
            }
        }
    }
    let locks: BTreeSet<String> = statics
        .iter()
        .filter(|(n, d)| **d == 0 && spin_conds.contains(*n) && const_assigned.contains(*n))
        .map(|(n, _)| n.clone())
        .collect();
    for l in &locks {
        statics.remove(l);
    }

    // Pass 2: per-function skeletons.
    let ctx = SkelCtx { locks: &locks, statics: &statics };
    let mut funcs = BTreeMap::new();
    for tu in tus {
        for f in tu.funcs() {
            if let Some(body) = &f.body {
                let mut ops = Vec::new();
                for s in body {
                    ctx.stmt(&mut ops, s);
                }
                ops.push(LockOp::Return); // implicit end-of-body return
                funcs.insert(f.name.clone(), ops);
            }
        }
    }
    RaceSummary { locks, funcs, statics }
}

/// Collect the lock-idiom ingredients: bare-identifier loop conditions and
/// names assigned an integer constant. Zero constants count too, so a
/// spinlock whose acquire was (erroneously) deleted is still recognized
/// as a lock — the missing acquire then surfaces as K1006, not as a pile
/// of bogus findings on the lock word itself.
fn scan_idiom(s: &Stmt, conds: &mut BTreeSet<String>, nz: &mut BTreeSet<String>) {
    let mut note_cond = |e: &Expr| {
        if let ExprKind::Ident(n) = &e.kind {
            conds.insert(n.clone());
        }
    };
    match s {
        Stmt::While { cond, body } => {
            note_cond(cond);
            scan_idiom(body, conds, nz);
        }
        Stmt::DoWhile { body, cond } => {
            note_cond(cond);
            scan_idiom(body, conds, nz);
        }
        Stmt::For { init, cond, body, .. } => {
            if let Some(c) = cond {
                note_cond(c);
            }
            if let Some(i) = init {
                scan_idiom(i, conds, nz);
            }
            scan_idiom(body, conds, nz);
        }
        Stmt::If { then_s, else_s, .. } => {
            scan_idiom(then_s, conds, nz);
            if let Some(e) = else_s {
                scan_idiom(e, conds, nz);
            }
        }
        Stmt::Block(list) => {
            for s in list {
                scan_idiom(s, conds, nz);
            }
        }
        _ => {}
    }
    cmini::visit::visit_stmt_exprs(s, &mut |e: &Expr| {
        if let ExprKind::Assign { op: None, lhs, rhs } = &e.kind {
            if let (ExprKind::Ident(n), ExprKind::IntLit(_)) = (&lhs.kind, &rhs.kind) {
                nz.insert(n.clone());
            }
        }
    });
}

struct SkelCtx<'a> {
    locks: &'a BTreeSet<String>,
    statics: &'a BTreeMap<String, u32>,
}

/// `e` as an index chain over a static array: `(name, depth, indices)`.
fn index_chain(e: &Expr) -> Option<(&str, u32, Vec<&Expr>)> {
    match &e.kind {
        ExprKind::Ident(n) => Some((n, 0, Vec::new())),
        ExprKind::Index { base, index } => {
            let (n, d, mut idx) = index_chain(base)?;
            idx.push(index);
            Some((n, d + 1, idx))
        }
        _ => None,
    }
}

impl SkelCtx<'_> {
    fn is_lock(&self, n: &str) -> bool {
        self.locks.contains(n)
    }

    /// Emit ops for an lvalue position (`lhs` of an assignment or the
    /// operand of `++`/`--`); `rmw` marks compound assignments.
    fn lvalue(&self, out: &mut Vec<LockOp>, e: &Expr, rmw: bool) {
        if let Some((n, depth, indices)) = index_chain(e) {
            for i in &indices {
                self.expr(out, i);
            }
            if self.is_lock(n) {
                // Handled by the caller (Acquire/Release); a compound
                // update of a lock is treated as an acquire there.
                return;
            }
            if let Some(&adepth) = self.statics.get(n) {
                // Full-depth chains hit one element; partial-depth chains
                // (or a bare array name) produce a pointer — a write-side
                // escape.
                let full = depth == adepth;
                out.push(LockOp::Access { name: n.to_string(), write: true, rmw: rmw && full });
            }
            return;
        }
        match &e.kind {
            ExprKind::Deref(inner) => self.expr(out, inner),
            ExprKind::Member { base, .. } => self.lvalue(out, base, false),
            _ => self.expr(out, e),
        }
    }

    fn expr(&self, out: &mut Vec<LockOp>, e: &Expr) {
        match &e.kind {
            ExprKind::IntLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::StrLit(_)
            | ExprKind::SizeofType(_)
            | ExprKind::SizeofExpr(_) => {}
            ExprKind::Ident(n) => {
                if self.is_lock(n) {
                    return; // spinning on the lock word is not an access
                }
                if let Some(&depth) = self.statics.get(n) {
                    if depth == 0 {
                        out.push(LockOp::Access { name: n.clone(), write: false, rmw: false });
                    } else {
                        // A bare array name decays to a pointer: escape.
                        out.push(LockOp::Access { name: n.clone(), write: true, rmw: false });
                    }
                }
            }
            ExprKind::Bin { lhs, rhs, .. } => {
                self.expr(out, lhs);
                self.expr(out, rhs);
            }
            ExprKind::Un { expr, .. } | ExprKind::Cast { expr, .. } | ExprKind::VarArg(expr) => {
                self.expr(out, expr)
            }
            ExprKind::Assign { op, lhs, rhs } => {
                self.expr(out, rhs);
                if let ExprKind::Ident(n) = &lhs.kind {
                    if self.is_lock(n) {
                        match (&op, &rhs.kind) {
                            (None, ExprKind::IntLit(0)) => out.push(LockOp::Release(n.clone())),
                            // Any other store to a lock word (nonzero
                            // constant, computed value, compound update)
                            // conservatively counts as an acquire.
                            _ => out.push(LockOp::Acquire(n.clone())),
                        }
                        return;
                    }
                }
                if op.is_some() {
                    // Compound assignment reads the old value too.
                    self.lvalue(out, lhs, true);
                } else {
                    self.lvalue(out, lhs, false);
                }
            }
            ExprKind::Cond { cond, then_e, else_e } => {
                self.expr(out, cond);
                let mut a = Vec::new();
                let mut b = Vec::new();
                self.expr(&mut a, then_e);
                self.expr(&mut b, else_e);
                out.push(LockOp::Branch(a, b));
            }
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.expr(out, a);
                }
                if let ExprKind::Ident(n) = &callee.kind {
                    out.push(LockOp::Call(n.clone()));
                } else {
                    self.expr(out, callee);
                }
            }
            ExprKind::Index { .. } => {
                if let Some((n, depth, indices)) = index_chain(e) {
                    for i in &indices {
                        self.expr(out, i);
                    }
                    if self.is_lock(n) {
                        return;
                    }
                    if let Some(&adepth) = self.statics.get(n) {
                        // Partial-depth in value position yields a
                        // pointer into the array: a write-side escape.
                        let write = depth < adepth;
                        out.push(LockOp::Access { name: n.to_string(), write, rmw: false });
                    }
                } else if let ExprKind::Index { base, index } = &e.kind {
                    self.expr(out, base);
                    self.expr(out, index);
                }
            }
            ExprKind::Member { base, .. } => self.expr(out, base),
            ExprKind::Deref(inner) => self.expr(out, inner),
            ExprKind::AddrOf(inner) => {
                if let Some((n, _, indices)) = index_chain(inner) {
                    for i in &indices {
                        self.expr(out, i);
                    }
                    if !self.is_lock(n) && self.statics.contains_key(n) {
                        out.push(LockOp::Access { name: n.to_string(), write: true, rmw: false });
                    }
                } else {
                    self.expr(out, inner);
                }
            }
            ExprKind::IncDec { expr, .. } => {
                if let Some((n, _, _)) = index_chain(expr) {
                    if self.is_lock(n) {
                        out.push(LockOp::Acquire(n.to_string()));
                        return;
                    }
                }
                self.lvalue(out, expr, true);
            }
        }
    }

    fn stmt(&self, out: &mut Vec<LockOp>, s: &Stmt) {
        match s {
            Stmt::Expr(e) => self.expr(out, e),
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    self.expr(out, e);
                }
            }
            Stmt::If { cond, then_s, else_s } => {
                self.expr(out, cond);
                let mut a = Vec::new();
                self.stmt(&mut a, then_s);
                let mut b = Vec::new();
                if let Some(e) = else_s {
                    self.stmt(&mut b, e);
                }
                out.push(LockOp::Branch(a, b));
            }
            Stmt::While { cond, body } => {
                self.expr(out, cond);
                let mut inner = Vec::new();
                self.stmt(&mut inner, body);
                self.expr(&mut inner, cond);
                out.push(LockOp::Loop(inner));
            }
            Stmt::DoWhile { body, cond } => {
                // Runs at least once: body + cond, then the loop.
                let mut inner = Vec::new();
                self.stmt(&mut inner, body);
                self.expr(&mut inner, cond);
                out.extend(inner.iter().cloned());
                out.push(LockOp::Loop(inner));
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.stmt(out, i);
                }
                if let Some(c) = cond {
                    self.expr(out, c);
                }
                let mut inner = Vec::new();
                self.stmt(&mut inner, body);
                if let Some(st) = step {
                    self.expr(&mut inner, st);
                }
                if let Some(c) = cond {
                    self.expr(&mut inner, c);
                }
                out.push(LockOp::Loop(inner));
            }
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    self.expr(out, e);
                }
                out.push(LockOp::Return);
            }
            // `break`/`continue` are approximated as straight-line flow;
            // the lockset meet over both loop outcomes stays sound for
            // the corpus idioms (no lock is acquired inside a loop).
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty => {}
            Stmt::Block(list) => {
                for s in list {
                    self.stmt(out, s);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Local (per-unit) evaluation: K1008 lock-leak.
// ---------------------------------------------------------------------

/// May-hold evaluation of `ops` for leak detection: `cur` is the set of
/// locally-held locks, `leaks` collects `(lock, at-return)` violations.
/// Intra-unit calls apply the callee's net effect (`xfer`).
fn eval_leak(
    ops: &[LockOp],
    cur: &mut BTreeSet<String>,
    xfer: &BTreeMap<String, (BTreeSet<String>, BTreeSet<String>)>,
    leaks: &mut BTreeSet<String>,
) {
    for op in ops {
        match op {
            LockOp::Acquire(l) => {
                cur.insert(l.clone());
            }
            LockOp::Release(l) => {
                cur.remove(l);
            }
            LockOp::Access { .. } => {}
            LockOp::Call(g) => {
                if let Some((acq, rel)) = xfer.get(g) {
                    for l in rel {
                        cur.remove(l);
                    }
                    cur.extend(acq.iter().cloned());
                }
            }
            LockOp::Branch(a, b) => {
                let mut ca = cur.clone();
                eval_leak(a, &mut ca, xfer, leaks);
                let mut cb = cur.clone();
                eval_leak(b, &mut cb, xfer, leaks);
                // May-hold: union of the two arms.
                *cur = ca.union(&cb).cloned().collect();
            }
            LockOp::Loop(body) => {
                let mut cb = cur.clone();
                eval_leak(body, &mut cb, xfer, leaks);
                *cur = cur.union(&cb).cloned().collect();
            }
            LockOp::Return => {
                leaks.extend(cur.iter().cloned());
            }
        }
    }
}

/// Per-function net lock effect `(acquires, releases)` under may-hold
/// semantics, iterated to a fixpoint over intra-unit calls.
fn local_transfers(race: &RaceSummary) -> BTreeMap<String, (BTreeSet<String>, BTreeSet<String>)> {
    let mut xfer: BTreeMap<String, (BTreeSet<String>, BTreeSet<String>)> =
        race.funcs.keys().map(|f| (f.clone(), (BTreeSet::new(), BTreeSet::new()))).collect();
    for _ in 0..8 {
        let mut changed = false;
        for (f, ops) in &race.funcs {
            let mut cur = BTreeSet::new();
            let mut sink = BTreeSet::new();
            eval_leak(ops, &mut cur, &xfer, &mut sink);
            let mut rel: BTreeSet<String> = race.locks.clone();
            rel.retain(|l| releases(ops, l, &xfer));
            let next = (cur, rel);
            if xfer[f] != next {
                xfer.insert(f.clone(), next);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    xfer
}

/// Whether `ops` contains a (possibly transitive) release of `l`.
fn releases(
    ops: &[LockOp],
    l: &str,
    xfer: &BTreeMap<String, (BTreeSet<String>, BTreeSet<String>)>,
) -> bool {
    ops.iter().any(|op| match op {
        LockOp::Release(x) => x == l,
        LockOp::Call(g) => xfer.get(g).is_some_and(|(_, rel)| rel.contains(l)),
        LockOp::Branch(a, b) => releases(a, l, xfer) || releases(b, l, xfer),
        LockOp::Loop(b) => releases(b, l, xfer),
        _ => false,
    })
}

/// K1008 findings for one unit: `(function, lock)` pairs where some path
/// reaches a return still holding the lock.
pub(crate) fn local_leaks(race: &RaceSummary) -> Vec<(String, String)> {
    if race.locks.is_empty() {
        return Vec::new();
    }
    let xfer = local_transfers(race);
    let mut found = Vec::new();
    for (f, ops) in &race.funcs {
        let mut cur = BTreeSet::new();
        let mut leaks = BTreeSet::new();
        eval_leak(ops, &mut cur, &xfer, &mut leaks);
        for l in leaks {
            found.push((f.clone(), l));
        }
    }
    found
}

// ---------------------------------------------------------------------
// Global (per-elaboration) evaluation: K1006 / K1007 / K1009.
// ---------------------------------------------------------------------

/// A lock instance: `(owning instance id, static name)`.
type LockId = (usize, String);
/// A function instance: `(instance id, function name)`.
type Node = (usize, String);

/// One recorded access to a shared static during the converged pass.
#[derive(Debug, Clone)]
struct Fact {
    write: bool,
    rmw: bool,
    /// The must-held lockset at the access; `None` encodes "unknown" (an
    /// unreachable context) and never occurs in recorded facts.
    lockset: BTreeSet<LockId>,
    func: String,
}

/// Call resolution and skeleton lookup for the instance graph.
struct Graph<'a> {
    program: &'a Program,
    el: &'a Elaboration,
    summaries: &'a BTreeMap<&'a str, Arc<UnitSummary>>,
    /// Per instance: import C symbol -> (provider instance, callee name).
    import_map: Vec<BTreeMap<String, Node>>,
}

impl<'a> Graph<'a> {
    fn new(
        program: &'a Program,
        el: &'a Elaboration,
        summaries: &'a BTreeMap<&'a str, Arc<UnitSummary>>,
    ) -> Graph<'a> {
        let mut import_map = Vec::with_capacity(el.instances.len());
        for inst in &el.instances {
            let unit = &program.units[&inst.unit];
            let body = atomic_body(unit);
            let mut map = BTreeMap::new();
            for p in &unit.imports {
                let Some(Wire::Export { instance: prov, port }) = inst.imports.get(&p.name) else {
                    continue;
                };
                let prov_unit = &program.units[&el.instances[*prov].unit];
                let prov_body = atomic_body(prov_unit);
                for m in program.members_of(&p.bundle_type).unwrap_or_default() {
                    let cid = c_id(body, &p.name, m);
                    map.insert(cid, (*prov, c_id(prov_body, port, m)));
                }
            }
            import_map.push(map);
        }
        Graph { program, el, summaries, import_map }
    }

    fn race_of(&self, inst: usize) -> Option<&RaceSummary> {
        let unit = self.el.instances[inst].unit.as_str();
        self.summaries.get(unit).map(|s| &s.race)
    }

    /// Resolve a `Call(name)` in `inst` to a node, if it lands on a
    /// function we have a skeleton for.
    fn resolve(&self, inst: usize, name: &str) -> Option<Node> {
        let race = self.race_of(inst)?;
        if race.funcs.contains_key(name) {
            return Some((inst, name.to_string()));
        }
        let (prov, callee) = self.import_map[inst].get(name)?;
        self.race_of(*prov)?.funcs.contains_key(callee).then(|| (*prov, callee.clone()))
    }

    /// The entry nodes of each root export port: `port -> functions`.
    fn entries(&self) -> BTreeMap<String, Vec<Node>> {
        let mut out: BTreeMap<String, Vec<Node>> = BTreeMap::new();
        for (root_port, (inst, port)) in &self.el.root_exports {
            let unit = &self.program.units[&self.el.instances[*inst].unit];
            let body = atomic_body(unit);
            let mut nodes = Vec::new();
            for p in unit.exports.iter().filter(|p| &p.name == port) {
                for m in self.program.members_of(&p.bundle_type).unwrap_or_default() {
                    let f = c_id(body, port, m);
                    if self.race_of(*inst).is_some_and(|r| r.funcs.contains_key(&f)) {
                        nodes.push((*inst, f));
                    }
                }
            }
            out.insert(root_port.clone(), nodes);
        }
        out
    }
}

/// Direct call names in a skeleton.
fn calls_in(ops: &[LockOp], out: &mut BTreeSet<String>) {
    for op in ops {
        match op {
            LockOp::Call(g) => {
                out.insert(g.clone());
            }
            LockOp::Branch(a, b) => {
                calls_in(a, out);
                calls_in(b, out);
            }
            LockOp::Loop(b) => calls_in(b, out),
            _ => {}
        }
    }
}

/// Static accesses in a skeleton (context-free, for shared
/// classification).
fn accesses_in(ops: &[LockOp], out: &mut BTreeSet<String>) {
    for op in ops {
        match op {
            LockOp::Access { name, .. } => {
                out.insert(name.clone());
            }
            LockOp::Branch(a, b) => {
                accesses_in(a, out);
                accesses_in(b, out);
            }
            LockOp::Loop(b) => accesses_in(b, out),
            _ => {}
        }
    }
}

/// `a ∩ b` where `None` is ⊤ (unknown, identity of the meet).
fn meet(a: Option<&BTreeSet<LockId>>, b: &BTreeSet<LockId>) -> BTreeSet<LockId> {
    match a {
        None => b.clone(),
        Some(a) => a.intersection(b).cloned().collect(),
    }
}

/// The fixpoint engine: per-node input locksets under meet-over-call-
/// sites, with a final fact-recording pass after convergence.
struct Eval<'a> {
    graph: &'a Graph<'a>,
    /// `None` = not yet reached.
    lockset_in: BTreeMap<Node, Option<BTreeSet<LockId>>>,
    worklist: Vec<Node>,
    facts: BTreeMap<(usize, String), Vec<Fact>>,
    recording: bool,
    /// Converged net `(acquire, release)` transformer per node.
    transformers: BTreeMap<Node, (BTreeSet<LockId>, BTreeSet<LockId>)>,
}

impl Eval<'_> {
    /// Evaluate `ops` in instance `inst` from lockset `cur`; propagates
    /// into callees and returns the exit lockset.
    fn eval(
        &mut self,
        inst: usize,
        func: &str,
        ops: &[LockOp],
        cur: BTreeSet<LockId>,
    ) -> BTreeSet<LockId> {
        let mut cur = cur;
        for op in ops {
            match op {
                LockOp::Acquire(l) => {
                    cur.insert((inst, l.clone()));
                }
                LockOp::Release(l) => {
                    cur.remove(&(inst, l.clone()));
                }
                LockOp::Access { name, write, rmw } => {
                    if self.recording {
                        self.facts.entry((inst, name.clone())).or_default().push(Fact {
                            write: *write,
                            rmw: *rmw,
                            lockset: cur.clone(),
                            func: func.to_string(),
                        });
                    }
                }
                LockOp::Call(g) => {
                    if let Some(node) = self.graph.resolve(inst, g) {
                        let new_in =
                            meet(self.lockset_in.get(&node).and_then(|s| s.as_ref()), &cur);
                        let prev = self.lockset_in.get(&node).cloned().flatten();
                        if prev.as_ref() != Some(&new_in) {
                            self.lockset_in.insert(node.clone(), Some(new_in));
                            if !self.recording {
                                self.worklist.push(node.clone());
                            }
                        }
                        // Apply the callee's net effect to the caller's
                        // set: recurse non-recursively via the callee's
                        // cached transformer below.
                        cur = self.apply_callee(&node, cur);
                    }
                }
                LockOp::Branch(a, b) => {
                    let ea = self.eval(inst, func, a, cur.clone());
                    let eb = self.eval(inst, func, b, cur.clone());
                    cur = ea.intersection(&eb).cloned().collect();
                }
                LockOp::Loop(body) => {
                    // Iterate to the must-hold fixpoint of the loop entry.
                    loop {
                        let exit = self.eval(inst, func, body, cur.clone());
                        let next: BTreeSet<LockId> = cur.intersection(&exit).cloned().collect();
                        if next == cur {
                            break;
                        }
                        cur = next;
                    }
                }
                LockOp::Return => {}
            }
        }
        cur
    }

    /// Apply callee `node`'s net lock effect to `cur` using its cached
    /// transformer.
    fn apply_callee(&self, node: &Node, cur: BTreeSet<LockId>) -> BTreeSet<LockId> {
        let Some(t) = self.transformers.get(node) else { return cur };
        let mut out: BTreeSet<LockId> = cur.difference(&t.1).cloned().collect();
        out.extend(t.0.iter().cloned());
        out
    }
}

/// Register the K1006–K1009 findings for this elaboration.
pub(super) fn run_race_lints(
    program: &Program,
    el: &Elaboration,
    summaries: &BTreeMap<&str, Arc<UnitSummary>>,
    config: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    // --- K1008 lock-leak: purely per-unit, fires in any composition ---
    let distinct: BTreeSet<&str> = el.instances.iter().map(|i| i.unit.as_str()).collect();
    for unit_name in &distinct {
        let Some(summary) = summaries.get(unit_name) else { continue };
        let unit = &program.units[*unit_name];
        let file = program.unit_site(unit_name).map(|(f, _)| f);
        let span = program.unit_site(unit_name).map(|(f, s)| (f.to_string(), s.line, s.col));
        let _ = file;
        for (func, lock) in local_leaks(&summary.race) {
            emit(
                diags,
                config,
                "K1008",
                unit,
                span.clone(),
                format!(
                    "unit `{unit_name}`: function `{func}` can return while still holding \
                     lock `{lock}`"
                ),
                vec![format!(
                    "release it (`{lock} = 0`) on every path to return, or \
                     `#[allow(lock_leak)]` the unit if it is a lock provider"
                )],
            );
        }
    }

    // --- K1006/K1007/K1009 need ≥ 2 concurrently drivable entries ---
    if el.root_exports.len() < 2 {
        return;
    }
    let graph = Graph::new(program, el, summaries);
    let entries = graph.entries();

    // Reachability: which entries reach each node.
    let mut reached_by: BTreeMap<Node, BTreeSet<&str>> = BTreeMap::new();
    for (entry_name, nodes) in &entries {
        let mut stack: Vec<Node> = nodes.clone();
        while let Some(node) = stack.pop() {
            let set = reached_by.entry(node.clone()).or_default();
            if !set.insert(entry_name.as_str()) {
                continue;
            }
            let Some(race) = graph.race_of(node.0) else { continue };
            let Some(ops) = race.funcs.get(&node.1) else { continue };
            let mut callees = BTreeSet::new();
            calls_in(ops, &mut callees);
            for g in callees {
                if let Some(next) = graph.resolve(node.0, &g) {
                    stack.push(next);
                }
            }
        }
    }

    // Shared statics: (instance, static) accessed from ≥ 2 entries.
    let mut static_entries: BTreeMap<(usize, String), BTreeSet<&str>> = BTreeMap::new();
    for (node, ents) in &reached_by {
        let Some(race) = graph.race_of(node.0) else { continue };
        let Some(ops) = race.funcs.get(&node.1) else { continue };
        let mut names = BTreeSet::new();
        accesses_in(ops, &mut names);
        for n in names {
            static_entries.entry((node.0, n)).or_default().extend(ents.iter().copied());
        }
    }
    let shared: BTreeSet<(usize, String)> =
        static_entries.iter().filter(|(_, ents)| ents.len() >= 2).map(|(k, _)| k.clone()).collect();
    if shared.is_empty() {
        return;
    }

    // Interprocedural transformers: net (acquire, release) per node,
    // iterated to a fixpoint over the resolved call graph.
    let mut transformers: BTreeMap<Node, (BTreeSet<LockId>, BTreeSet<LockId>)> = BTreeMap::new();
    for node in reached_by.keys() {
        transformers.insert(node.clone(), (BTreeSet::new(), BTreeSet::new()));
    }
    for _ in 0..12 {
        let mut changed = false;
        for node in reached_by.keys() {
            let Some(race) = graph.race_of(node.0) else { continue };
            let Some(ops) = race.funcs.get(&node.1) else { continue };
            let next = xfer_of(ops, node.0, &graph, &transformers);
            if transformers.get(node) != Some(&next) {
                transformers.insert(node.clone(), next);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Lockset fixpoint from the entries, then one recording pass.
    let mut eval = Eval {
        graph: &graph,
        lockset_in: BTreeMap::new(),
        worklist: Vec::new(),
        facts: BTreeMap::new(),
        recording: false,
        transformers,
    };
    for nodes in entries.values() {
        for n in nodes {
            eval.lockset_in.insert(n.clone(), Some(BTreeSet::new()));
            eval.worklist.push(n.clone());
        }
    }
    let mut budget = 0usize;
    while let Some(node) = eval.worklist.pop() {
        budget += 1;
        if budget > 100_000 {
            break; // divergence backstop; meets only shrink, so unreachable
        }
        let Some(race) = graph.race_of(node.0) else { continue };
        let Some(ops) = race.funcs.get(&node.1).cloned() else { continue };
        let Some(Some(cur)) = eval.lockset_in.get(&node).cloned() else { continue };
        eval.eval(node.0, &node.1, &ops, cur);
    }
    eval.recording = true;
    let nodes: Vec<Node> = eval.lockset_in.keys().cloned().collect();
    for node in nodes {
        let Some(race) = graph.race_of(node.0) else { continue };
        let Some(ops) = race.funcs.get(&node.1).cloned() else { continue };
        let Some(Some(cur)) = eval.lockset_in.get(&node).cloned() else { continue };
        eval.eval(node.0, &node.1, &ops, cur);
    }

    // Verdicts, one diagnostic per (unit, static).
    #[derive(Default)]
    struct Verdict {
        k1006: Option<Fact>,
        k1007: Option<(Fact, Vec<BTreeSet<LockId>>)>,
        k1009: Option<Fact>,
        insts: BTreeSet<usize>,
        entries: BTreeSet<String>,
    }
    let mut verdicts: BTreeMap<(String, String), Verdict> = BTreeMap::new();
    for key in &shared {
        let Some(facts) = eval.facts.get(key) else { continue };
        let unit = el.instances[key.0].unit.clone();
        let v = verdicts.entry((unit, key.1.clone())).or_default();
        v.insts.insert(key.0);
        if let Some(ents) = static_entries.get(key) {
            v.entries.extend(ents.iter().map(|e| e.to_string()));
        }
        let unguarded: Vec<&Fact> =
            facts.iter().filter(|f| f.write && f.lockset.is_empty()).collect();
        if !unguarded.is_empty() {
            let all_unlocked = facts.iter().all(|f| f.lockset.is_empty());
            let all_rmw = unguarded.iter().all(|f| f.rmw);
            if all_unlocked && all_rmw {
                v.k1009.get_or_insert_with(|| (*unguarded[0]).clone());
            } else {
                let pick = unguarded.iter().find(|f| !f.rmw).unwrap_or(&unguarded[0]);
                v.k1006.get_or_insert_with(|| (**pick).clone());
            }
        } else {
            let writes: Vec<&Fact> = facts.iter().filter(|f| f.write).collect();
            if !writes.is_empty() {
                let mut inter: Option<BTreeSet<LockId>> = None;
                for f in &writes {
                    inter = Some(meet(inter.as_ref(), &f.lockset));
                }
                if inter.as_ref().is_some_and(|i| i.is_empty()) {
                    let mut sets: Vec<BTreeSet<LockId>> =
                        writes.iter().map(|f| f.lockset.clone()).collect();
                    sets.sort();
                    sets.dedup();
                    v.k1007.get_or_insert_with(|| (writes[0].clone(), sets));
                }
            }
        }
    }

    let lock_name = |l: &LockId| format!("{}.{}", el.instances[l.0].path, l.1);
    for ((unit_name, sname), v) in &verdicts {
        let unit = &program.units[unit_name];
        let span = program.unit_site(unit_name).map(|(f, s)| (f.to_string(), s.line, s.col));
        let inst_note = || {
            format!(
                "instances {{ {} }}, reachable from root exports {{ {} }}",
                v.insts
                    .iter()
                    .map(|i| el.instances[*i].path.clone())
                    .collect::<Vec<_>>()
                    .join(", "),
                v.entries.iter().cloned().collect::<Vec<_>>().join(", ")
            )
        };
        if let Some(f) = &v.k1006 {
            emit(
                diags,
                config,
                "K1006",
                unit,
                span.clone(),
                format!(
                    "unit `{unit_name}`: shared static `{sname}` is written with no lock \
                     held in `{}`",
                    f.func
                ),
                vec![
                    inst_note(),
                    format!(
                        "guard every access with one spin lock \
                         (`while (L) {{ }} L = 1; ... L = 0;`)"
                    ),
                ],
            );
        } else if let Some((f, sets)) = &v.k1007 {
            let shown: Vec<String> = sets
                .iter()
                .map(|s| {
                    let names: Vec<String> = s.iter().map(&lock_name).collect();
                    format!("{{ {} }}", names.join(", "))
                })
                .collect();
            emit(
                diags,
                config,
                "K1007",
                unit,
                span.clone(),
                format!(
                    "unit `{unit_name}`: shared static `{sname}` is guarded by different \
                     locks on different paths (first write in `{}`)",
                    f.func
                ),
                vec![inst_note(), format!("observed write locksets: {}", shown.join(" vs "))],
            );
        } else if let Some(f) = &v.k1009 {
            emit(
                diags,
                config,
                "K1009",
                unit,
                span.clone(),
                format!(
                    "unit `{unit_name}`: read-modify-write of shared static `{sname}` \
                     outside any lock region in `{}`",
                    f.func
                ),
                vec![
                    inst_note(),
                    format!(
                        "racing `{sname}++` loses updates; guard it, or \
                         `#[allow(atomicity_hint)]` if approximate counts are acceptable"
                    ),
                ],
            );
        }
    }
}

/// The net `(acquire, release)` transformer of one skeleton given the
/// current estimates for its callees.
fn xfer_of(
    ops: &[LockOp],
    inst: usize,
    graph: &Graph<'_>,
    transformers: &BTreeMap<Node, (BTreeSet<LockId>, BTreeSet<LockId>)>,
) -> (BTreeSet<LockId>, BTreeSet<LockId>) {
    let mut acq: BTreeSet<LockId> = BTreeSet::new();
    let mut rel: BTreeSet<LockId> = BTreeSet::new();
    seq_xfer(ops, inst, graph, transformers, &mut acq, &mut rel);
    (acq, rel)
}

/// Sequentially compose `ops` into the running `(acq, rel)` transformer:
/// `T(S) = (S \ rel) ∪ acq`, must-acquire / may-release.
fn seq_xfer(
    ops: &[LockOp],
    inst: usize,
    graph: &Graph<'_>,
    transformers: &BTreeMap<Node, (BTreeSet<LockId>, BTreeSet<LockId>)>,
    acq: &mut BTreeSet<LockId>,
    rel: &mut BTreeSet<LockId>,
) {
    for op in ops {
        match op {
            LockOp::Acquire(l) => {
                let id = (inst, l.clone());
                acq.insert(id.clone());
                rel.remove(&id);
            }
            LockOp::Release(l) => {
                let id = (inst, l.clone());
                rel.insert(id.clone());
                acq.remove(&id);
            }
            LockOp::Call(g) => {
                if let Some(node) = graph.resolve(inst, g) {
                    if let Some((ga, gr)) = transformers.get(&node) {
                        for l in gr {
                            acq.remove(l);
                            rel.insert(l.clone());
                        }
                        for l in ga {
                            acq.insert(l.clone());
                            rel.remove(l);
                        }
                    }
                }
            }
            LockOp::Branch(a, b) => {
                let (mut aa, mut ar) = (acq.clone(), rel.clone());
                seq_xfer(a, inst, graph, transformers, &mut aa, &mut ar);
                let (mut ba, mut br) = (acq.clone(), rel.clone());
                seq_xfer(b, inst, graph, transformers, &mut ba, &mut br);
                *acq = aa.intersection(&ba).cloned().collect();
                *rel = ar.union(&br).cloned().collect();
            }
            LockOp::Loop(body) => {
                // Runs zero or more times: nothing is must-acquired, but
                // everything the body may release may be released.
                let (mut ba, mut br) = (acq.clone(), rel.clone());
                seq_xfer(body, inst, graph, transformers, &mut ba, &mut br);
                for l in br.difference(rel).cloned().collect::<Vec<_>>() {
                    rel.insert(l.clone());
                    acq.remove(&l);
                }
            }
            LockOp::Access { .. } | LockOp::Return => {}
        }
    }
}
