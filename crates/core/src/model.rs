//! The semantic model: a program is the set of declarations visible to one
//! build — bundle types, flag sets, properties with their value posets, and
//! unit definitions.

use std::collections::{BTreeMap, BTreeSet};

use knit_lang::ast::{Decl, KnitFile, UnitDecl};
use knit_lang::token::Span;

use crate::error::KnitError;

/// A partial order over a property's declared values.
///
/// `type ProcessContext < NoContext` declares ProcessContext strictly below
/// NoContext ("NoContext is more general", §4). The order is the reflexive
/// transitive closure of the declared edges.
#[derive(Debug, Clone, Default)]
pub struct Poset {
    values: Vec<String>,
    /// `leq[a]` = the set of values `b` with `a <= b` (including `a`).
    leq: BTreeMap<String, BTreeSet<String>>,
}

impl Poset {
    /// Declare a value, optionally below existing values.
    pub fn add_value(&mut self, name: &str, below: &[String]) -> Result<(), KnitError> {
        if self.leq.contains_key(name) {
            return Err(KnitError::Duplicate { kind: "property value", name: name.to_string() });
        }
        let mut ups: BTreeSet<String> = BTreeSet::new();
        ups.insert(name.to_string());
        for b in below {
            let b_ups = self.leq.get(b).ok_or_else(|| KnitError::Unknown {
                kind: "property value",
                name: b.clone(),
                context: format!("declaring `{name}`"),
            })?;
            ups.extend(b_ups.iter().cloned());
        }
        self.values.push(name.to_string());
        self.leq.insert(name.to_string(), ups);
        Ok(())
    }

    /// Is `a <= b`?
    pub fn leq(&self, a: &str, b: &str) -> bool {
        self.leq.get(a).map(|ups| ups.contains(b)).unwrap_or(false)
    }

    /// Whether `v` is a declared value.
    pub fn contains(&self, v: &str) -> bool {
        self.leq.contains_key(v)
    }

    /// All declared values, in declaration order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Greatest lower bound of `a` and `b`, if a unique one exists.
    pub fn meet(&self, a: &str, b: &str) -> Option<String> {
        if self.leq(a, b) {
            return Some(a.to_string());
        }
        if self.leq(b, a) {
            return Some(b.to_string());
        }
        // maximal common lower bounds
        let lowers: Vec<&String> =
            self.values.iter().filter(|v| self.leq(v, a) && self.leq(v, b)).collect();
        let maximal: Vec<&&String> =
            lowers.iter().filter(|v| !lowers.iter().any(|w| *w != **v && self.leq(v, w))).collect();
        if maximal.len() == 1 {
            Some((**maximal[0]).clone())
        } else {
            None
        }
    }

    /// Least upper bound of `a` and `b`, if a unique one exists.
    pub fn join(&self, a: &str, b: &str) -> Option<String> {
        if self.leq(a, b) {
            return Some(b.to_string());
        }
        if self.leq(b, a) {
            return Some(a.to_string());
        }
        let uppers: Vec<&String> =
            self.values.iter().filter(|v| self.leq(a, v) && self.leq(b, v)).collect();
        let minimal: Vec<&&String> =
            uppers.iter().filter(|v| !uppers.iter().any(|w| *w != **v && self.leq(w, v))).collect();
        if minimal.len() == 1 {
            Some((**minimal[0]).clone())
        } else {
            None
        }
    }
}

/// All declarations visible to one build.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Bundle types: name → member names.
    pub bundletypes: BTreeMap<String, Vec<String>>,
    /// Flag sets: name → flags.
    pub flags: BTreeMap<String, Vec<String>>,
    /// Properties: name → value poset.
    pub properties: BTreeMap<String, Poset>,
    /// Which property each value belongs to.
    pub value_property: BTreeMap<String, String>,
    /// Unit declarations by name.
    pub units: BTreeMap<String, UnitDecl>,
    /// Where each unit was declared: name → (file, position). Used to
    /// attach source spans to elaboration and constraint diagnostics.
    pub unit_sites: BTreeMap<String, (String, Span)>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Parse and register a `.unit` source string.
    pub fn load_str(&mut self, file: &str, src: &str) -> Result<(), KnitError> {
        let kf = knit_lang::parse(file, src)?;
        self.register(kf)
    }

    /// Parse and **re**-register a `.unit` source string: declarations
    /// whose names already exist *replace* the old ones instead of raising
    /// a duplicate error. See [`Program::redefine`].
    pub fn update_str(&mut self, file: &str, src: &str) -> Result<(), KnitError> {
        let kf = knit_lang::parse(file, src)?;
        self.redefine(kf)
    }

    /// Register a parsed file's declarations. Names that already exist are
    /// duplicate errors.
    pub fn register(&mut self, kf: KnitFile) -> Result<(), KnitError> {
        self.register_impl(kf, false)
    }

    /// Re-register a parsed file's declarations, replacing same-named
    /// existing ones (units, bundletypes, flag sets; redefining a
    /// `property` replaces the property and all its values). Removing a
    /// declaration is not supported — start a fresh [`Program`] for that.
    ///
    /// The change is transactional: every unit in the program is
    /// re-validated against the updated declarations, and on any error the
    /// program is left unchanged.
    pub fn redefine(&mut self, kf: KnitFile) -> Result<(), KnitError> {
        let mut next = self.clone();
        next.register_impl(kf, true)?;
        for u in next.units.values() {
            next.validate_unit(u)?;
        }
        *self = next;
        Ok(())
    }

    fn register_impl(&mut self, kf: KnitFile, replace: bool) -> Result<(), KnitError> {
        let file = kf.file.clone();
        let mut current_property: Option<String> = None;
        for d in kf.decls {
            match d {
                Decl::BundleType(b) => {
                    if !replace && self.bundletypes.contains_key(&b.name) {
                        return Err(KnitError::Duplicate { kind: "bundletype", name: b.name });
                    }
                    let mut seen = BTreeSet::new();
                    for m in &b.members {
                        if !seen.insert(m.clone()) {
                            return Err(KnitError::Duplicate {
                                kind: "bundle member",
                                name: format!("{}.{}", b.name, m),
                            });
                        }
                    }
                    self.bundletypes.insert(b.name, b.members);
                }
                Decl::Flags(f) => {
                    if !replace && self.flags.contains_key(&f.name) {
                        return Err(KnitError::Duplicate { kind: "flags", name: f.name });
                    }
                    self.flags.insert(f.name, f.flags);
                }
                Decl::Property(p) => {
                    if self.properties.contains_key(&p.name) {
                        if !replace {
                            return Err(KnitError::Duplicate { kind: "property", name: p.name });
                        }
                        // redefinition replaces the property wholesale
                        self.properties.remove(&p.name);
                        self.value_property.retain(|_, prop| prop != &p.name);
                    }
                    self.properties.insert(p.name.clone(), Poset::default());
                    current_property = Some(p.name);
                }
                Decl::PropValue(v) => {
                    let prop = current_property.clone().ok_or(KnitError::Unknown {
                        kind: "property",
                        name: "<none>".to_string(),
                        context: format!("`type {}` before any `property`", v.name),
                    })?;
                    if self.value_property.contains_key(&v.name) {
                        return Err(KnitError::Duplicate { kind: "property value", name: v.name });
                    }
                    self.properties
                        .get_mut(&prop)
                        .expect("current property registered")
                        .add_value(&v.name, &v.below)?;
                    self.value_property.insert(v.name, prop);
                }
                Decl::Unit(u) => {
                    if !replace && self.units.contains_key(&u.name) {
                        return Err(KnitError::Duplicate { kind: "unit", name: u.name });
                    }
                    self.validate_unit(&u)?;
                    self.unit_sites.insert(u.name.clone(), (file.clone(), u.span));
                    self.units.insert(u.name.clone(), *u);
                }
            }
        }
        Ok(())
    }

    /// Where `unit` was declared: `(file, position)`, when it was
    /// registered through [`Program::load_str`]/[`Program::register`].
    pub fn unit_site(&self, unit: &str) -> Option<(&str, Span)> {
        self.unit_sites.get(unit).map(|(f, s)| (f.as_str(), *s))
    }

    /// Members of a port's bundle type.
    pub fn members_of(&self, bundletype: &str) -> Option<&[String]> {
        self.bundletypes.get(bundletype).map(|v| v.as_slice())
    }

    /// Structural validation of a unit against registered declarations.
    fn validate_unit(&self, u: &UnitDecl) -> Result<(), KnitError> {
        use knit_lang::ast::{DepAtom, DepSide, UnitBody};
        let mut port_names: BTreeSet<&str> = BTreeSet::new();
        for p in u.imports.iter().chain(u.exports.iter()) {
            if !self.bundletypes.contains_key(&p.bundle_type) {
                return Err(KnitError::Unknown {
                    kind: "bundletype",
                    name: p.bundle_type.clone(),
                    context: format!("unit `{}` port `{}`", u.name, p.name),
                });
            }
            if !port_names.insert(&p.name) {
                return Err(KnitError::Duplicate {
                    kind: "port",
                    name: format!("{}.{}", u.name, p.name),
                });
            }
        }
        let import_names: BTreeSet<&str> = u.imports.iter().map(|p| p.name.as_str()).collect();
        let export_names: BTreeSet<&str> = u.exports.iter().map(|p| p.name.as_str()).collect();

        match &u.body {
            UnitBody::Atomic(a) => {
                if let Some(fl) = &a.flags {
                    if !self.flags.contains_key(fl) {
                        return Err(KnitError::Unknown {
                            kind: "flags",
                            name: fl.clone(),
                            context: format!("unit `{}`", u.name),
                        });
                    }
                }
                let init_funcs: BTreeSet<&str> = a
                    .initializers
                    .iter()
                    .chain(a.finalizers.iter())
                    .map(|i| i.func.as_str())
                    .collect();
                for i in a.initializers.iter().chain(a.finalizers.iter()) {
                    if !export_names.contains(i.bundle.as_str()) {
                        return Err(KnitError::BadDeclaration {
                            unit: u.name.clone(),
                            what: format!(
                                "initializer/finalizer `{}` is for `{}`, which is not an export port",
                                i.func, i.bundle
                            ),
                        });
                    }
                }
                for d in &a.depends {
                    if let DepSide::Name(n) = &d.lhs {
                        if !export_names.contains(n.as_str()) && !init_funcs.contains(n.as_str()) {
                            return Err(KnitError::BadDeclaration {
                                unit: u.name.clone(),
                                what: format!(
                                    "depends: `{n}` is neither an export port nor an initializer/finalizer"
                                ),
                            });
                        }
                    }
                    for atom in &d.rhs {
                        if let DepAtom::Name(n) = atom {
                            if !import_names.contains(n.as_str()) {
                                return Err(KnitError::BadDeclaration {
                                    unit: u.name.clone(),
                                    what: format!("depends: `{n}` is not an import port"),
                                });
                            }
                        }
                    }
                }
                for r in &a.renames {
                    let port = u
                        .imports
                        .iter()
                        .chain(u.exports.iter())
                        .find(|p| p.name == r.port)
                        .ok_or_else(|| KnitError::BadRename {
                            unit: u.name.clone(),
                            port: r.port.clone(),
                            member: r.member.clone(),
                        })?;
                    let members = self.members_of(&port.bundle_type).expect("checked above");
                    if !members.contains(&r.member) {
                        return Err(KnitError::BadRename {
                            unit: u.name.clone(),
                            port: r.port.clone(),
                            member: r.member.clone(),
                        });
                    }
                }
            }
            UnitBody::Compound(c) => {
                let mut inst_names: BTreeSet<&str> = BTreeSet::new();
                for i in &c.instances {
                    if !inst_names.insert(&i.name) {
                        return Err(KnitError::Duplicate {
                            kind: "instance",
                            name: format!("{}.{}", u.name, i.name),
                        });
                    }
                    // the instantiated unit may be declared later or in
                    // another file; resolved during elaboration
                }
                for e in &c.export_bindings {
                    if !export_names.contains(e.export.as_str()) {
                        return Err(KnitError::BadDeclaration {
                            unit: u.name.clone(),
                            what: format!("export binding `{}` names no export port", e.export),
                        });
                    }
                }
                for p in &u.exports {
                    if !c.export_bindings.iter().any(|e| e.export == p.name) {
                        return Err(KnitError::BadDeclaration {
                            unit: u.name.clone(),
                            what: format!(
                                "export port `{}` has no binding in the link block",
                                p.name
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(src: &str) -> Result<Program, KnitError> {
        let mut p = Program::new();
        p.load_str("t.unit", src)?;
        Ok(p)
    }

    #[test]
    fn poset_chain() {
        let mut p = Poset::default();
        p.add_value("NoContext", &[]).unwrap();
        p.add_value("ProcessContext", &["NoContext".to_string()]).unwrap();
        assert!(p.leq("ProcessContext", "NoContext"));
        assert!(!p.leq("NoContext", "ProcessContext"));
        assert!(p.leq("NoContext", "NoContext"));
        assert_eq!(p.meet("ProcessContext", "NoContext").as_deref(), Some("ProcessContext"));
        assert_eq!(p.join("ProcessContext", "NoContext").as_deref(), Some("NoContext"));
    }

    #[test]
    fn poset_diamond() {
        // top; a < top; b < top; bottom < a, b
        let mut p = Poset::default();
        p.add_value("Top", &[]).unwrap();
        p.add_value("A", &["Top".to_string()]).unwrap();
        p.add_value("B", &["Top".to_string()]).unwrap();
        p.add_value("Bot", &["A".to_string(), "B".to_string()]).unwrap();
        assert!(p.leq("Bot", "Top"));
        assert_eq!(p.meet("A", "B").as_deref(), Some("Bot"));
        assert_eq!(p.join("A", "B").as_deref(), Some("Top"));
    }

    #[test]
    fn poset_incomparable_without_bounds() {
        let mut p = Poset::default();
        p.add_value("A", &[]).unwrap();
        p.add_value("B", &[]).unwrap();
        assert_eq!(p.meet("A", "B"), None);
        assert_eq!(p.join("A", "B"), None);
    }

    #[test]
    fn register_and_duplicate_detection() {
        assert!(prog("bundletype T = { f }\nbundletype T = { g }").is_err());
        assert!(prog("bundletype T = { f, f }").is_err());
        assert!(prog("property p\ntype A\ntype A").is_err());
        assert!(prog("type Orphan").is_err());
        let p = prog("property context\ntype NoContext\ntype ProcessContext < NoContext").unwrap();
        assert!(p.properties["context"].leq("ProcessContext", "NoContext"));
        assert_eq!(p.value_property["NoContext"], "context");
    }

    #[test]
    fn unit_validation_catches_bad_references() {
        let base = "bundletype T = { f }\n";
        // unknown bundletype
        assert!(prog("unit U = { imports [ a : Missing ]; files { \"u.c\" }; }").is_err());
        // initializer for non-export
        assert!(prog(&format!(
            "{base}unit U = {{ imports [ a : T ]; initializer i for a; files {{ \"u.c\" }}; }}"
        ))
        .is_err());
        // depends on unknown import
        assert!(prog(&format!(
            "{base}unit U = {{ exports [ b : T ]; depends {{ b needs nope; }}; files {{ \"u.c\" }}; }}"
        ))
        .is_err());
        // bad rename member
        assert!(prog(&format!(
            "{base}unit U = {{ exports [ b : T ]; files {{ \"u.c\" }}; rename {{ b.nope to x; }}; }}"
        ))
        .is_err());
        // export port without binding in compound
        assert!(prog(&format!("{base}unit U = {{ exports [ b : T ]; link {{ }}; }}")).is_err());
        // ok case
        assert!(prog(&format!(
            "{base}unit U = {{ imports [ a : T ]; exports [ b : T ]; depends {{ b needs a; }}; files {{ \"u.c\" }}; rename {{ b.f to g; }}; }}"
        ))
        .is_ok());
    }

    #[test]
    fn flags_must_exist() {
        let src = "bundletype T = { f }\nunit U = { exports [ b : T ]; files { \"u.c\" } with flags Nope; }";
        assert!(prog(src).is_err());
    }
}
