//! The composition server: `knitc serve`.
//!
//! Three layers, each usable on its own:
//!
//! * [`Engine`] — the transport-agnostic request handler. It owns the
//!   registry of named sessions (each a [`SessionHandle`]) plus one shared
//!   [`BuildCache`], and answers any [`Request`] with a [`Response`]. The
//!   `knitc` CLI runs every subcommand through an in-process `Engine` when
//!   no `--connect` address is given — the daemon and the CLI are the same
//!   code path, which is what keeps them byte-identical.
//! * [`Server`] — the daemon: binds a local socket (Unix domain socket, or
//!   TCP loopback), accepts connections, and runs one worker thread per
//!   connection against a shared `Engine`. Connections open with a
//!   [`Request::Hello`] version handshake; `watch` subscriptions stream
//!   [`Response::Event`] lines asynchronously on the same connection.
//! * [`Conn`] — the client: connect, handshake, [`Conn::call`] requests,
//!   collect streamed events.
//!
//! **Threading model / lock order.** The engine's session registry lock is
//! outermost and held only for map lookups and `open`/`close`; each
//! session's own lock (inside [`SessionHandle`]) is held for the duration
//! of one build or lint of *that* session; [`BuildCache`]'s internal lock
//! is a leaf acquired by compiles. So: registry → session → cache, no
//! cycles — two clients building *different* sessions run fully in
//! parallel and dedupe identical unit compiles through the shared cache,
//! while two clients hammering the *same* session serialize on its lock
//! (the second usually hits the session memo).
//!
//! **Graceful shutdown.** [`Request::Shutdown`] flips the engine's flag
//! and wakes the acceptor; the server then half-closes (read side) every
//! connection so idle workers see EOF, and joins all workers — a worker
//! mid-build finishes the build and writes its response before exiting, so
//! in-flight requests are drained, never dropped.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown as NetShutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use crate::analyze::LintConfig;
use crate::cache::BuildCache;
use crate::driver::{default_jobs, BuildOptions};
use crate::proto::{self, BuildEvent, BuildOutcome, Request, Response, SessionOptions, VERSION};
use crate::session::{BuildSession, SessionHandle};

// ---------------------------------------------------------------------------
// the engine
// ---------------------------------------------------------------------------

/// One named session plus its event machinery.
#[derive(Clone)]
struct SessionEntry {
    handle: SessionHandle,
    /// Build sequence counter backing [`BuildEvent::seq`].
    seq: Arc<AtomicU64>,
    /// Live watch subscriptions; pruned when a receiver hangs up.
    watchers: Arc<Mutex<Vec<mpsc::Sender<BuildEvent>>>>,
}

struct Shared {
    cache: BuildCache,
    sessions: Mutex<BTreeMap<String, SessionEntry>>,
    /// 0 = running, 1 = shutting down. (An `AtomicUsize` rather than a
    /// bool so a future drain-deadline generation counter can reuse it.)
    shutdown: AtomicUsize,
}

/// The transport-agnostic composition engine: a thread-safe registry of
/// named [`SessionHandle`]s sharing one [`BuildCache`], answering
/// [`Request`]s. Clones share all state — hand one clone per thread.
///
/// ```
/// use knit::proto::{Request, Response, SessionOptions};
/// use knit::server::Engine;
///
/// let engine = Engine::new();
/// let mut opts = SessionOptions::new("App");
/// opts.jobs = Some(1);
/// assert_eq!(
///     engine.handle(&Request::Open { session: "s".into(), options: opts }),
///     Response::Opened { created: true },
/// );
/// let r = engine.handle(&Request::LoadUnits {
///     session: "s".into(),
///     file: "app.unit".into(),
///     text: r#"
///         bundletype Main = { main }
///         unit App = { exports [ main : Main ]; files { "app.c" }; }
///     "#.into(),
/// });
/// assert_eq!(r, Response::Ok);
/// engine.handle(&Request::UpdateSource {
///     session: "s".into(),
///     path: "app.c".into(),
///     text: "int main() { return 7; }".into(),
/// });
/// let built = engine.handle(&Request::Build { session: "s".into(), want_image: false });
/// assert!(matches!(built, Response::Built { .. }));
/// ```
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// An engine with a fresh shared compile cache.
    pub fn new() -> Engine {
        Engine::with_cache(BuildCache::new())
    }

    /// An engine whose sessions all compile through `cache` ([`BuildCache`]
    /// clones share storage, so this also wires the engine into caches
    /// owned elsewhere).
    pub fn with_cache(cache: BuildCache) -> Engine {
        Engine {
            shared: Arc::new(Shared {
                cache,
                sessions: Mutex::new(BTreeMap::new()),
                shutdown: AtomicUsize::new(0),
            }),
        }
    }

    /// The engine's shared compile cache.
    pub fn cache(&self) -> &BuildCache {
        &self.shared.cache
    }

    /// True once [`Request::Shutdown`] has been handled (or
    /// [`Engine::begin_shutdown`] called).
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst) != 0
    }

    /// Flip the shutdown flag and disconnect every watch subscription (so
    /// event-pusher threads blocked on their channels exit).
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.store(1, Ordering::SeqCst);
        let sessions = self.lock_sessions();
        for entry in sessions.values() {
            entry.watchers.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, SessionEntry>> {
        self.shared.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn entry(&self, name: &str) -> Option<SessionEntry> {
        self.lock_sessions().get(name).cloned()
    }

    /// Create the named session (or reconfigure an existing one) and
    /// return its handle plus whether it was freshly created — the
    /// in-process equivalent of [`Request::Open`], and the blessed way to
    /// get a [`SessionHandle`] that shares the engine's cache.
    ///
    /// The `Err` side is the ready-to-send rejection [`Response`] (bad
    /// profile, etc.). Rejections are rare and immediately serialized,
    /// so the large `Err` variant costs nothing on the happy path.
    #[allow(clippy::result_large_err)]
    pub fn open_session(
        &self,
        name: &str,
        options: &SessionOptions,
    ) -> Result<(SessionHandle, bool), Response> {
        let opts = build_options(options)?;
        let mut sessions = self.lock_sessions();
        match sessions.get(name) {
            Some(entry) => {
                entry.handle.set_options(opts);
                Ok((entry.handle.clone(), false))
            }
            None => {
                let handle = SessionHandle::from_session(
                    BuildSession::new(opts).with_cache(self.shared.cache.clone()),
                );
                sessions.insert(
                    name.to_string(),
                    SessionEntry {
                        handle: handle.clone(),
                        seq: Arc::new(AtomicU64::new(0)),
                        watchers: Arc::new(Mutex::new(Vec::new())),
                    },
                );
                Ok((handle, true))
            }
        }
    }

    /// Look up an existing session's handle.
    pub fn session(&self, name: &str) -> Option<SessionHandle> {
        self.entry(name).map(|e| e.handle)
    }

    /// Subscribe to a session's build events (the in-process equivalent of
    /// [`Request::Watch`]). Returns `None` for an unknown session. Every
    /// build *through the engine* emits one event to every subscriber, in
    /// `seq` order.
    pub fn subscribe(&self, name: &str) -> Option<mpsc::Receiver<BuildEvent>> {
        let entry = self.entry(name)?;
        let (tx, rx) = mpsc::channel();
        entry.watchers.lock().unwrap_or_else(|e| e.into_inner()).push(tx);
        Some(rx)
    }

    fn emit(&self, entry: &SessionEntry, event: BuildEvent) {
        let mut watchers = entry.watchers.lock().unwrap_or_else(|e| e.into_inner());
        watchers.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Answer one request. This is the single semantic entry point shared
    /// by the daemon's connection workers and the CLI's in-process
    /// transport — byte-identical behavior on both paths by construction.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Hello { version } => {
                if *version == VERSION {
                    Response::Hello { version: VERSION }
                } else {
                    Response::version_mismatch(*version)
                }
            }
            Request::Open { session, options } => match self.open_session(session, options) {
                Ok((_, created)) => Response::Opened { created },
                Err(resp) => resp,
            },
            Request::LoadUnits { session, file, text } => match self.entry(session) {
                None => unknown_session(session),
                Some(entry) => match entry.handle.load_units(file, text) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error { diagnostics: e.diagnostics() },
                },
            },
            Request::UpdateUnit { session, file, text } => match self.entry(session) {
                None => unknown_session(session),
                Some(entry) => match entry.handle.update_unit(file, text) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error { diagnostics: e.diagnostics() },
                },
            },
            Request::UpdateSource { session, path, text } => match self.entry(session) {
                None => unknown_session(session),
                Some(entry) => {
                    entry.handle.update_source(path, text);
                    Response::Ok
                }
            },
            Request::Build { session, want_image } => match self.entry(session) {
                None => unknown_session(session),
                Some(entry) => {
                    // One lock hold for build + ledger read, so the
                    // outcome's `watched` list is from exactly this build.
                    let result = entry.handle.with(|s| {
                        let r = s.build();
                        let watched = s.watched_paths();
                        (r, watched)
                    });
                    let seq = entry.seq.fetch_add(1, Ordering::SeqCst) + 1;
                    match result {
                        (Ok(report), watched) => {
                            let outcome = BuildOutcome::from_report(&report, watched);
                            self.emit(
                                &entry,
                                BuildEvent {
                                    session: session.clone(),
                                    seq,
                                    ok: true,
                                    units_compiled: outcome.units_compiled,
                                    units_reused: outcome.units_reused,
                                    text_size: outcome.text_size,
                                    image_hash: outcome.image_hash,
                                },
                            );
                            let image = want_image.then(|| proto::encode_image(&report.image));
                            Response::Built { outcome, image }
                        }
                        (Err(e), _) => {
                            self.emit(
                                &entry,
                                BuildEvent {
                                    session: session.clone(),
                                    seq,
                                    ok: false,
                                    units_compiled: 0,
                                    units_reused: 0,
                                    text_size: 0,
                                    image_hash: 0,
                                },
                            );
                            Response::Error { diagnostics: e.diagnostics() }
                        }
                    }
                }
            },
            Request::Lint { session, config } => match self.entry(session) {
                None => unknown_session(session),
                Some(entry) => {
                    let mut lc = LintConfig::new();
                    lc.deny_warnings(config.deny_warnings);
                    for (name, level) in &config.overrides {
                        if let Err(e) = lc.set(name, *level) {
                            return Response::Error { diagnostics: e.diagnostics() };
                        }
                    }
                    match entry.handle.analyze(&lc) {
                        Ok(report) => Response::Linted {
                            units_analyzed: report.units_analyzed,
                            warnings: report.warnings(),
                            errors: report.errors(),
                            diagnostics: report.diagnostics,
                        },
                        Err(e) => Response::Error { diagnostics: e.diagnostics() },
                    }
                }
            },
            Request::Explain { code } => match crate::diag::explain(code) {
                Some(e) => Response::Explained {
                    code: e.code.to_string(),
                    summary: e.summary.to_string(),
                    example: e.example.to_string(),
                    lint: crate::analyze::LINTS
                        .iter()
                        .find(|l| l.code == e.code)
                        .map(|l| (l.name.to_string(), l.default_level)),
                },
                None => Response::malformed(format!("unknown diagnostic code `{code}`")),
            },
            Request::PgoSuggest { session, profile } => match self.entry(session) {
                None => unknown_session(session),
                Some(entry) => {
                    let profile = match machine::Profile::from_json(profile) {
                        Ok(p) => p,
                        Err(e) => return Response::malformed(format!("bad profile: {e}")),
                    };
                    match entry.handle.build() {
                        Ok(report) => Response::Suggested {
                            text: crate::pgo::suggest(&report, &profile).render(),
                        },
                        Err(e) => Response::Error { diagnostics: e.diagnostics() },
                    }
                }
            },
            Request::Watch { session } => match self.entry(session) {
                // The transport layer attaches the actual stream (see
                // `Server`'s worker; in-process callers use
                // `Engine::subscribe`); the engine only validates.
                None => unknown_session(session),
                Some(_) => Response::Subscribed { session: session.clone() },
            },
            Request::Close { session } => {
                if self.lock_sessions().remove(session).is_some() {
                    Response::Ok
                } else {
                    unknown_session(session)
                }
            }
            Request::Ping => Response::Pong,
            Request::Shutdown => {
                self.begin_shutdown();
                Response::Bye
            }
        }
    }
}

fn unknown_session(name: &str) -> Response {
    Response::malformed(format!("unknown session `{name}` (open it first)"))
}

/// Lower wire-level [`SessionOptions`] onto [`BuildOptions`], applying the
/// documented defaults for omitted fields.
#[allow(clippy::result_large_err)]
fn build_options(o: &SessionOptions) -> Result<BuildOptions, Response> {
    let mut opts = BuildOptions::new(o.root.clone(), machine::runtime_symbols());
    opts.entry = o.entry.clone();
    opts.check_constraints = o.check_constraints;
    opts.flatten = o.flatten;
    if let Some(jobs) = o.jobs {
        opts.jobs = jobs.max(1);
    } else {
        opts.jobs = default_jobs();
    }
    if !o.default_flags.is_empty() {
        opts.default_flags = o.default_flags.clone();
    }
    if !o.runtime_symbols.is_empty() {
        opts.runtime_symbols = o.runtime_symbols.iter().cloned().collect();
    }
    if let Some(text) = &o.profile {
        let profile = machine::Profile::from_json(text)
            .map_err(|e| Response::malformed(format!("bad profile: {e}")))?;
        opts.profile = Some(std::sync::Arc::new(profile.layout_profile()));
    }
    Ok(opts)
}

// ---------------------------------------------------------------------------
// streams and listeners
// ---------------------------------------------------------------------------

/// One bidirectional local-socket stream (Unix or TCP loopback).
#[derive(Debug)]
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown(&self, how: NetShutdown) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(how),
            Stream::Tcp(s) => s.shutdown(how),
        }
    }

    fn connect(addr: &str) -> io::Result<Stream> {
        if let Some(path) = addr.strip_prefix("unix:") {
            Ok(Stream::Unix(UnixStream::connect(path)?))
        } else if let Some(hostport) = addr.strip_prefix("tcp:") {
            // A bare port means loopback, mirroring `Server::bind`'s
            // `tcp:<port>` spec so the printed serve address round-trips.
            if hostport.contains(':') {
                Ok(Stream::Tcp(TcpStream::connect(hostport)?))
            } else {
                let port = hostport.parse::<u16>().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("bad tcp port `{hostport}`"),
                    )
                })?;
                Ok(Stream::Tcp(TcpStream::connect(("127.0.0.1", port))?))
            }
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("address must start with `unix:` or `tcp:`, got `{addr}`"),
            ))
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => Ok(Stream::Unix(l.accept()?.0)),
            Listener::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
        }
    }
}

// ---------------------------------------------------------------------------
// the server
// ---------------------------------------------------------------------------

/// The `knitc serve` daemon: a bound local socket plus a shared
/// [`Engine`]. Create with [`Server::bind`], then either [`Server::run`]
/// on the current thread or [`Server::spawn`] a background thread; both
/// return after a [`Request::Shutdown`] drains all connections.
pub struct Server {
    engine: Engine,
    listener: Listener,
    addr: String,
}

impl Server {
    /// Bind a listening socket. `spec` is `"unix:<path>"`, `"tcp:<port>"`
    /// (loopback only), or `"auto"` — a Unix socket at a fresh path under
    /// the system temp directory, falling back to an ephemeral TCP
    /// loopback port where Unix sockets are unavailable.
    pub fn bind(engine: Engine, spec: &str) -> io::Result<Server> {
        if let Some(path) = spec.strip_prefix("unix:") {
            let path = PathBuf::from(path);
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            let addr = format!("unix:{}", path.display());
            return Ok(Server { engine, listener: Listener::Unix(listener, path), addr });
        }
        if let Some(port) = spec.strip_prefix("tcp:") {
            let listener = TcpListener::bind((
                "127.0.0.1",
                port.parse::<u16>().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidInput, format!("bad tcp port `{port}`"))
                })?,
            ))?;
            let addr = format!("tcp:{}", listener.local_addr()?);
            return Ok(Server { engine, listener: Listener::Tcp(listener), addr });
        }
        if spec != "auto" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("socket spec must be `unix:<path>`, `tcp:<port>`, or `auto`, got `{spec}`"),
            ));
        }
        static AUTO_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "knitc-serve-{}-{}.sock",
            std::process::id(),
            AUTO_SEQ.fetch_add(1, Ordering::SeqCst),
        ));
        let _ = std::fs::remove_file(&path);
        match UnixListener::bind(&path) {
            Ok(listener) => {
                let addr = format!("unix:{}", path.display());
                Ok(Server { engine, listener: Listener::Unix(listener, path), addr })
            }
            Err(_) => {
                let listener = TcpListener::bind(("127.0.0.1", 0))?;
                let addr = format!("tcp:{}", listener.local_addr()?);
                Ok(Server { engine, listener: Listener::Tcp(listener), addr })
            }
        }
    }

    /// The bound address, in the form [`Conn::connect`] accepts.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The server's engine (e.g. to open sessions in-process before any
    /// client connects).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Accept and serve connections until a client sends
    /// [`Request::Shutdown`]; then drain: half-close every connection,
    /// join every worker (letting in-flight requests complete and answer),
    /// and clean up the socket.
    pub fn run(self) -> io::Result<()> {
        let streams: Arc<Mutex<Vec<Stream>>> = Arc::new(Mutex::new(Vec::new()));
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let stream = match self.listener.accept() {
                Ok(s) => s,
                Err(e) => {
                    if self.engine.is_shutdown() {
                        break;
                    }
                    return Err(e);
                }
            };
            if self.engine.is_shutdown() {
                break; // the shutdown wake-up connection
            }
            if let Ok(track) = stream.try_clone() {
                streams.lock().unwrap_or_else(|e| e.into_inner()).push(track);
            }
            let engine = self.engine.clone();
            let addr = self.addr.clone();
            workers.push(std::thread::spawn(move || serve_connection(engine, addr, stream)));
        }
        // Drain: unblock idle readers (writes still flow, so workers
        // mid-request finish and respond), then wait for every worker.
        for s in streams.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let _ = s.shutdown(NetShutdown::Read);
        }
        for w in workers {
            let _ = w.join();
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Run on a background thread; the returned handle carries the bound
    /// address and joins the server.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr.clone();
        let engine = self.engine.clone();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, engine, thread }
    }
}

/// Handle to a [`Server`] running on a background thread
/// (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: String,
    engine: Engine,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address, in the form [`Conn::connect`] accepts.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The running server's engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Wait for the server to shut down.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// One connection's request loop: handshake, then requests in order, with
/// `watch` attaching an event-pusher thread that shares the write side.
fn serve_connection(engine: Engine, addr: String, stream: Stream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut reader = reader;
    let mut line = String::new();
    let mut hello_done = false;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF or torn connection
            Ok(_) => {}
        }
        let text = line.trim_end_matches(['\r', '\n']);
        if text.is_empty() {
            continue;
        }
        let mut stop = false;
        let resp = match Request::from_json(text) {
            Err(e) => Response::malformed(e),
            Ok(Request::Hello { version }) => {
                if version == VERSION {
                    hello_done = true;
                    Response::Hello { version: VERSION }
                } else {
                    Response::version_mismatch(version)
                }
            }
            Ok(_) if !hello_done => Response::malformed("connection must open with `hello`"),
            Ok(Request::Watch { session }) => match engine.subscribe(&session) {
                None => unknown_session(&session),
                Some(rx) => {
                    let writer = Arc::clone(&writer);
                    std::thread::spawn(move || {
                        while let Ok(event) = rx.recv() {
                            let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                            let line = Response::Event(event).to_json();
                            if w.write_all(line.as_bytes()).is_err()
                                || w.write_all(b"\n").is_err()
                                || w.flush().is_err()
                            {
                                break;
                            }
                        }
                    });
                    Response::Subscribed { session }
                }
            },
            Ok(Request::Shutdown) => {
                stop = true;
                engine.handle(&Request::Shutdown)
            }
            Ok(req) => engine.handle(&req),
        };
        {
            let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
            let line = resp.to_json();
            if w.write_all(line.as_bytes()).is_err()
                || w.write_all(b"\n").is_err()
                || w.flush().is_err()
            {
                break;
            }
        }
        if stop {
            // Wake the acceptor so `Server::run` notices the flag.
            let _ = Stream::connect(&addr);
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// the client
// ---------------------------------------------------------------------------

/// A client connection to a running composition server. [`Conn::connect`]
/// performs the [`Request::Hello`] handshake; [`Conn::call`] then sends
/// one request and returns its response, transparently queueing any
/// [`Response::Event`] lines that arrive in between (drain them with
/// [`Conn::poll_event`] / [`Conn::recv_event`]).
pub struct Conn {
    reader: BufReader<Stream>,
    writer: Stream,
    events: VecDeque<BuildEvent>,
}

impl Conn {
    /// Connect to `addr` (`"unix:<path>"`, `"tcp:<host>:<port>"`, or
    /// `"tcp:<port>"` for loopback) and
    /// perform the version handshake. A version mismatch surfaces as an
    /// [`io::Error`] carrying the server's `K0016` diagnostic text.
    pub fn connect(addr: &str) -> io::Result<Conn> {
        let writer = Stream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        let mut conn = Conn { reader, writer, events: VecDeque::new() };
        match conn.call(&Request::Hello { version: VERSION })? {
            Response::Hello { .. } => Ok(conn),
            Response::Error { diagnostics } => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                diagnostics
                    .first()
                    .map(|d| d.human())
                    .unwrap_or_else(|| "handshake rejected".to_string()),
            )),
            other => Err(bad_wire(format!("unexpected handshake response {other:?}"))),
        }
    }

    /// Send one request and return its response. Events that arrive first
    /// are queued, not lost.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.writer.write_all(req.to_json().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        loop {
            match self.read_response()? {
                Response::Event(e) => self.events.push_back(e),
                resp => return Ok(resp),
            }
        }
    }

    /// Pop an already-received watch event, if any (non-blocking).
    pub fn poll_event(&mut self) -> Option<BuildEvent> {
        self.events.pop_front()
    }

    /// Wait for the next watch event (queued or from the wire).
    pub fn recv_event(&mut self) -> io::Result<BuildEvent> {
        if let Some(e) = self.events.pop_front() {
            return Ok(e);
        }
        match self.read_response()? {
            Response::Event(e) => Ok(e),
            other => Err(bad_wire(format!("expected event, got {other:?}"))),
        }
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_json(line.trim_end_matches(['\r', '\n'])).map_err(bad_wire)
    }
}

fn bad_wire(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_and_handles_are_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Engine>();
        check::<SessionHandle>();
        check::<BuildSession>();
    }

    #[test]
    fn handshake_is_enforced_per_connection() {
        let server = Server::bind(Engine::new(), "auto").unwrap();
        let addr = server.addr().to_string();
        let handle = server.spawn();

        // A correct handshake succeeds...
        let mut conn = Conn::connect(&addr).unwrap();
        assert_eq!(conn.call(&Request::Ping).unwrap(), Response::Pong);

        // ...a raw connection that skips `hello` is rejected with K0017...
        let mut raw = Stream::connect(&addr).unwrap();
        raw.write_all(b"{\"req\":\"ping\"}\n").unwrap();
        let mut r = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let resp = Response::from_json(line.trim_end()).unwrap();
        let Response::Error { diagnostics } = resp else { panic!("expected error: {line}") };
        assert_eq!(diagnostics[0].code, "K0017");

        // ...and a version mismatch with K0016.
        let mut raw = Stream::connect(&addr).unwrap();
        raw.write_all(b"{\"req\":\"hello\",\"version\":999}\n").unwrap();
        let mut r = BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        let resp = Response::from_json(line.trim_end()).unwrap();
        let Response::Error { diagnostics } = resp else { panic!("expected error: {line}") };
        assert_eq!(diagnostics[0].code, "K0016");

        assert_eq!(conn.call(&Request::Shutdown).unwrap(), Response::Bye);
        handle.join().unwrap();
    }
}
