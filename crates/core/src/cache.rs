//! Content-addressed compile cache.
//!
//! The paper's §6 measurement (reproduced by `bench --bin build_time`) shows
//! that >95% of a Knit build is spent in the C compiler and linker. The
//! harnesses in this repository — `table1`, `table2`, `build_time`,
//! `micro_overhead`, repeated `knitc` invocations — rebuild heavily
//! overlapping unit sets, so [`BuildCache`] lets every build path —
//! [`BuildSession`](crate::session::BuildSession), the composition
//! server's [`Engine`](crate::server::Engine), and the deprecated one-shot
//! [`build_with_cache`](crate::driver::build_with_cache) — skip `cmini`
//! entirely for any unit whose *content* was compiled before.
//!
//! A cache key is a stable 64-bit FNV-1a hash of everything that can affect
//! a unit's compiled objects:
//!
//! * the **preprocessed** text of every source file in the unit's `files`
//!   clause (so edits to headers reached through `-I` invalidate too);
//! * pre-compiled object files named in `files`, hashed structurally;
//! * the unit's effective compiler flags (in order — `-I` search order
//!   matters);
//! * the unit's `rename` map.
//!
//! The unit *name* is deliberately excluded: two units with identical
//! sources, flags, and renames compile to identical objects and share one
//! entry. Instance-level symbol renaming happens after compilation and is
//! never cached.
//!
//! The cache is `Sync`; compile workers running under
//! [`BuildOptions::jobs`](crate::BuildOptions) query and fill it
//! concurrently. If two workers race on the same key the last insert wins —
//! both values are equal by construction, so the race is benign.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::driver::CompiledUnit;

/// A stable, process-independent 64-bit FNV-1a hasher. `std`'s
/// `DefaultHasher` is unspecified across releases; cache keys should not
/// silently change meaning when the toolchain updates.
#[derive(Debug, Clone)]
pub(crate) struct StableHasher(u64);

impl StableHasher {
    pub(crate) fn new() -> StableHasher {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // length terminator: distinguishes ["ab","c"] from ["a","bc"]
        self.write_u64(bytes.len() as u64);
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// A reusable, thread-safe compile cache, owned by every
/// [`BuildSession`](crate::session::BuildSession) and shared across all
/// sessions of a composition-server [`Engine`](crate::server::Engine).
///
/// Cloning a `BuildCache` is cheap and the clone **shares storage** with
/// the original (it is an `Arc` handle), so several sessions can warm each
/// other — that sharing is exactly the cross-client compile dedupe the
/// server advertises.
///
/// [`build`](crate::driver::build) creates a throwaway cache per call (a
/// cold build); sessions opened from one `Engine` share one cache, so a
/// unit any client compiled is a hit for every other client:
///
/// ```
/// use knit::{Engine, SessionOptions};
///
/// const UNIT: &str = r#"
///     bundletype Main = { main }
///     unit App = { exports [ main : Main ]; files { "app.c" }; }
/// "#;
/// let engine = Engine::new();
/// let opts = SessionOptions::new("App");
/// let (a, _) = engine.open_session("alice", &opts).unwrap();
/// a.load_units("m.unit", UNIT).unwrap();
/// a.update_source("app.c", "int main() { return 40 + 2; }");
/// let cold = a.build().unwrap();
///
/// let (b, _) = engine.open_session("bob", &opts).unwrap();
/// b.load_units("m.unit", UNIT).unwrap();
/// b.update_source("app.c", "int main() { return 40 + 2; }");
/// let warm = b.build().unwrap();
/// assert_eq!(cold.stats.cache_misses, 1);
/// assert_eq!(warm.stats.cache_misses, 0); // deduped across sessions
/// assert_eq!(cold.image, warm.image);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BuildCache {
    entries: Arc<Mutex<HashMap<u64, Arc<CompiledUnit>>>>,
}

impl BuildCache {
    /// An empty cache.
    pub fn new() -> BuildCache {
        BuildCache::default()
    }

    /// Number of cached compiled units.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry.
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock").clear();
    }

    pub(crate) fn lookup(&self, key: u64) -> Option<Arc<CompiledUnit>> {
        self.entries.lock().expect("cache lock").get(&key).cloned()
    }

    pub(crate) fn insert(&self, key: u64, unit: Arc<CompiledUnit>) {
        self.entries.lock().expect("cache lock").insert(key, unit);
    }
}

#[cfg(test)]
mod tests {
    use super::StableHasher;

    #[test]
    fn hasher_is_stable_and_separates_boundaries() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = StableHasher::new();
        c.write_str("ab");
        c.write_str("c");
        assert_eq!(a.finish(), c.finish());
    }
}
