//! # knit — component composition for systems software
//!
//! A from-scratch reproduction of the system described in *Knit: Component
//! Composition for Systems Software* (Reid, Flatt, Stoller, Lepreau, Eide —
//! OSDI 2000). Knit is a component definition and linking language for C
//! code: *atomic units* wrap C files behind explicit import/export bundles,
//! *compound units* wire units together (hierarchically, with renaming and
//! multiple instantiation), and the Knit compiler turns a configuration
//! into a linked program. On top of the linking model the system provides:
//!
//! * **automatic scheduling of initializers and finalizers** ([`sched`]),
//!   driven by per-export and per-initializer dependency declarations,
//!   correct even when the import graph is cyclic;
//! * **architectural constraint checking** ([`constraints`]): user-defined
//!   properties with partially-ordered values, propagated across the
//!   linking graph, catching errors like process-context code called from
//!   interrupt context;
//! * **flattening** (the `flatten` crate): merging the C sources of a
//!   subtree of units into one translation unit so an ordinary C compiler
//!   inlines across component boundaries (§6 of the paper).
//!
//! The pipeline mirrors the paper's implementation — "the Knit compiler
//! reads the linking specification and unit files, generates initialization
//! and finalization code, runs the C compiler … the object files are then
//! processed by a slightly modified version of GNU's objcopy, which handles
//! renaming symbols and duplicating object code for multiply-instantiated
//! units. Finally, these object files are linked together using ld":
//!
//! ```text
//! .unit files ──parse──▶ Program ──elaborate──▶ instance graph
//!     ──check──▶ constraints ✓   ──schedule──▶ init/fini order
//!     ──cmini──▶ .o per unit  ──objcopy──▶ renamed per instance
//!     ──ld──▶ executable Image (run it on the `machine` crate)
//! ```
//!
//! Entry points: [`Program`] to register `.unit` sources, [`SourceTree`]
//! for the C sources, and [`driver::build`] (one-shot) or a
//! [`BuildSession`] (incremental) to produce a runnable image. Errors
//! render to span-carrying [`Diagnostic`]s via
//! [`KnitError::diagnostics`]. `use knit::prelude::*` pulls in the whole
//! common surface.

#![warn(missing_docs)]

pub mod analyze;
pub mod cache;
pub mod constraints;
pub mod diag;
pub mod driver;
pub mod elaborate;
pub mod error;
pub mod model;
pub mod pgo;
pub mod proto;
pub mod sched;
pub mod server;
pub mod session;
pub mod vfs;

pub use analyze::{lint, lint_by_name, AnalysisReport, Lint, LintConfig, LintLevel, LINTS};
pub use cache::BuildCache;
pub use diag::{Diagnostic, Severity};
#[allow(deprecated)]
pub use driver::build_with_cache;
pub use driver::{
    build, default_jobs, BuildOptions, BuildOptionsBuilder, BuildReport, BuildStats, UnitCompile,
};
pub use elaborate::{Elaboration, Wire};
pub use error::KnitError;
pub use model::Program;
pub use pgo::{FlattenSuggestion, HotEdge, PgoReport};
pub use proto::{Request, Response, SessionOptions};
pub use server::{Conn, Engine, Server, ServerHandle};
pub use session::{BuildSession, PhaseCount, Session, SessionHandle, SessionStats};
pub use vfs::SourceTree;

/// One import for the common API surface:
///
/// ```
/// use knit::prelude::*;
///
/// let mut s = Session::new(BuildOptions::root("App").jobs(1).build());
/// s.load_units("app.unit", r#"
///     bundletype Main = { main }
///     unit App = { exports [ main : Main ]; files { "app.c" }; }
/// "#).unwrap();
/// s.update_source("app.c", "int main() { return 7; }");
/// let report: BuildReport = s.build().unwrap();
/// assert_eq!(report.stats.units_compiled, 1);
/// ```
pub mod prelude {
    pub use crate::analyze::{lint, AnalysisReport, LintConfig, LintLevel};
    pub use crate::cache::BuildCache;
    pub use crate::diag::{Diagnostic, Severity};
    #[allow(deprecated)]
    pub use crate::driver::build_with_cache;
    pub use crate::driver::{build, BuildOptions, BuildOptionsBuilder, BuildReport, BuildStats};
    pub use crate::error::KnitError;
    pub use crate::model::Program;
    pub use crate::pgo::{FlattenSuggestion, HotEdge, PgoReport};
    pub use crate::proto::{Request, Response, SessionOptions};
    pub use crate::server::{Conn, Engine, Server};
    pub use crate::session::{BuildSession, PhaseCount, Session, SessionHandle, SessionStats};
    pub use crate::vfs::SourceTree;
}
