//! # knit — component composition for systems software
//!
//! A from-scratch reproduction of the system described in *Knit: Component
//! Composition for Systems Software* (Reid, Flatt, Stoller, Lepreau, Eide —
//! OSDI 2000). Knit is a component definition and linking language for C
//! code: *atomic units* wrap C files behind explicit import/export bundles,
//! *compound units* wire units together (hierarchically, with renaming and
//! multiple instantiation), and the Knit compiler turns a configuration
//! into a linked program. On top of the linking model the system provides:
//!
//! * **automatic scheduling of initializers and finalizers** ([`sched`]),
//!   driven by per-export and per-initializer dependency declarations,
//!   correct even when the import graph is cyclic;
//! * **architectural constraint checking** ([`constraints`]): user-defined
//!   properties with partially-ordered values, propagated across the
//!   linking graph, catching errors like process-context code called from
//!   interrupt context;
//! * **flattening** (the `flatten` crate): merging the C sources of a
//!   subtree of units into one translation unit so an ordinary C compiler
//!   inlines across component boundaries (§6 of the paper).
//!
//! The pipeline mirrors the paper's implementation — "the Knit compiler
//! reads the linking specification and unit files, generates initialization
//! and finalization code, runs the C compiler … the object files are then
//! processed by a slightly modified version of GNU's objcopy, which handles
//! renaming symbols and duplicating object code for multiply-instantiated
//! units. Finally, these object files are linked together using ld":
//!
//! ```text
//! .unit files ──parse──▶ Program ──elaborate──▶ instance graph
//!     ──check──▶ constraints ✓   ──schedule──▶ init/fini order
//!     ──cmini──▶ .o per unit  ──objcopy──▶ renamed per instance
//!     ──ld──▶ executable Image (run it on the `machine` crate)
//! ```
//!
//! Entry points: [`Program`] to register `.unit` sources, [`SourceTree`]
//! for the C sources, and [`driver::build`] to produce a runnable image.

pub mod cache;
pub mod constraints;
pub mod driver;
pub mod elaborate;
pub mod error;
pub mod model;
pub mod sched;
pub mod vfs;

pub use cache::BuildCache;
pub use driver::{
    build, build_with_cache, default_jobs, BuildOptions, BuildReport, BuildStats, UnitCompile,
};
pub use elaborate::{Elaboration, Wire};
pub use error::KnitError;
pub use model::Program;
pub use vfs::SourceTree;
