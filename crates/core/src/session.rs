//! Incremental build sessions with fine-grained invalidation.
//!
//! A [`BuildSession`] is a persistent handle that owns the parsed
//! [`Program`], the [`SourceTree`], a [`BuildCache`], and — the part
//! one-shot [`build`](crate::driver::build) calls cannot have — memoized
//! per-phase artifacts from the previous build. Edits flow in through
//! [`BuildSession::update_source`] / [`BuildSession::update_unit`] /
//! [`BuildSession::set_options`], and the next
//! [`BuildSession::build`] reruns exactly the phases whose *inputs*
//! changed:
//!
//! * every phase's inputs are reduced to a stable fingerprint (a span-free
//!   hash, so comment and whitespace edits to `.unit` files change
//!   nothing);
//! * the compile phase additionally keeps a **dependency ledger**: the set
//!   of source-tree paths each unit's compile consulted (including
//!   misses), so editing one `.c` file re-runs exactly that unit's
//!   compile, the objcopy of its instances, and the final link;
//! * an unchanged session returns a fully cached [`BuildReport`] without
//!   rerunning anything at all.
//!
//! The memoization is *correctness-first*: every reuse is keyed by a
//! fingerprint of the complete phase input, so a session build and a cold
//! [`build`](crate::driver::build) of the same program/sources/options
//! always produce byte-identical images (`tests/incremental.rs` checks
//! this property over randomized edit sequences). [`SessionStats`] counts
//! per-phase reruns vs reuses, which is what the precision tests pin down.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cobj::object::ObjectFile;
use cobj::{Image, Layout, LinkInput, LinkOptions};
use knit_lang::ast::{
    COp, CTarget, CTerm, Constraint, DepAtom, DepSide, PathRef, UnitBody, UnitDecl,
};

use crate::analyze::{self, AnalysisMemo, AnalysisReport, LintConfig};
use crate::cache::{BuildCache, StableHasher};
use crate::constraints::{self, ConstraintReport};
use crate::driver::{
    atomic_body, boot_object, compile_unit_cached, flatten_opts, group_externals,
    instance_symbol_map, root_exports_map, run_indexed, BuildOptions, BuildReport, BuildStats,
    CompiledUnit, UnitCompile,
};
use crate::elaborate::{elaborate, Elaboration};
use crate::error::KnitError;
use crate::model::Program;
use crate::sched::{self, Schedule};
use crate::vfs::SourceTree;

/// How often one pipeline phase actually ran vs was served from a
/// session's memo (or, for the compile phase, the [`BuildCache`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCount {
    /// Times the phase's work actually executed.
    pub runs: usize,
    /// Times a memoized (or cached) result was reused instead.
    pub reuses: usize,
}

/// Cumulative per-phase rerun/reuse counts for one [`BuildSession`].
///
/// `unit_compiles`, `objcopy`, and `flatten` count per-unit / per-instance
/// / per-group work items; the other phases count whole-phase executions.
/// A [`BuildCache`] hit counts as a *reuse* — `runs` always means "the
/// expensive thing actually happened".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Builds requested through [`BuildSession::build`].
    pub builds: usize,
    /// Builds answered entirely from the memoized previous report.
    pub full_reuse_builds: usize,
    /// Elaboration phase executions/reuses.
    pub elaborate: PhaseCount,
    /// Constraint-check phase executions/reuses.
    pub constraints: PhaseCount,
    /// Initializer-schedule phase executions/reuses.
    pub schedule: PhaseCount,
    /// Per-unit compile executions/reuses (`runs` = `cmini` ran).
    pub unit_compiles: PhaseCount,
    /// Per-instance objcopy executions/reuses.
    pub objcopy: PhaseCount,
    /// Per-group flatten recompile executions/reuses.
    pub flatten: PhaseCount,
    /// Boot-object generation executions/reuses.
    pub generate: PhaseCount,
    /// Final link executions/reuses.
    pub link: PhaseCount,
    /// Per-unit analysis summaries ([`BuildSession::analyze`])
    /// executions/reuses.
    pub analyze: PhaseCount,
}

/// Memoized compile artifact for one distinct unit, plus the ledger needed
/// to decide whether it is still valid.
#[derive(Debug)]
struct UnitMemo {
    /// Fingerprint of the unit's *declaration-level* compile inputs
    /// (files list, effective flags, renames) — source *contents* are
    /// covered by `reads` + the session dirty set instead, so deciding
    /// reuse never re-hashes (or re-preprocesses) unchanged sources.
    decl_fp: u64,
    /// The unit's [`BuildCache`] content key from when it was built.
    key: u64,
    /// The compiled artifact.
    cu: Arc<CompiledUnit>,
    /// Every source-tree path the compile consulted (hits and misses).
    reads: BTreeSet<String>,
}

/// Work-item counts from the last completed build, used to keep
/// [`SessionStats`] honest on the fully-memoized fast path.
#[derive(Debug, Clone, Copy, Default)]
struct Counts {
    units: usize,
    objcopy: usize,
    groups: usize,
}

/// Memoized boot artifact: the generated boot object plus the resolved
/// root export map.
type BootArtifact = (ObjectFile, BTreeMap<String, String>);

/// Memoized per-phase artifacts of the previous build. Every entry is
/// keyed by a fingerprint of that phase's complete input; `run_build`
/// reuses an entry only when the fingerprint matches exactly.
#[derive(Debug, Default)]
pub(crate) struct Memo {
    elaborate: Option<(u64, Arc<Elaboration>)>,
    constraints: Option<(u64, Option<ConstraintReport>)>,
    schedule: Option<(u64, Arc<Schedule>)>,
    units: BTreeMap<String, UnitMemo>,
    objcopy: BTreeMap<usize, (u64, Vec<ObjectFile>)>,
    flatten: BTreeMap<usize, (u64, ObjectFile)>,
    boot: Option<(u64, BootArtifact)>,
    link: Option<(u64, Image)>,
    report: Option<BuildReport>,
    opts_fp: Option<u64>,
    counts: Counts,
    analysis: BTreeMap<String, AnalysisMemo>,
}

// ---------------------------------------------------------------------------
// fingerprints
//
// All fingerprints are span-free: AST nodes are hashed field by field,
// skipping source positions, so shifting a declaration down a line (or
// editing a comment) invalidates nothing.
// ---------------------------------------------------------------------------

fn hash_pathref(h: &mut StableHasher, p: &PathRef) {
    match p {
        PathRef::Name(n) => {
            h.write_str("name");
            h.write_str(n);
        }
        PathRef::Dotted(a, b) => {
            h.write_str("dot");
            h.write_str(a);
            h.write_str(b);
        }
    }
}

/// Hash the parts of a unit declaration that elaboration can observe: the
/// import/export interface, the compound wiring, and the flatten marker.
/// Atomic bodies contribute only their discriminant — file lists, flags,
/// renames, and schedules feed later phases' fingerprints instead.
fn hash_unit_interface(h: &mut StableHasher, unit: &UnitDecl) {
    h.write_str("unit");
    h.write_str(&unit.name);
    h.write_str(if unit.flatten { "flatten" } else { "plain" });
    for p in &unit.imports {
        h.write_str("import");
        h.write_str(&p.name);
        h.write_str(&p.bundle_type);
    }
    for p in &unit.exports {
        h.write_str("export");
        h.write_str(&p.name);
        h.write_str(&p.bundle_type);
    }
    match &unit.body {
        UnitBody::Atomic(_) => h.write_str("atomic"),
        UnitBody::Compound(c) => {
            h.write_str("compound");
            for inst in &c.instances {
                h.write_str("inst");
                h.write_str(&inst.name);
                h.write_str(&inst.unit);
                for (port, pr) in &inst.bindings {
                    h.write_str("bind");
                    h.write_str(port);
                    hash_pathref(h, pr);
                }
            }
            for eb in &c.export_bindings {
                h.write_str("eb");
                h.write_str(&eb.export);
                h.write_str(&eb.instance);
                h.write_str(&eb.port);
            }
        }
    }
}

/// Fingerprint of everything `elaborate(program, root)` can observe.
fn fp_elaborate(program: &Program, root: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("elaborate");
    h.write_str(root);
    for (name, members) in &program.bundletypes {
        h.write_str("bt");
        h.write_str(name);
        for m in members {
            h.write_str(m);
        }
    }
    for unit in program.units.values() {
        hash_unit_interface(&mut h, unit);
    }
    h.finish()
}

fn hash_cterm(h: &mut StableHasher, t: &CTerm) {
    match t {
        CTerm::Prop { prop, target } => {
            h.write_str("prop");
            h.write_str(prop);
            match target {
                CTarget::Imports => h.write_str("@imports"),
                CTarget::Exports => h.write_str("@exports"),
                CTarget::Name(n) => {
                    h.write_str("@name");
                    h.write_str(n);
                }
            }
        }
        CTerm::Value(v) => {
            h.write_str("value");
            h.write_str(v);
        }
    }
}

fn hash_constraint(h: &mut StableHasher, c: &Constraint) {
    h.write_str("c");
    hash_cterm(h, &c.lhs);
    h.write_str(match c.op {
        COp::Eq => "=",
        COp::Le => "<=",
    });
    hash_cterm(h, &c.rhs);
}

/// Fingerprint of everything the constraint checker can observe: the
/// elaboration, the property posets, value→property bindings, every unit's
/// constraint declarations, and whether checking is enabled at all.
fn fp_constraints(program: &Program, el_fp: u64, opts: &BuildOptions) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("constraints");
    h.write_u64(el_fp);
    h.write_str(if opts.check_constraints { "check" } else { "skip" });
    for (prop, poset) in &program.properties {
        h.write_str("prop");
        h.write_str(prop);
        let values = poset.values();
        for a in values {
            h.write_str(a);
            for b in values {
                if poset.leq(a, b) {
                    h.write_str(b);
                }
            }
        }
    }
    for (value, prop) in &program.value_property {
        h.write_str("vp");
        h.write_str(value);
        h.write_str(prop);
    }
    for unit in program.units.values() {
        h.write_str("u");
        h.write_str(&unit.name);
        for c in &unit.constraints {
            hash_constraint(&mut h, c);
        }
    }
    h.finish()
}

/// Fingerprint of everything the initializer scheduler can observe beyond
/// the elaboration: each instantiated unit's `depends`, `initializer`, and
/// `finalizer` declarations.
fn fp_schedule(program: &Program, el: &Elaboration, el_fp: u64) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("schedule");
    h.write_u64(el_fp);
    let distinct: BTreeSet<&str> = el.instances.iter().map(|i| i.unit.as_str()).collect();
    for name in distinct {
        let body = atomic_body(&program.units[name]);
        h.write_str("u");
        h.write_str(name);
        for d in &body.depends {
            h.write_str("dep");
            match &d.lhs {
                DepSide::Exports => h.write_str("@exports"),
                DepSide::Name(n) => {
                    h.write_str("@name");
                    h.write_str(n);
                }
            }
            for a in &d.rhs {
                match a {
                    DepAtom::Imports => h.write_str("@imports"),
                    DepAtom::Name(n) => {
                        h.write_str("@name");
                        h.write_str(n);
                    }
                }
            }
        }
        for i in &body.initializers {
            h.write_str("init");
            h.write_str(&i.func);
            h.write_str(&i.bundle);
        }
        for f in &body.finalizers {
            h.write_str("fini");
            h.write_str(&f.func);
            h.write_str(&f.bundle);
        }
    }
    h.finish()
}

/// Fingerprint of a unit's declaration-level compile inputs: its files
/// list, effective flags, and renames — deliberately *not* the source
/// contents, which the dependency ledger covers. (Also keys the
/// analyzer's per-unit summaries; lint *pragmas* are deliberately
/// excluded — they change which diagnostics are reported, not what the
/// sources mean, and are applied at emit time.)
pub(crate) fn fp_unit_decl(program: &Program, unit_name: &str, opts: &BuildOptions) -> u64 {
    let body = atomic_body(&program.units[unit_name]);
    let mut h = StableHasher::new();
    h.write_str("unitdecl");
    h.write_str(unit_name);
    for f in &body.files {
        h.write_str("file");
        h.write_str(f);
    }
    let flags: &[String] = match &body.flags {
        Some(name) => &program.flags[name],
        None => &opts.default_flags,
    };
    for f in flags {
        h.write_str("flag");
        h.write_str(f);
    }
    for r in &body.renames {
        h.write_str("rename");
        h.write_str(&r.port);
        h.write_str(&r.member);
        h.write_str(&r.to);
    }
    h.finish()
}

/// Fingerprint of every build-relevant option. [`BuildOptions::jobs`] is
/// deliberately excluded: parallelism never changes the produced image, so
/// changing it must not invalidate anything.
fn fp_options(opts: &BuildOptions) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("opts");
    h.write_str(&opts.root);
    match &opts.entry {
        Some(e) => {
            h.write_str("entry");
            h.write_str(e);
        }
        None => h.write_str("noentry"),
    }
    h.write_str(if opts.check_constraints { "check" } else { "nocheck" });
    h.write_str(if opts.flatten { "flatten" } else { "noflatten" });
    for f in &opts.default_flags {
        h.write_str("flag");
        h.write_str(f);
    }
    for s in &opts.runtime_symbols {
        h.write_str("rt");
        h.write_str(s);
    }
    match &opts.profile {
        Some(p) => {
            h.write_str("profile");
            h.write_u64(p.stable_hash());
        }
        None => h.write_str("noprofile"),
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// the phase-split build
// ---------------------------------------------------------------------------

/// Run the eight-phase pipeline over `memo`, rerunning exactly the phases
/// whose fingerprints changed (and, for compiles, the units whose ledger
/// intersects `dirty`). With a fresh [`Memo`] this is precisely the old
/// monolithic `build_with_cache`; a [`BuildSession`] passes its persistent
/// memo to make rebuilds incremental.
pub(crate) fn run_build(
    program: &Program,
    tree: &SourceTree,
    opts: &BuildOptions,
    cache: &BuildCache,
    memo: &mut Memo,
    stats: &mut SessionStats,
    dirty: &BTreeSet<String>,
) -> Result<BuildReport, KnitError> {
    stats.builds += 1;
    let mut phases: Vec<(&'static str, Duration)> = Vec::new();
    let mut timer = Instant::now();
    macro_rules! phase {
        ($name:literal) => {{
            phases.push(($name, timer.elapsed()));
            timer = Instant::now();
        }};
    }

    if !program.units.contains_key(&opts.root) {
        return Err(KnitError::Unknown {
            kind: "unit",
            name: opts.root.clone(),
            context: "build root".to_string(),
        });
    }

    // Evict unit memos that consulted an edited path — including units not
    // reached by this build's root, which would otherwise go stale
    // silently and resurface if the root later changes back.
    if !dirty.is_empty() {
        memo.units.retain(|_, m| m.reads.is_disjoint(dirty));
    }

    // --- elaborate ---
    let el_fp = fp_elaborate(program, &opts.root);
    let el: Arc<Elaboration> = match &memo.elaborate {
        Some((fp, el)) if *fp == el_fp => {
            stats.elaborate.reuses += 1;
            Arc::clone(el)
        }
        _ => {
            stats.elaborate.runs += 1;
            let el = Arc::new(elaborate(program, &opts.root)?);
            memo.elaborate = Some((el_fp, Arc::clone(&el)));
            el
        }
    };
    phase!("elaborate");

    // --- constraints ---
    let c_fp = fp_constraints(program, el_fp, opts);
    let constraint_report = match &memo.constraints {
        Some((fp, rep)) if *fp == c_fp => {
            stats.constraints.reuses += 1;
            rep.clone()
        }
        _ => {
            let rep = if opts.check_constraints {
                stats.constraints.runs += 1;
                Some(constraints::check(program, &el)?)
            } else {
                None
            };
            memo.constraints = Some((c_fp, rep.clone()));
            rep
        }
    };
    phase!("constraints");

    // --- schedule ---
    let s_fp = fp_schedule(program, &el, el_fp);
    let schedule: Arc<Schedule> = match &memo.schedule {
        Some((fp, s)) if *fp == s_fp => {
            stats.schedule.reuses += 1;
            Arc::clone(s)
        }
        _ => {
            stats.schedule.runs += 1;
            let s = Arc::new(sched::schedule(program, &el)?);
            memo.schedule = Some((s_fp, Arc::clone(&s)));
            s
        }
    };
    phase!("schedule");

    // --- compile each distinct unit once (instances share the result) ---
    // A memoized unit is reused iff its declaration fingerprint matches
    // and none of the paths it read were edited (the ledger was pruned
    // above); everything else goes through the content-hash cache,
    // concurrently under `opts.jobs`.
    let distinct: Vec<String> = {
        let set: BTreeSet<&str> = el.instances.iter().map(|i| i.unit.as_str()).collect();
        set.into_iter().map(str::to_string).collect()
    };
    let mut decl_fps: BTreeMap<&str, u64> = BTreeMap::new();
    let mut to_compile: Vec<&str> = Vec::new();
    for name in &distinct {
        let decl_fp = fp_unit_decl(program, name, opts);
        let reusable = matches!(memo.units.get(name.as_str()), Some(m) if m.decl_fp == decl_fp);
        decl_fps.insert(name, decl_fp);
        if !reusable {
            to_compile.push(name);
        }
    }
    let compile_results = run_indexed(opts.jobs, to_compile.len(), |i| {
        let start = Instant::now();
        let r = compile_unit_cached(program, tree, to_compile[i], opts, cache);
        (r, start.elapsed())
    });
    let mut fresh = BTreeMap::new();
    for (name, (result, duration)) in to_compile.iter().zip(compile_results) {
        fresh.insert(*name, (result?, duration));
    }
    let mut compiled: BTreeMap<String, Arc<CompiledUnit>> = BTreeMap::new();
    let mut unit_keys: BTreeMap<String, u64> = BTreeMap::new();
    let mut unit_compiles: Vec<UnitCompile> = Vec::with_capacity(distinct.len());
    let (mut cache_hits, mut cache_misses, mut ledger_reuses) = (0usize, 0usize, 0usize);
    for name in &distinct {
        if let Some((ub, duration)) = fresh.remove(name.as_str()) {
            if ub.cache_hit {
                cache_hits += 1;
                stats.unit_compiles.reuses += 1;
            } else {
                cache_misses += 1;
                stats.unit_compiles.runs += 1;
            }
            unit_compiles.push(UnitCompile {
                unit: name.clone(),
                duration,
                cache_hit: ub.cache_hit,
            });
            compiled.insert(name.clone(), Arc::clone(&ub.cu));
            unit_keys.insert(name.clone(), ub.key);
            memo.units.insert(
                name.clone(),
                UnitMemo {
                    decl_fp: decl_fps[name.as_str()],
                    key: ub.key,
                    cu: ub.cu,
                    reads: ub.reads,
                },
            );
        } else {
            let m = &memo.units[name.as_str()];
            ledger_reuses += 1;
            stats.unit_compiles.reuses += 1;
            unit_compiles.push(UnitCompile {
                unit: name.clone(),
                duration: Duration::ZERO,
                cache_hit: true,
            });
            compiled.insert(name.clone(), Arc::clone(&m.cu));
            unit_keys.insert(name.clone(), m.key);
        }
    }
    phase!("compile");

    // --- per-instance symbol maps (always recomputed — cheap, and every
    //     later fingerprint hashes them) + objcopy rename/duplicate ---
    let mut maps: Vec<BTreeMap<String, String>> = Vec::with_capacity(el.instances.len());
    for inst in &el.instances {
        let map = instance_symbol_map(program, &el, inst.id, compiled[&inst.unit].as_ref())
            .map_err(|e| match program.unit_site(&inst.unit) {
                Some((file, span)) => {
                    let file = file.to_string();
                    e.at(&file, span)
                }
                None => e,
            })?;
        maps.push(map);
    }
    // Only instances with source translation units can be merged; units
    // built from pre-compiled objects stay on the objcopy path even when
    // inside a flatten group.
    let flattened: BTreeSet<usize> = if opts.flatten {
        el.flatten_groups
            .iter()
            .flatten()
            .copied()
            .filter(|&id| !compiled[&el.instances[id].unit].tus.is_empty())
            .collect()
    } else {
        BTreeSet::new()
    };
    let mut linked_objects: Vec<ObjectFile> = Vec::new();
    let mut objcopy_fps: Vec<(usize, u64)> = Vec::new();
    for inst in &el.instances {
        if flattened.contains(&inst.id) {
            continue;
        }
        let fp = {
            let mut h = StableHasher::new();
            h.write_str("objcopy");
            h.write_u64(unit_keys[&inst.unit]);
            h.write_str(&inst.path);
            for (k, v) in &maps[inst.id] {
                h.write_str(k);
                h.write_str(v);
            }
            h.finish()
        };
        match memo.objcopy.get(&inst.id) {
            Some((f, objs)) if *f == fp => {
                stats.objcopy.reuses += 1;
                linked_objects.extend(objs.iter().cloned());
            }
            _ => {
                stats.objcopy.runs += 1;
                let cu = &compiled[&inst.unit];
                let mut objs: Vec<ObjectFile> = Vec::with_capacity(cu.objects.len());
                for obj in &cu.objects {
                    let present: BTreeMap<String, String> = maps[inst.id]
                        .iter()
                        .filter(|(k, _)| {
                            obj.symbols.iter().any(|s| {
                                s.name == **k
                                    && !matches!(
                                        s.def,
                                        cobj::object::SymDef::Defined { local: true, .. }
                                    )
                            })
                        })
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    let mut renamed =
                        cobj::objcopy::rename_symbols(obj, &present).map_err(|e| {
                            KnitError::BadDeclaration {
                                unit: inst.unit.clone(),
                                what: format!("objcopy: {e}"),
                            }
                        })?;
                    renamed.name = format!("{}:{}", inst.path, obj.name);
                    objs.push(renamed);
                }
                linked_objects.extend(objs.iter().cloned());
                memo.objcopy.insert(inst.id, (fp, objs));
            }
        }
        objcopy_fps.push((inst.id, fp));
    }
    phase!("objcopy");

    // --- flatten groups (§6): source-merge + recompile, one job per group ---
    let mut n_groups = 0usize;
    let mut group_fps: Vec<(usize, u64)> = Vec::new();
    if opts.flatten {
        let copts = flatten_opts(opts);
        // Decide reuse per group (gathering inputs — which clones every
        // member's translation units — only for the misses), then recompile
        // the missed groups concurrently and splice everything back in
        // group order so link order never depends on cache warmth.
        let mut pending: Vec<(usize, Vec<flatten::FlattenInput>, BTreeSet<String>)> = Vec::new();
        let mut order: Vec<(usize, u64, Option<ObjectFile>)> = Vec::new();
        for (gi, group) in el.flatten_groups.iter().enumerate() {
            let group_set: BTreeSet<usize> =
                group.iter().copied().filter(|id| flattened.contains(id)).collect();
            if group_set.is_empty() {
                continue;
            }
            let external = group_externals(program, &el, &group_set, &schedule, &maps);
            let fp = {
                let mut h = StableHasher::new();
                h.write_str("flatten");
                for &id in &group_set {
                    h.write_u64(id as u64);
                    h.write_u64(unit_keys[&el.instances[id].unit]);
                    for (k, v) in &maps[id] {
                        h.write_str(k);
                        h.write_str(v);
                    }
                }
                for e in &external {
                    h.write_str("ext");
                    h.write_str(e);
                }
                for f in &opts.default_flags {
                    h.write_str("flag");
                    h.write_str(f);
                }
                h.finish()
            };
            group_fps.push((gi, fp));
            n_groups += 1;
            match memo.flatten.get(&gi) {
                Some((f, obj)) if *f == fp => {
                    stats.flatten.reuses += 1;
                    order.push((gi, fp, Some(obj.clone())));
                }
                _ => {
                    stats.flatten.runs += 1;
                    let mut inputs = Vec::new();
                    for &id in &group_set {
                        let inst = &el.instances[id];
                        let cu = &compiled[&inst.unit];
                        inputs.push(flatten::FlattenInput {
                            tag: format!("k{id}"),
                            tus: cu.tus.clone(),
                            symbol_map: maps[id].clone(),
                        });
                    }
                    order.push((gi, fp, None));
                    pending.push((gi, inputs, external));
                }
            }
        }
        let flat_results = run_indexed(opts.jobs, pending.len(), |i| {
            let (gi, inputs, external) = &pending[i];
            flatten::flatten_group(&format!("flat{gi}"), inputs, &copts, external)
                .map_err(KnitError::Compile)
        });
        let mut flat_iter = flat_results.into_iter();
        for (gi, fp, reused) in order {
            let obj = match reused {
                Some(obj) => obj,
                None => {
                    let mut obj = flat_iter.next().expect("one result per pending group")?;
                    obj.name = format!("flatten-group-{gi}.o");
                    memo.flatten.insert(gi, (fp, obj.clone()));
                    obj
                }
            };
            linked_objects.push(obj);
        }
    }
    phase!("flatten");

    // --- boot object ---
    let exports_map = root_exports_map(program, &el);
    let boot_fp = {
        let mut h = StableHasher::new();
        h.write_str("boot");
        for (inst, func) in &schedule.inits {
            h.write_str("init");
            h.write_str(maps[*inst].get(func).map_or(func.as_str(), String::as_str));
        }
        for (inst, func) in &schedule.finis {
            h.write_str("fini");
            h.write_str(maps[*inst].get(func).map_or(func.as_str(), String::as_str));
        }
        for (k, v) in &exports_map {
            h.write_str(k);
            h.write_str(v);
        }
        match &opts.entry {
            Some(e) => {
                h.write_str("entry");
                h.write_str(e);
            }
            None => h.write_str("noentry"),
        }
        h.finish()
    };
    let (boot, exports) = match &memo.boot {
        Some((fp, v)) if *fp == boot_fp => {
            stats.generate.reuses += 1;
            v.clone()
        }
        _ => {
            stats.generate.runs += 1;
            let v = boot_object(program, &el, &schedule, &maps, opts)?;
            memo.boot = Some((boot_fp, v.clone()));
            v
        }
    };
    phase!("generate");

    // --- final link ---
    let n_objects = linked_objects.len() + 1;
    let link_fp = {
        let mut h = StableHasher::new();
        h.write_str("link");
        h.write_u64(boot_fp);
        for (id, fp) in &objcopy_fps {
            h.write_u64(*id as u64);
            h.write_u64(*fp);
        }
        for (gi, fp) in &group_fps {
            h.write_str("g");
            h.write_u64(*gi as u64);
            h.write_u64(*fp);
        }
        for s in &opts.runtime_symbols {
            h.write_str("rt");
            h.write_str(s);
        }
        // The profile only affects placement, which only the linker
        // observes — hashing it here (and nowhere else) is what makes a
        // profile swap invalidate exactly the link phase.
        match &opts.profile {
            Some(p) => {
                h.write_str("profile");
                h.write_u64(p.stable_hash());
            }
            None => h.write_str("noprofile"),
        }
        h.finish()
    };
    let image = match &memo.link {
        Some((fp, img)) if *fp == link_fp => {
            stats.link.reuses += 1;
            img.clone()
        }
        _ => {
            stats.link.runs += 1;
            let mut inputs: Vec<LinkInput> = Vec::with_capacity(n_objects);
            inputs.push(LinkInput::Object(boot));
            for o in linked_objects {
                inputs.push(LinkInput::Object(o));
            }
            let layout = match &opts.profile {
                Some(p) => Layout::ProfileGuided(p.as_ref().clone()),
                None => Layout::InputOrder,
            };
            let image = cobj::link(
                &inputs,
                &LinkOptions {
                    entry: Some("__start".to_string()),
                    runtime_symbols: opts.runtime_symbols.clone(),
                    layout,
                },
            )?;
            memo.link = Some((link_fp, image.clone()));
            image
        }
    };
    phase!("link");
    let _ = timer;

    let build_stats = BuildStats {
        instances: el.instances.len(),
        units_compiled: cache_misses,
        units_reused: cache_hits + ledger_reuses,
        objects: n_objects,
        flatten_groups: n_groups,
        text_size: image.text_size,
        cache_hits,
        cache_misses,
    };
    let report = BuildReport {
        image,
        phases,
        schedule: schedule.describe(&el),
        constraints: constraint_report,
        exports,
        stats: build_stats,
        unit_compiles,
        jobs: opts.jobs.max(1),
        elaboration: el.as_ref().clone(),
    };
    memo.counts = Counts { units: distinct.len(), objcopy: objcopy_fps.len(), groups: n_groups };
    memo.report = Some(report.clone());
    Ok(report)
}

// ---------------------------------------------------------------------------
// the session
// ---------------------------------------------------------------------------

/// A persistent, incremental build handle.
///
/// A session owns the program, sources, options, compile cache, and the
/// memoized artifacts of its previous build. Feed edits in, call
/// [`BuildSession::build`], and exactly the invalidated work reruns:
///
/// ```
/// use knit::{BuildOptions, BuildSession};
///
/// let mut s = BuildSession::new(BuildOptions::root("App").jobs(1).build());
/// s.load_units("app.unit", r#"
///     bundletype Main = { main }
///     unit App = { exports [ main : Main ]; files { "app.c" }; }
/// "#).unwrap();
/// s.update_source("app.c", "int main() { return 41; }");
///
/// let cold = s.build().unwrap();
/// let warm = s.build().unwrap(); // nothing changed: fully memoized
/// assert_eq!(cold.image, warm.image);
/// assert_eq!(s.stats().full_reuse_builds, 1);
///
/// s.update_source("app.c", "int main() { return 42; }");
/// let incr = s.build().unwrap(); // exactly one recompile
/// assert_eq!(incr.stats.units_compiled, 1);
/// ```
///
/// **Invalidation granularity.** Editing a `.c`/`.h` file re-runs exactly
/// the compiles whose dependency ledger contains that path (plus their
/// instances' objcopy and the final link). Editing a `.unit` file via
/// [`BuildSession::update_unit`] re-runs a phase only when the part of the
/// declaration that phase actually reads changed — re-elaboration needs an
/// *interface* change (imports/exports/wiring/flatten), not a body or
/// comment edit. Changing options invalidates only the phases that observe
/// the changed field; [`BuildOptions::jobs`] invalidates nothing.
#[derive(Debug)]
pub struct BuildSession {
    program: Program,
    tree: SourceTree,
    opts: BuildOptions,
    cache: BuildCache,
    memo: Memo,
    stats: SessionStats,
    dirty: BTreeSet<String>,
    analysis_dirty: BTreeSet<String>,
    program_dirty: bool,
}

/// Short alias for [`BuildSession`], re-exported by [`crate::prelude`].
pub type Session = BuildSession;

impl BuildSession {
    /// An empty session building with `opts`. Register `.unit` sources
    /// with [`BuildSession::load_units`] and C sources with
    /// [`BuildSession::update_source`].
    pub fn new(opts: BuildOptions) -> BuildSession {
        BuildSession::from_parts(Program::new(), SourceTree::new(), opts)
    }

    /// A session over an existing program and source tree.
    pub fn from_parts(program: Program, tree: SourceTree, opts: BuildOptions) -> BuildSession {
        BuildSession {
            program,
            tree,
            opts,
            cache: BuildCache::new(),
            memo: Memo::default(),
            stats: SessionStats::default(),
            dirty: BTreeSet::new(),
            analysis_dirty: BTreeSet::new(),
            program_dirty: false,
        }
    }

    /// Use `cache` for compiles. [`BuildCache`] clones share storage, so
    /// sessions (and one-shot `build_with_cache` calls) can warm each
    /// other through a shared cache.
    #[must_use]
    pub fn with_cache(mut self, cache: BuildCache) -> BuildSession {
        self.cache = cache;
        self
    }

    /// Parse `src` (a `.unit` file) and register its declarations.
    /// Duplicate declarations are errors — use
    /// [`BuildSession::update_unit`] to *replace* a file's declarations.
    pub fn load_units(&mut self, file: &str, src: &str) -> Result<(), KnitError> {
        self.program.load_str(file, src)?;
        self.program_dirty = true;
        Ok(())
    }

    /// Re-parse `src` and redefine the declarations it contains
    /// (transactionally: on error the program is unchanged). The next
    /// build re-runs only the phases whose fingerprint actually changed —
    /// a comment or body-whitespace edit reruns nothing.
    pub fn update_unit(&mut self, file: &str, src: &str) -> Result<(), KnitError> {
        self.program.update_str(file, src)?;
        self.program_dirty = true;
        Ok(())
    }

    /// Add or replace one C source or header. A no-op when `text` matches
    /// the current contents; otherwise the next build recompiles exactly
    /// the units whose dependency ledger contains `path`.
    pub fn update_source(&mut self, path: &str, text: &str) {
        if self.tree.get(path) == Some(text) {
            return;
        }
        self.tree.add(path, text);
        self.dirty.insert(path.to_string());
        self.analysis_dirty.insert(path.to_string());
    }

    /// Replace the build options. Only phases that observe a changed field
    /// rerun; changing [`BuildOptions::jobs`] alone invalidates nothing.
    pub fn set_options(&mut self, opts: BuildOptions) {
        self.opts = opts;
    }

    /// Replace the layout profile ([`BuildOptions::profile`]). Placement
    /// is a link-time decision, so the next [`BuildSession::build`] reruns
    /// exactly the link phase — every compile, objcopy, and flatten
    /// artifact is reused.
    pub fn set_profile(&mut self, profile: Option<Arc<cobj::LayoutProfile>>) {
        self.opts.profile = profile;
    }

    /// The registered program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The session's source tree.
    pub fn tree(&self) -> &SourceTree {
        &self.tree
    }

    /// The current build options.
    pub fn options(&self) -> &BuildOptions {
        &self.opts
    }

    /// The session's compile cache.
    pub fn cache(&self) -> &BuildCache {
        &self.cache
    }

    /// Cumulative per-phase rerun/reuse counts.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Run the cross-unit lints (see [`crate::analyze`]) over the current
    /// program and sources.
    ///
    /// Analysis shares the session's memoized elaboration and schedule,
    /// and keeps its own per-unit summary memo: a summary is reused
    /// unless the unit's declaration fingerprint changed or one of the
    /// paths it read (sources and includes) was edited since the last
    /// `analyze` call — so a one-file edit re-summarizes exactly the
    /// units that read that file ([`SessionStats::analyze`] pins this).
    /// The graph-level lint passes themselves are recomputed every call;
    /// they are cheap relative to parsing.
    pub fn analyze(&mut self, config: &LintConfig) -> Result<AnalysisReport, KnitError> {
        if !self.program.units.contains_key(&self.opts.root) {
            return Err(KnitError::Unknown {
                kind: "unit",
                name: self.opts.root.clone(),
                context: "analysis root".to_string(),
            });
        }
        let dirty = std::mem::take(&mut self.analysis_dirty);
        if !dirty.is_empty() {
            self.memo.analysis.retain(|_, m| m.summary.reads.is_disjoint(&dirty));
        }
        let restore = |s: &mut Self, dirty: BTreeSet<String>, e: KnitError| {
            // keep the paths dirty so a later analyze (or the same one,
            // retried) still re-summarizes everything the edit touched
            s.analysis_dirty.extend(dirty);
            Err(e)
        };
        let el_fp = fp_elaborate(&self.program, &self.opts.root);
        let el: Arc<Elaboration> = match &self.memo.elaborate {
            Some((fp, el)) if *fp == el_fp => {
                self.stats.elaborate.reuses += 1;
                Arc::clone(el)
            }
            _ => {
                self.stats.elaborate.runs += 1;
                match elaborate(&self.program, &self.opts.root) {
                    Ok(el) => {
                        let el = Arc::new(el);
                        self.memo.elaborate = Some((el_fp, Arc::clone(&el)));
                        el
                    }
                    Err(e) => return restore(self, dirty, e),
                }
            }
        };
        let s_fp = fp_schedule(&self.program, &el, el_fp);
        let schedule: Arc<Schedule> = match &self.memo.schedule {
            Some((fp, s)) if *fp == s_fp => {
                self.stats.schedule.reuses += 1;
                Arc::clone(s)
            }
            _ => {
                self.stats.schedule.runs += 1;
                match sched::schedule(&self.program, &el) {
                    Ok(s) => {
                        let s = Arc::new(s);
                        self.memo.schedule = Some((s_fp, Arc::clone(&s)));
                        s
                    }
                    Err(e) => return restore(self, dirty, e),
                }
            }
        };
        match analyze::run_analysis(
            &self.program,
            &self.tree,
            &self.opts,
            config,
            &el,
            &schedule,
            &mut self.memo.analysis,
            &mut self.stats.analyze,
        ) {
            Ok(report) => Ok(report),
            Err(e) => restore(self, dirty, e),
        }
    }

    /// Build (or incrementally rebuild) the image.
    ///
    /// When nothing changed since the last successful build, the previous
    /// [`BuildReport`] is returned directly (with timings zeroed and the
    /// reuse stats updated) without touching any pipeline phase.
    pub fn build(&mut self) -> Result<BuildReport, KnitError> {
        let opts_fp = fp_options(&self.opts);
        if !self.program_dirty && self.dirty.is_empty() && self.memo.opts_fp == Some(opts_fp) {
            if let Some(report) = &self.memo.report {
                self.stats.builds += 1;
                self.stats.full_reuse_builds += 1;
                self.stats.elaborate.reuses += 1;
                self.stats.constraints.reuses += 1;
                self.stats.schedule.reuses += 1;
                self.stats.unit_compiles.reuses += self.memo.counts.units;
                self.stats.objcopy.reuses += self.memo.counts.objcopy;
                self.stats.flatten.reuses += self.memo.counts.groups;
                self.stats.generate.reuses += 1;
                self.stats.link.reuses += 1;
                let mut r = report.clone();
                for p in &mut r.phases {
                    p.1 = Duration::ZERO;
                }
                for uc in &mut r.unit_compiles {
                    uc.cache_hit = true;
                    uc.duration = Duration::ZERO;
                }
                r.stats.cache_hits = 0;
                r.stats.cache_misses = 0;
                r.stats.units_compiled = 0;
                r.stats.units_reused = self.memo.counts.units;
                r.jobs = self.opts.jobs.max(1);
                return Ok(r);
            }
        }
        let dirty = std::mem::take(&mut self.dirty);
        let result = run_build(
            &self.program,
            &self.tree,
            &self.opts,
            &self.cache,
            &mut self.memo,
            &mut self.stats,
            &dirty,
        );
        match &result {
            Ok(_) => {
                self.program_dirty = false;
                self.memo.opts_fp = Some(opts_fp);
            }
            Err(_) => {
                // Keep the paths dirty: the failed build may have evicted
                // nothing, and the fast path must stay blocked until a
                // build actually succeeds.
                self.dirty = dirty;
            }
        }
        result
    }

    /// Every source-tree path the last build's compiles consulted — the
    /// union of the per-unit dependency ledgers, *including misses* (a
    /// header probed but absent is still watched, so creating it triggers
    /// a rebuild). This is what a file watcher should poll instead of the
    /// whole source tree; `knitc --watch` does exactly that.
    pub fn watched_paths(&self) -> Vec<String> {
        let mut all = BTreeSet::new();
        for memo in self.memo.units.values() {
            all.extend(memo.reads.iter().cloned());
        }
        all.into_iter().collect()
    }
}

// ---------------------------------------------------------------------------
// the thread-safe session facade
// ---------------------------------------------------------------------------

/// A cloneable, thread-safe handle to a [`BuildSession`] — the blessed
/// entry point for everything that outlives one function call: the
/// `knitc serve` daemon hands these out
/// ([`Server::open_session`](crate::server::Engine::open_session)), and
/// standalone tools hold one instead of a bare session when more than one
/// thread is involved.
///
/// Clones share the same underlying session (state edits through one are
/// visible through all). All methods serialize on the session's own lock,
/// so two handles to *different* sessions build in parallel while two
/// handles to the *same* session queue up — and a shared [`BuildCache`]
/// (see [`BuildSession::with_cache`]) dedupes identical unit compiles
/// across sessions either way.
///
/// Lock order (for code holding more than one lock): server session
/// registry → session handle → `BuildCache` shard (a leaf; never held
/// across a callback).
///
/// ```
/// use knit::{BuildOptions, SessionHandle};
///
/// let h = SessionHandle::new(BuildOptions::root("App").jobs(1).build());
/// h.load_units("app.unit", r#"
///     bundletype Main = { main }
///     unit App = { exports [ main : Main ]; files { "app.c" }; }
/// "#).unwrap();
/// h.update_source("app.c", "int main() { return 7; }");
/// let clone = h.clone();
/// let report = std::thread::spawn(move || clone.build().unwrap()).join().unwrap();
/// assert_eq!(report.stats.units_compiled, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SessionHandle {
    inner: Arc<std::sync::Mutex<BuildSession>>,
}

impl SessionHandle {
    /// A handle to a fresh empty session building with `opts`.
    pub fn new(opts: BuildOptions) -> SessionHandle {
        SessionHandle::from_session(BuildSession::new(opts))
    }

    /// Wrap an existing session (e.g. one pre-loaded with units).
    pub fn from_session(session: BuildSession) -> SessionHandle {
        SessionHandle { inner: Arc::new(std::sync::Mutex::new(session)) }
    }

    /// Run `f` with the locked session. The one primitive everything else
    /// is sugar for; use it for multi-step edits that must be atomic with
    /// respect to other handles (e.g. edit two sources, then build,
    /// without another client's build landing in between).
    pub fn with<R>(&self, f: impl FnOnce(&mut BuildSession) -> R) -> R {
        // A panic mid-build poisons the lock but leaves the session
        // consistent: the memo only ever holds completed artifacts, and
        // `dirty` is restored on the error paths. Keep serving.
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// [`BuildSession::load_units`] under the lock.
    pub fn load_units(&self, file: &str, src: &str) -> Result<(), KnitError> {
        self.with(|s| s.load_units(file, src))
    }

    /// [`BuildSession::update_unit`] under the lock.
    pub fn update_unit(&self, file: &str, src: &str) -> Result<(), KnitError> {
        self.with(|s| s.update_unit(file, src))
    }

    /// [`BuildSession::update_source`] under the lock.
    pub fn update_source(&self, path: &str, text: &str) {
        self.with(|s| s.update_source(path, text))
    }

    /// [`BuildSession::set_options`] under the lock.
    pub fn set_options(&self, opts: BuildOptions) {
        self.with(|s| s.set_options(opts))
    }

    /// [`BuildSession::set_profile`] under the lock.
    pub fn set_profile(&self, profile: Option<Arc<cobj::LayoutProfile>>) {
        self.with(|s| s.set_profile(profile))
    }

    /// [`BuildSession::build`] under the lock — held for the whole build,
    /// so concurrent builds of the *same* session serialize (and the
    /// second one usually returns the memoized report).
    pub fn build(&self) -> Result<BuildReport, KnitError> {
        self.with(|s| s.build())
    }

    /// [`BuildSession::analyze`] under the lock.
    pub fn analyze(&self, config: &LintConfig) -> Result<AnalysisReport, KnitError> {
        self.with(|s| s.analyze(config))
    }

    /// [`BuildSession::stats`], cloned out from under the lock.
    pub fn stats(&self) -> SessionStats {
        self.with(|s| s.stats().clone())
    }

    /// [`BuildSession::watched_paths`] under the lock.
    pub fn watched_paths(&self) -> Vec<String> {
        self.with(|s| s.watched_paths())
    }
}
