//! Profile-guided flatten advisor.
//!
//! Knit's `flatten` declaration (§6 of the paper) merges the C sources of a
//! subtree of instances into one translation unit so the C compiler can
//! inline across component boundaries. Choosing *where* to flatten is a
//! performance judgement call; this module automates it from measurement:
//! run an instrumented build ([`machine::Machine::set_profiling`]), collect
//! a [`Profile`], and [`suggest`] ranks the hot cross-instance direct-call
//! edges that are not already inside a flatten group and clusters them into
//! concrete flatten suggestions.
//!
//! The mapping from profile edges (link-level symbol names) back to
//! instances relies on the driver's mangling scheme
//! ([`crate::driver::mangle_export`] / [`crate::driver::mangle_private`]),
//! which embeds the instance id as a `_i<N>` / `_p<N>` suffix. Symbols that
//! carry no such suffix (runtime glue like `__start`, externals) are
//! ignored.

use std::collections::{BTreeMap, BTreeSet};

use machine::Profile;

use crate::driver::BuildReport;

/// A profiled call edge between two distinct instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotEdge {
    /// Mangled symbol name of the calling function.
    pub caller_symbol: String,
    /// Mangled symbol name of the called function.
    pub callee_symbol: String,
    /// Instance id of the caller (index into `elaboration.instances`).
    pub caller_inst: usize,
    /// Instance id of the callee.
    pub callee_inst: usize,
    /// Dynamic call count from the profile.
    pub count: u64,
    /// Whether the calls were made through a function pointer.
    pub indirect: bool,
}

/// A cluster of instances worth flattening together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlattenSuggestion {
    /// Member instance ids, sorted.
    pub instances: Vec<usize>,
    /// Hierarchical paths of the members, in instance-id order.
    pub paths: Vec<String>,
    /// Distinct unit names of the members.
    pub units: BTreeSet<String>,
    /// Total dynamic direct calls between members.
    pub total_calls: u64,
}

/// The advisor's output: ranked edges plus clustered suggestions.
#[derive(Debug, Clone, Default)]
pub struct PgoReport {
    /// Root unit name the profiled build was elaborated from.
    pub root: String,
    /// Cross-instance edges, hottest first. Includes indirect edges
    /// (flagged) for visibility; suggestions are built from direct edges
    /// only, since flattening helps the compiler inline direct calls.
    pub hot_edges: Vec<HotEdge>,
    /// Suggested flatten groups, by descending total call count.
    pub suggestions: Vec<FlattenSuggestion>,
}

/// Parse the instance id out of a mangled symbol name, if it has one.
///
/// Recognises the driver's `..._<port>_i<N>` (exports) and `..._p<N>`
/// (instance-private globals) suffixes.
pub fn instance_of_symbol(name: &str) -> Option<usize> {
    let idx = name.rfind(['i', 'p'])?;
    if idx == 0 || name.as_bytes()[idx - 1] != b'_' {
        return None;
    }
    let digits = &name[idx + 1..];
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Rank hot cross-instance edges and cluster them into flatten suggestions.
///
/// Edges whose endpoints are already inside the same elaborated flatten
/// group are skipped — that boundary has already been erased. Instance ids
/// parsed from symbols are validated against the elaboration; a stale
/// profile (from a different configuration) therefore degrades to an empty
/// report rather than nonsense.
pub fn suggest(report: &BuildReport, profile: &Profile) -> PgoReport {
    let el = &report.elaboration;
    let n = el.instances.len();

    // Which flatten group, if any, each instance already belongs to.
    let mut group_of: Vec<Option<usize>> = vec![None; n];
    for (gi, group) in el.flatten_groups.iter().enumerate() {
        for &id in group {
            group_of[id] = Some(gi);
        }
    }

    // Aggregate profile edges per (caller_inst, callee_inst, indirect),
    // remembering the hottest concrete symbol pair as the exemplar.
    struct Agg {
        count: u64,
        best: u64,
        caller_symbol: String,
        callee_symbol: String,
    }
    let mut aggregated: BTreeMap<(usize, usize, bool), Agg> = BTreeMap::new();
    for e in &profile.edges {
        let (Some(ci), Some(ce)) = (instance_of_symbol(&e.caller), instance_of_symbol(&e.callee))
        else {
            continue;
        };
        if ci == ce || ci >= n || ce >= n || e.count == 0 {
            continue;
        }
        if group_of[ci].is_some() && group_of[ci] == group_of[ce] {
            continue;
        }
        let agg = aggregated.entry((ci, ce, e.indirect)).or_insert_with(|| Agg {
            count: 0,
            best: 0,
            caller_symbol: e.caller.clone(),
            callee_symbol: e.callee.clone(),
        });
        agg.count += e.count;
        if e.count > agg.best {
            agg.best = e.count;
            agg.caller_symbol = e.caller.clone();
            agg.callee_symbol = e.callee.clone();
        }
    }

    let mut hot_edges: Vec<HotEdge> = aggregated
        .into_iter()
        .map(|((ci, ce, indirect), agg)| HotEdge {
            caller_symbol: agg.caller_symbol,
            callee_symbol: agg.callee_symbol,
            caller_inst: ci,
            callee_inst: ce,
            count: agg.count,
            indirect,
        })
        .collect();
    // Hottest first; stable tie-break on (caller, callee) from the BTreeMap
    // order the collect preserved.
    hot_edges.sort_by(|a, b| b.count.cmp(&a.count).then(a.caller_inst.cmp(&b.caller_inst)));

    // Union-find over direct edges → suggested clusters.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    for e in hot_edges.iter().filter(|e| !e.indirect) {
        let (ra, rb) = (find(&mut parent, e.caller_inst), find(&mut parent, e.callee_inst));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi] = lo;
        }
    }

    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut calls: BTreeMap<usize, u64> = BTreeMap::new();
    for e in hot_edges.iter().filter(|e| !e.indirect) {
        let r = find(&mut parent, e.caller_inst);
        *calls.entry(r).or_default() += e.count;
    }
    for id in 0..n {
        let r = find(&mut parent, id);
        if calls.contains_key(&r) {
            members.entry(r).or_default().push(id);
        }
    }
    let mut suggestions: Vec<FlattenSuggestion> = members
        .into_iter()
        .filter(|(_, m)| m.len() > 1)
        .map(|(r, m)| FlattenSuggestion {
            paths: m.iter().map(|&id| el.instances[id].path.clone()).collect(),
            units: m.iter().map(|&id| el.instances[id].unit.clone()).collect(),
            total_calls: calls[&r],
            instances: m,
        })
        .collect();
    suggestions
        .sort_by(|a, b| b.total_calls.cmp(&a.total_calls).then(a.instances.cmp(&b.instances)));

    PgoReport { root: el.root.clone(), hot_edges, suggestions }
}

impl PgoReport {
    /// True when the advisor found nothing actionable.
    pub fn is_empty(&self) -> bool {
        self.hot_edges.is_empty() && self.suggestions.is_empty()
    }

    /// Render the report in the same human-readable style as `knitc lint`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pgo: root `{}`: {} hot cross-instance edge(s), {} flatten suggestion(s)",
            self.root,
            self.hot_edges.len(),
            self.suggestions.len()
        );
        if self.hot_edges.is_empty() {
            let _ =
                writeln!(out, "  (no cross-instance calls in the profile — nothing to suggest)");
            return out;
        }
        let _ = writeln!(out, "\nhot cross-instance edges (by dynamic call count):");
        for e in &self.hot_edges {
            let kind = if e.indirect { "indirect" } else { "direct" };
            let _ = writeln!(
                out,
                "  {:>10}  {} -> {}  [{kind}]",
                e.count, e.caller_symbol, e.callee_symbol
            );
        }
        for (i, s) in self.suggestions.iter().enumerate() {
            let units: Vec<&str> = s.units.iter().map(String::as_str).collect();
            let _ = writeln!(
                out,
                "\nsuggestion #{}: flatten {} instances ({} direct calls between them)",
                i + 1,
                s.instances.len(),
                s.total_calls
            );
            let _ = writeln!(out, "  units: {}", units.join(", "));
            for p in &s.paths {
                let _ = writeln!(out, "    {p}");
            }
            let _ = writeln!(
                out,
                "  → mark the smallest compound unit containing these instances\n    with `flatten;` (or wrap them in one) and rebuild"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{build, mangle_export, BuildOptions};
    use crate::model::Program;
    use crate::vfs::SourceTree;
    use machine::profile::CallEdge;

    #[test]
    fn parses_instance_ids_from_mangled_names() {
        assert_eq!(instance_of_symbol("push_out_i3"), Some(3));
        assert_eq!(instance_of_symbol("state_p12"), Some(12));
        assert_eq!(instance_of_symbol(&mangle_export(7, "out", "push")), Some(7));
        assert_eq!(instance_of_symbol("__start"), None);
        assert_eq!(instance_of_symbol("main"), None);
        assert_eq!(instance_of_symbol("f_i"), None);
        assert_eq!(instance_of_symbol("f_ix9"), None);
        assert_eq!(instance_of_symbol("i9"), None);
    }

    fn pipeline_report(flatten_inner: bool) -> BuildReport {
        let flatten = if flatten_inner { "flatten;" } else { "" };
        let src = format!(
            r#"
            bundletype Main = {{ main }}
            bundletype T = {{ f }}
            unit Leaf = {{ exports [ out : T ]; files {{ "leaf.c" }}; }}
            unit Mid = {{
                imports [ in : T ];
                exports [ out : T ];
                files {{ "mid.c" }};
                rename {{ in.f to in_f; }};
            }}
            unit App = {{
                imports [ in : T ];
                exports [ main : Main ];
                files {{ "app.c" }};
                rename {{ in.f to in_f; }};
            }}
            unit Pipe = {{
                exports [ main : Main ];
                link {{
                    l : Leaf;
                    m : Mid [in = l.out];
                    a : App [in = m.out];
                    main = a.main;
                }};
                {flatten}
            }}
        "#
        );
        let mut program = Program::new();
        program.load_str("pipe.unit", &src).unwrap();
        let mut tree = SourceTree::new();
        tree.add("leaf.c", "int f() { return 1; }");
        tree.add("mid.c", "int f() { return in_f() + 1; } int in_f();");
        tree.add("app.c", "int main() { return in_f(); } int in_f();");
        build(&program, &tree, &BuildOptions::root("Pipe").jobs(1).build()).unwrap()
    }

    fn edge(caller: &str, callee: &str, count: u64) -> CallEdge {
        CallEdge { caller: caller.into(), callee: callee.into(), indirect: false, count }
    }

    #[test]
    fn suggests_flattening_a_hot_pipeline() {
        let report = pipeline_report(false);
        // Instance ids follow link-block order: l=0, m=1, a=2.
        let profile = Profile {
            edges: vec![
                edge("main_main_i2", "f_out_i1", 900),
                edge("f_out_i1", "f_out_i0", 900),
                edge("main_main_i2", "__halt", 1),
            ],
            funcs: vec![],
        };
        let pgo = suggest(&report, &profile);
        assert_eq!(pgo.hot_edges.len(), 2, "{pgo:?}");
        assert_eq!(pgo.suggestions.len(), 1, "{pgo:?}");
        let s = &pgo.suggestions[0];
        assert_eq!(s.instances, vec![0, 1, 2]);
        assert_eq!(s.total_calls, 1800);
        assert!(s.units.contains("Mid"));
        let text = pgo.render();
        assert!(text.contains("flatten"), "{text}");
        assert!(text.contains("f_out_i1"), "{text}");
    }

    #[test]
    fn edges_inside_an_existing_flatten_group_are_skipped() {
        let report = pipeline_report(true);
        let profile = Profile { edges: vec![edge("main_main_i2", "f_out_i1", 900)], funcs: vec![] };
        let pgo = suggest(&report, &profile);
        assert!(pgo.is_empty(), "{pgo:?}");
    }

    #[test]
    fn stale_profiles_degrade_to_empty() {
        let report = pipeline_report(false);
        let profile = Profile {
            edges: vec![edge("x_out_i40", "y_out_i41", 5), edge("a", "b", 5)],
            funcs: vec![],
        };
        assert!(suggest(&report, &profile).is_empty());
    }
}
