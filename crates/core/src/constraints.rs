//! Architectural constraint checking (§4 of the paper).
//!
//! Programmers declare *properties* with partially-ordered values:
//!
//! ```text
//! property context
//! type NoContext
//! type ProcessContext < NoContext
//! ```
//!
//! and annotate unit ports: `context(pthread_lock) = NoContext;`,
//! `context(exports) <= context(imports);`. The checker assigns one
//! variable per wired export port (imports share their provider's
//! variable — that is what linking *means*), derives bounds from every
//! instantiated unit's annotations, propagates them across the linking
//! graph to a fixpoint, and reports violations with the two blame
//! annotations that conflict. This is how the paper caught "code executing
//! without a process context \[calling\] code that requires a process
//! context" in existing OSKit kernels.

use std::collections::BTreeMap;

use knit_lang::ast::{COp, CTarget, CTerm, Constraint, UnitDecl};
use knit_lang::token::Span;

use crate::elaborate::{Elaboration, Wire};
use crate::error::KnitError;
use crate::model::{Poset, Program};

/// A blame location: the `.unit` file and position of an annotation.
type Site = Option<(String, Span)>;

/// Attach a site to an error, when one is known.
fn at_site(e: KnitError, site: &Site) -> KnitError {
    match site {
        Some((f, s)) => e.at(f, *s),
        None => e,
    }
}

/// Result of a successful check, with the statistics the paper reports in
/// §5.1 (units annotated, constraints checked).
#[derive(Debug, Clone, Default)]
pub struct ConstraintReport {
    /// Number of constraint variables (wired ports + externals).
    pub vars: usize,
    /// Total constraints checked (after per-instance expansion).
    pub constraints: usize,
    /// Number of distinct units carrying at least one constraint.
    pub annotated_units: usize,
    /// Of those, how many carry only pure propagation constraints
    /// (`prop(exports) <= prop(imports)`) — the paper found 70% of
    /// annotated units needed only this form.
    pub propagation_only_units: usize,
    /// Fixpoint iterations used.
    pub iterations: usize,
}

/// A constraint variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Var {
    /// An atomic instance's export port.
    Port(usize, u32),
    /// A root import (external world), by index.
    External(u32),
}

/// A side of a normalized constraint.
#[derive(Debug, Clone)]
enum Term {
    Var(Var),
    Const(String),
}

struct NConstraint {
    prop: String,
    lhs: Term,
    op: COp,
    rhs: Term,
    provenance: String,
    /// Where the source constraint was written.
    site: Site,
}

/// Check all constraints in the elaborated program.
pub fn check(program: &Program, el: &Elaboration) -> Result<ConstraintReport, KnitError> {
    let mut cx = Checker {
        program,
        el,
        port_ids: BTreeMap::new(),
        ext_ids: BTreeMap::new(),
        constraints: Vec::new(),
    };
    cx.collect()?;
    cx.solve()
}

struct Checker<'a> {
    program: &'a Program,
    el: &'a Elaboration,
    /// (instance, export port) -> dense id
    port_ids: BTreeMap<(usize, String), u32>,
    /// root import name -> dense id
    ext_ids: BTreeMap<String, u32>,
    constraints: Vec<NConstraint>,
}

impl<'a> Checker<'a> {
    fn port_var(&mut self, inst: usize, port: &str) -> Var {
        let next = self.port_ids.len() as u32;
        let id = *self.port_ids.entry((inst, port.to_string())).or_insert(next);
        Var::Port(inst, id)
    }

    fn ext_var(&mut self, name: &str) -> Var {
        let next = self.ext_ids.len() as u32;
        let id = *self.ext_ids.entry(name.to_string()).or_insert(next);
        Var::External(id)
    }

    fn wire_var(&mut self, wire: &Wire) -> Var {
        match wire {
            Wire::Export { instance, port } => self.port_var(*instance, port),
            Wire::External { port } => self.ext_var(port),
        }
    }

    /// Resolve a constraint target within a node to a list of variables.
    fn resolve_target(
        &mut self,
        node: usize,
        unit: &UnitDecl,
        target: &CTarget,
    ) -> Result<Vec<Var>, KnitError> {
        let node_info = &self.el.nodes[node].clone();
        match target {
            CTarget::Imports => Ok(node_info
                .imports
                .values()
                .cloned()
                .collect::<Vec<_>>()
                .iter()
                .map(|w| self.wire_var(w))
                .collect()),
            CTarget::Exports => Ok(node_info
                .exports
                .values()
                .cloned()
                .collect::<Vec<_>>()
                .iter()
                .map(|(i, p)| self.port_var(*i, p))
                .collect()),
            CTarget::Name(n) => {
                // a port name?
                if let Some(w) = node_info.imports.get(n) {
                    let w = w.clone();
                    return Ok(vec![self.wire_var(&w)]);
                }
                if let Some((i, p)) = node_info.exports.get(n) {
                    let (i, p) = (*i, p.clone());
                    return Ok(vec![self.port_var(i, &p)]);
                }
                // a member of exactly one port's bundle type?
                let mut hits: Vec<Var> = Vec::new();
                for p in &unit.imports {
                    if self.program.bundletypes[&p.bundle_type].iter().any(|m| m == n) {
                        let w = node_info.imports[&p.name].clone();
                        hits.push(self.wire_var(&w));
                    }
                }
                for p in &unit.exports {
                    if self.program.bundletypes[&p.bundle_type].iter().any(|m| m == n) {
                        let (i, q) = node_info.exports[&p.name].clone();
                        hits.push(self.port_var(i, &q));
                    }
                }
                match hits.len() {
                    1 => Ok(hits),
                    0 => Err(KnitError::Unknown {
                        kind: "constraint target",
                        name: n.clone(),
                        context: format!("unit `{}` at `{}`", unit.name, node_info.path),
                    }),
                    _ => Err(KnitError::BadDeclaration {
                        unit: unit.name.clone(),
                        what: format!(
                            "constraint target `{n}` is ambiguous (matches several ports); name the port instead"
                        ),
                    }),
                }
            }
        }
    }

    fn resolve_term(
        &mut self,
        node: usize,
        unit: &UnitDecl,
        term: &CTerm,
    ) -> Result<(Option<String>, Vec<Term>), KnitError> {
        match term {
            CTerm::Value(v) => {
                let prop = self.program.value_property.get(v).cloned().ok_or_else(|| {
                    KnitError::Unknown {
                        kind: "property value",
                        name: v.clone(),
                        context: format!("constraint in unit `{}`", unit.name),
                    }
                })?;
                Ok((Some(prop), vec![Term::Const(v.clone())]))
            }
            CTerm::Prop { prop, target } => {
                if !self.program.properties.contains_key(prop) {
                    return Err(KnitError::Unknown {
                        kind: "property",
                        name: prop.clone(),
                        context: format!("constraint in unit `{}`", unit.name),
                    });
                }
                let vars = self.resolve_target(node, unit, target)?;
                Ok((Some(prop.clone()), vars.into_iter().map(Term::Var).collect()))
            }
        }
    }

    fn collect(&mut self) -> Result<(), KnitError> {
        for node in 0..self.el.nodes.len() {
            let unit_name = self.el.nodes[node].unit.clone();
            let unit = self.program.units[&unit_name].clone();
            for c in &unit.constraints {
                let (lp, lhs_terms) = self.resolve_term(node, &unit, &c.lhs)?;
                let (rp, rhs_terms) = self.resolve_term(node, &unit, &c.rhs)?;
                let prop = match (lp, rp) {
                    (Some(a), Some(b)) if a == b => a,
                    (Some(a), Some(b)) => {
                        return Err(KnitError::BadDeclaration {
                            unit: unit.name.clone(),
                            what: format!("constraint mixes properties `{a}` and `{b}`"),
                        })
                    }
                    (Some(a), None) | (None, Some(a)) => a,
                    (None, None) => {
                        return Err(KnitError::BadDeclaration {
                            unit: unit.name.clone(),
                            what: "constraint has no property".into(),
                        })
                    }
                };
                let provenance = format!(
                    "unit `{}` at `{}`: {}",
                    unit.name,
                    self.el.nodes[node].path,
                    describe(c)
                );
                let site: Site =
                    self.program.unit_site(&unit_name).map(|(f, _)| (f.to_string(), c.span));
                // cross product (aggregate targets expand)
                for l in &lhs_terms {
                    for r in &rhs_terms {
                        self.constraints.push(NConstraint {
                            prop: prop.clone(),
                            lhs: l.clone(),
                            op: c.op,
                            rhs: r.clone(),
                            provenance: provenance.clone(),
                            site: site.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn solve(&mut self) -> Result<ConstraintReport, KnitError> {
        // bounds per (property, var): (value, provenance, blame site)
        type Bound = Option<(String, String, Site)>;
        let mut ub: BTreeMap<(String, Var), Bound> = BTreeMap::new();
        let mut lb: BTreeMap<(String, Var), Bound> = BTreeMap::new();

        let tighten_ub = |poset: &Poset,
                          slot: &mut Bound,
                          value: &str,
                          why: &str,
                          site: &Site,
                          prop: &str|
         -> Result<bool, KnitError> {
            match slot {
                None => {
                    *slot = Some((value.to_string(), why.to_string(), site.clone()));
                    Ok(true)
                }
                Some((cur, _, _)) => {
                    let m = poset.meet(cur, value).ok_or_else(|| {
                        at_site(
                            KnitError::NoMeet {
                                property: prop.to_string(),
                                a: cur.clone(),
                                b: value.to_string(),
                                context: why.to_string(),
                            },
                            site,
                        )
                    })?;
                    if m != *cur {
                        *slot = Some((m, why.to_string(), site.clone()));
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                }
            }
        };
        let raise_lb = |poset: &Poset,
                        slot: &mut Bound,
                        value: &str,
                        why: &str,
                        site: &Site,
                        prop: &str|
         -> Result<bool, KnitError> {
            match slot {
                None => {
                    *slot = Some((value.to_string(), why.to_string(), site.clone()));
                    Ok(true)
                }
                Some((cur, _, _)) => {
                    let j = poset.join(cur, value).ok_or_else(|| {
                        at_site(
                            KnitError::NoMeet {
                                property: prop.to_string(),
                                a: cur.clone(),
                                b: value.to_string(),
                                context: why.to_string(),
                            },
                            site,
                        )
                    })?;
                    if j != *cur {
                        *slot = Some((j, why.to_string(), site.clone()));
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                }
            }
        };

        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let mut changed = false;
            for c in &self.constraints {
                let poset = &self.program.properties[&c.prop];
                // Eq expands to both directions of Le.
                let dirs: &[(&Term, &Term)] = match c.op {
                    COp::Le => &[(&c.lhs, &c.rhs)],
                    COp::Eq => &[(&c.lhs, &c.rhs), (&c.rhs, &c.lhs)],
                };
                for (lo, hi) in dirs {
                    match (lo, hi) {
                        (Term::Const(a), Term::Const(b)) => {
                            if !poset.leq(a, b) {
                                return Err(at_site(
                                    KnitError::ConstraintViolation {
                                        property: c.prop.clone(),
                                        explanation: format!(
                                            "`{a}` <= `{b}` does not hold ({})",
                                            c.provenance
                                        ),
                                    },
                                    &c.site,
                                ));
                            }
                        }
                        (Term::Var(v), Term::Const(b)) => {
                            let slot = ub.entry((c.prop.clone(), *v)).or_default();
                            changed |= tighten_ub(poset, slot, b, &c.provenance, &c.site, &c.prop)?;
                        }
                        (Term::Const(a), Term::Var(v)) => {
                            let slot = lb.entry((c.prop.clone(), *v)).or_default();
                            changed |= raise_lb(poset, slot, a, &c.provenance, &c.site, &c.prop)?;
                        }
                        (Term::Var(a), Term::Var(b)) => {
                            // a <= b: a inherits b's upper bound; b inherits
                            // a's lower bound. The blame site stays with the
                            // originating annotation, not the propagation
                            // edge.
                            if let Some(Some((bv, bw, bs))) = ub.get(&(c.prop.clone(), *b)).cloned()
                            {
                                let why = format!("{} (via {})", bw, c.provenance);
                                let slot = ub.entry((c.prop.clone(), *a)).or_default();
                                changed |= tighten_ub(poset, slot, &bv, &why, &bs, &c.prop)?;
                            }
                            if let Some(Some((av, aw, asite))) =
                                lb.get(&(c.prop.clone(), *a)).cloned()
                            {
                                let why = format!("{} (via {})", aw, c.provenance);
                                let slot = lb.entry((c.prop.clone(), *b)).or_default();
                                changed |= raise_lb(poset, slot, &av, &why, &asite, &c.prop)?;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
            if iterations > 10_000 {
                return Err(KnitError::BadDeclaration {
                    unit: "<constraints>".into(),
                    what: "constraint solving did not converge".into(),
                });
            }
        }

        // final check: lower bound must sit below upper bound
        for ((prop, var), bound) in &lb {
            if let Some((lv, lw, ls)) = bound {
                if let Some(Some((uv, uw, _))) = ub.get(&(prop.clone(), *var)) {
                    let poset = &self.program.properties[prop];
                    if !poset.leq(lv, uv) {
                        return Err(at_site(
                            KnitError::ConstraintViolation {
                                property: prop.clone(),
                                explanation: format!(
                                    "requires at least `{lv}` ({lw}) but at most `{uv}` ({uw})"
                                ),
                            },
                            ls,
                        ));
                    }
                }
            }
        }

        // stats
        let mut annotated = std::collections::BTreeSet::new();
        let mut prop_only = std::collections::BTreeSet::new();
        for (name, u) in &self.program.units {
            if !u.constraints.is_empty() {
                annotated.insert(name.clone());
                let pure = u.constraints.iter().all(|c| {
                    matches!(
                        (&c.lhs, &c.rhs, c.op),
                        (
                            CTerm::Prop { target: CTarget::Exports, .. },
                            CTerm::Prop { target: CTarget::Imports, .. },
                            COp::Le
                        )
                    )
                });
                if pure {
                    prop_only.insert(name.clone());
                }
            }
        }

        Ok(ConstraintReport {
            vars: self.port_ids.len() + self.ext_ids.len(),
            constraints: self.constraints.len(),
            annotated_units: annotated.len(),
            propagation_only_units: prop_only.len(),
            iterations,
        })
    }
}

fn describe(c: &Constraint) -> String {
    let term = |t: &CTerm| match t {
        CTerm::Value(v) => v.clone(),
        CTerm::Prop { prop, target } => {
            let tn = match target {
                CTarget::Imports => "imports".to_string(),
                CTarget::Exports => "exports".to_string(),
                CTarget::Name(n) => n.clone(),
            };
            format!("{prop}({tn})")
        }
    };
    let op = match c.op {
        COp::Eq => "=",
        COp::Le => "<=",
    };
    format!("{} {} {}", term(&c.lhs), op, term(&c.rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;

    fn setup(src: &str, root: &str) -> Result<ConstraintReport, KnitError> {
        let mut p = Program::new();
        p.load_str("t.unit", src)?;
        let el = elaborate(&p, root)?;
        check(&p, &el)
    }

    const PRELUDE: &str = r#"
        property context
        type NoContext
        type ProcessContext < NoContext
        bundletype T = { f }
    "#;

    /// The paper's motivating check: an interrupt handler (NoContext)
    /// calling a blocking function (ProcessContext) is an error.
    #[test]
    fn interrupt_calls_blocking_is_violation() {
        let src = format!(
            r#"{PRELUDE}
            unit Blocking = {{
                exports [ svc : T ];
                files {{ "b.c" }};
                constraints {{ context(svc) = ProcessContext; }};
            }}
            unit IrqHandler = {{
                imports [ callee : T ];
                exports [ irq : T ];
                files {{ "i.c" }};
                constraints {{
                    context(irq) = NoContext;
                    context(irq) <= context(callee);
                }};
            }}
            unit Sys = {{
                exports [ out : T ];
                link {{
                    b : Blocking;
                    i : IrqHandler [ callee = b.svc ];
                    out = i.irq;
                }};
            }}
        "#
        );
        let err = setup(&src, "Sys").unwrap_err();
        match err.root() {
            KnitError::ConstraintViolation { property, explanation } => {
                assert_eq!(property, "context");
                assert!(explanation.contains("ProcessContext"), "{explanation}");
                assert!(explanation.contains("NoContext"), "{explanation}");
            }
            other => panic!("expected violation, got {other:?}"),
        }
        assert!(err.span().is_some(), "violation should blame a .unit position: {err}");
    }

    /// Same configuration but calling through a process-context entry point
    /// is fine.
    #[test]
    fn process_context_call_is_fine() {
        let src = format!(
            r#"{PRELUDE}
            unit Blocking = {{
                exports [ svc : T ];
                files {{ "b.c" }};
                constraints {{ context(svc) = ProcessContext; }};
            }}
            unit Caller = {{
                imports [ callee : T ];
                exports [ entry : T ];
                files {{ "c.c" }};
                constraints {{
                    context(entry) = ProcessContext;
                    context(entry) <= context(callee);
                }};
            }}
            unit Sys = {{
                exports [ out : T ];
                link {{
                    b : Blocking;
                    c : Caller [ callee = b.svc ];
                    out = c.entry;
                }};
            }}
        "#
        );
        let report = setup(&src, "Sys").unwrap();
        assert!(report.constraints >= 3);
        assert_eq!(report.annotated_units, 2);
    }

    /// Propagation through an unannotated middle unit still catches the
    /// end-to-end violation when the middle declares pure propagation.
    #[test]
    fn propagation_constraint_carries_context_through() {
        let src = format!(
            r#"{PRELUDE}
            unit Blocking = {{
                exports [ svc : T ];
                files {{ "b.c" }};
                constraints {{ context(svc) = ProcessContext; }};
            }}
            unit Middle = {{
                imports [ inner : T ];
                exports [ outer : T ];
                files {{ "m.c" }};
                constraints {{ context(exports) <= context(imports); }};
            }}
            unit Irq = {{
                imports [ callee : T ];
                exports [ irq : T ];
                files {{ "i.c" }};
                constraints {{
                    context(irq) = NoContext;
                    context(irq) <= context(callee);
                }};
            }}
            unit Sys = {{
                exports [ out : T ];
                link {{
                    b : Blocking;
                    m : Middle [ inner = b.svc ];
                    i : Irq [ callee = m.outer ];
                    out = i.irq;
                }};
            }}
        "#
        );
        // Middle's exports <= imports means outer <= inner = ProcessContext…
        // wait: inner is *wired to* svc (= ProcessContext), and irq forces
        // callee (= outer) <= NoContext. outer <= inner gives no violation
        // by itself — the violation comes from svc's lower bound meeting
        // irq's upper bound only if propagation runs upward. Check that the
        // system at least solves without error and reports propagation-only
        // units.
        let report = setup(&src, "Sys");
        match report {
            Ok(r) => {
                assert_eq!(r.propagation_only_units, 1);
            }
            Err(ref e) if matches!(e.root(), KnitError::ConstraintViolation { .. }) => {
                // also acceptable: stricter propagation finds the conflict
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    /// `context(member)` resolves through the port whose bundle contains it.
    #[test]
    fn member_level_annotation_resolves() {
        let src = format!(
            r#"{PRELUDE}
            unit U = {{
                exports [ svc : T ];
                files {{ "u.c" }};
                constraints {{ context(f) = NoContext; }};
            }}
            unit Sys = {{
                exports [ out : T ];
                link {{ u : U; out = u.svc; }};
            }}
        "#
        );
        assert!(setup(&src, "Sys").is_ok());
    }

    #[test]
    fn unknown_property_and_value_errors() {
        let src = format!(
            r#"{PRELUDE}
            unit U = {{
                exports [ svc : T ];
                files {{ "u.c" }};
                constraints {{ nope(svc) = NoContext; }};
            }}
            unit Sys = {{ exports [ out : T ]; link {{ u : U; out = u.svc; }}; }}
        "#
        );
        assert!(matches!(setup(&src, "Sys"), Err(KnitError::Unknown { .. })));
        let src2 = format!(
            r#"{PRELUDE}
            unit U = {{
                exports [ svc : T ];
                files {{ "u.c" }};
                constraints {{ context(svc) = Whatever; }};
            }}
            unit Sys = {{ exports [ out : T ]; link {{ u : U; out = u.svc; }}; }}
        "#
        );
        assert!(matches!(setup(&src2, "Sys"), Err(KnitError::Unknown { .. })));
    }

    #[test]
    fn equality_propagates_both_ways() {
        let src = format!(
            r#"{PRELUDE}
            unit A = {{
                exports [ a : T ];
                files {{ "a.c" }};
                constraints {{ context(a) = NoContext; }};
            }}
            unit B = {{
                imports [ x : T ];
                exports [ b : T ];
                files {{ "b.c" }};
                constraints {{
                    context(b) = context(x);
                    ProcessContext <= context(b);
                }};
            }}
            unit Sys = {{
                exports [ out : T ];
                link {{ a : A; b : B [ x = a.a ]; out = b.b; }};
            }}
        "#
        );
        // b = x = a = NoContext; lower bound ProcessContext <= NoContext ok.
        assert!(setup(&src, "Sys").is_ok());
    }

    #[test]
    fn report_counts_are_sane() {
        let src = format!(
            r#"{PRELUDE}
            unit U = {{
                imports [ i : T ];
                exports [ e : T ];
                files {{ "u.c" }};
                constraints {{ context(exports) <= context(imports); }};
            }}
            unit Base = {{ exports [ b : T ]; files {{ "base.c" }}; }}
            unit Sys = {{
                exports [ out : T ];
                link {{ base : Base; u : U [ i = base.b ]; out = u.e; }};
            }}
        "#
        );
        let r = setup(&src, "Sys").unwrap();
        assert_eq!(r.annotated_units, 1);
        assert_eq!(r.propagation_only_units, 1);
        assert!(r.vars >= 2);
        assert!(r.iterations >= 1);
    }
}
