//! Memory-system tests: access widths, host staging helpers, and the
//! machine's guest/host boundary.

use cobj::ir::{BinOp, Instr, Width};
use cobj::object::{DataDef, FuncDef, ObjectFile, Symbol};
use cobj::{link, LinkInput, LinkOptions};
use machine::{CostModel, ExecMode, Fault, Machine, RunLimits};

fn image(obj: ObjectFile) -> cobj::Image {
    link(
        &[LinkInput::Object(obj)],
        &LinkOptions {
            entry: None,
            runtime_symbols: machine::runtime_symbols().collect(),
            ..Default::default()
        },
    )
    .unwrap()
}

/// Build a function that stores `value` at `buf+off` with `w`, reloads it
/// with `w2`, and returns the loaded value.
fn store_load(w: Width, w2: Width, value: i64) -> i64 {
    let mut o = ObjectFile::new("t.o");
    let buf = o.add_symbol(Symbol::data("buf"));
    let f = o.add_symbol(Symbol::func("f"));
    o.data.push(DataDef { sym: buf, init: vec![], zeroed: 16, relocs: vec![], align: 8 });
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 3,
        frame_size: 0,
        body: vec![
            Instr::Addr { dst: 0, sym: buf, offset: 0 },
            Instr::Const { dst: 1, value },
            Instr::Store { addr: 0, offset: 4, src: 1, width: w },
            Instr::Load { dst: 2, addr: 0, offset: 4, width: w2 },
            Instr::Ret { value: Some(2) },
        ],
    });
    let mut m = Machine::new(image(o)).unwrap();
    m.call("f", &[]).unwrap()
}

#[test]
fn width_one_truncates_and_zero_extends() {
    assert_eq!(store_load(Width::W1, Width::W1, 0x1ff), 0xff);
    assert_eq!(store_load(Width::W1, Width::W1, -1), 0xff);
}

#[test]
fn width_two_round_trips() {
    assert_eq!(store_load(Width::W2, Width::W2, 0x1234), 0x1234);
    assert_eq!(store_load(Width::W2, Width::W2, 0x1_ffff), 0xffff);
}

#[test]
fn width_four_sign_extends() {
    assert_eq!(store_load(Width::W4, Width::W4, 0x7fff_ffff), 0x7fff_ffff);
    assert_eq!(store_load(Width::W4, Width::W4, -5), -5);
    assert_eq!(store_load(Width::W8, Width::W4, -5), -5);
}

#[test]
fn width_eight_is_lossless() {
    assert_eq!(store_load(Width::W8, Width::W8, i64::MIN), i64::MIN);
    assert_eq!(store_load(Width::W8, Width::W8, i64::MAX), i64::MAX);
}

#[test]
fn narrow_store_leaves_neighbors_alone() {
    // write 8 bytes, overwrite the middle 2, check the rest
    let mut o = ObjectFile::new("t.o");
    let buf = o.add_symbol(Symbol::data("buf"));
    let f = o.add_symbol(Symbol::func("f"));
    o.data.push(DataDef { sym: buf, init: vec![], zeroed: 16, relocs: vec![], align: 8 });
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 3,
        frame_size: 0,
        body: vec![
            Instr::Addr { dst: 0, sym: buf, offset: 0 },
            Instr::Const { dst: 1, value: -1 }, // 0xffff…
            Instr::Store { addr: 0, offset: 0, src: 1, width: Width::W8 },
            Instr::Const { dst: 1, value: 0 },
            Instr::Store { addr: 0, offset: 3, src: 1, width: Width::W2 },
            Instr::Load { dst: 2, addr: 0, offset: 0, width: Width::W8 },
            Instr::Ret { value: Some(2) },
        ],
    });
    let mut m = Machine::new(image(o)).unwrap();
    let v = m.call("f", &[]).unwrap() as u64;
    assert_eq!(v, 0xffff_ff00_00ff_ffff);
}

#[test]
fn host_helpers_round_trip_guest_memory() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("strlen_"));
    // strlen over a pointer arg
    o.funcs.push(FuncDef {
        sym: f,
        params: 1,
        nregs: 4,
        frame_size: 0,
        body: vec![
            Instr::Const { dst: 1, value: 0 }, // 0: n = 0
            Instr::Load { dst: 2, addr: 0, offset: 0, width: Width::W1 }, // 1: c = *p
            Instr::Branch { cond: 2, then_to: 3, else_to: 7 }, // 2
            Instr::Const { dst: 3, value: 1 }, // 3
            Instr::Bin { op: BinOp::Add, dst: 1, a: 1, b: 3 }, // 4: n++
            Instr::Bin { op: BinOp::Add, dst: 0, a: 0, b: 3 }, // 5: p++
            Instr::Jump { target: 1 },         // 6
            Instr::Ret { value: Some(1) },     // 7
        ],
    });
    let mut m = Machine::new(image(o)).unwrap();
    let addr = m.host_alloc(32).unwrap();
    m.write_mem(addr, b"knit\0").unwrap();
    assert_eq!(m.call("strlen_", &[addr as i64]).unwrap(), 4);
    assert_eq!(m.read_cstr(addr, 32).unwrap(), "knit");
    assert_eq!(m.read_mem(addr, 4).unwrap(), b"knit");
}

#[test]
fn out_of_range_host_access_faults() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 0,
        body: vec![Instr::Ret { value: None }],
    });
    let m = Machine::new(image(o)).unwrap();
    assert!(matches!(m.read_mem(0, 8), Err(Fault::MemOutOfBounds { .. })));
    assert!(matches!(m.read_mem(u64::MAX - 4, 8), Err(Fault::MemOutOfBounds { .. })));
}

/// An image exporting `f1`/`f2`/`f4`/`f8`: each loads its width at the
/// address passed in and returns the (widened) value.
fn peek_image() -> cobj::Image {
    let mut o = ObjectFile::new("t.o");
    for (name, w) in [("f1", Width::W1), ("f2", Width::W2), ("f4", Width::W4), ("f8", Width::W8)] {
        let f = o.add_symbol(Symbol::func(name));
        o.funcs.push(FuncDef {
            sym: f,
            params: 1,
            nregs: 2,
            frame_size: 0,
            body: vec![
                Instr::Load { dst: 1, addr: 0, offset: 0, width: w },
                Instr::Ret { value: Some(1) },
            ],
        });
    }
    image(o)
}

const PEEK_LIMITS: RunLimits =
    RunLimits { max_steps: 10_000, max_call_depth: 16, heap_size: 1 << 16, stack_size: 8192 };

fn peek_machine(mode: ExecMode) -> (Machine, u64) {
    let img = peek_image();
    // `mem_index` accepts [data_base, heap_base + heap + stack): the top
    // of the stack region is the exclusive bound every access is checked
    // against.
    let mem_top = img.heap_base + PEEK_LIMITS.heap_size + PEEK_LIMITS.stack_size;
    let mut m = Machine::with_config(img, CostModel::default(), PEEK_LIMITS).unwrap();
    m.set_exec_mode(mode);
    (m, mem_top)
}

#[test]
fn mem_index_bounds_at_memory_top_for_every_width() {
    for mode in [ExecMode::Fast, ExecMode::Reference] {
        let (mut m, mem_top) = peek_machine(mode);
        for (name, w) in [("f1", 1u64), ("f2", 2), ("f4", 4), ("f8", 8)] {
            // the very last in-bounds access of this width succeeds...
            let last = (mem_top - w) as i64;
            assert!(m.call(name, &[last]).is_ok(), "{mode:?} {name} at mem_top-{w}");
            // ...and one byte further faults, for every width
            let over = (mem_top - w + 1) as i64;
            assert!(
                matches!(m.call(name, &[over]), Err(Fault::MemOutOfBounds { .. })),
                "{mode:?} {name} at mem_top-{w}+1 must fault"
            );
        }
        // `addr + len` must saturate, not wrap: a load at -1 (u64::MAX)
        // faults instead of wrapping around to a low in-bounds index.
        assert!(matches!(m.call("f8", &[-1]), Err(Fault::MemOutOfBounds { .. })));
    }
}

#[test]
fn widening_at_the_memory_boundary() {
    // All-ones bytes right below mem_top: narrow loads at the boundary
    // must zero-extend (W1/W2), W4 must sign-extend, W8 is lossless —
    // identically in both interpreter loops.
    for mode in [ExecMode::Fast, ExecMode::Reference] {
        let (mut m, mem_top) = peek_machine(mode);
        m.write_mem(mem_top - 8, &[0xff; 8]).unwrap();
        assert_eq!(m.call("f1", &[(mem_top - 1) as i64]).unwrap(), 0xff, "{mode:?}");
        assert_eq!(m.call("f2", &[(mem_top - 2) as i64]).unwrap(), 0xffff, "{mode:?}");
        assert_eq!(m.call("f4", &[(mem_top - 4) as i64]).unwrap(), -1, "{mode:?}");
        assert_eq!(m.call("f8", &[(mem_top - 8) as i64]).unwrap(), -1, "{mode:?}");
    }
}

#[test]
fn heap_allocations_are_aligned_and_disjoint() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 0,
        body: vec![Instr::Ret { value: None }],
    });
    let mut m = Machine::new(image(o)).unwrap();
    let a = m.host_alloc(10).unwrap();
    let b = m.host_alloc(1).unwrap();
    let c = m.host_alloc(100).unwrap();
    assert_eq!(a % 16, 0);
    assert_eq!(b % 16, 0);
    assert_eq!(c % 16, 0);
    assert!(a + 10 <= b && b < c);
    m.write_mem(a, &[1; 10]).unwrap();
    m.write_mem(b, &[2; 1]).unwrap();
    assert_eq!(m.read_mem(a, 10).unwrap(), &[1; 10]);
}
