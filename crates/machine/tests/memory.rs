//! Memory-system tests: access widths, host staging helpers, and the
//! machine's guest/host boundary.

use cobj::ir::{BinOp, Instr, Width};
use cobj::object::{DataDef, FuncDef, ObjectFile, Symbol};
use cobj::{link, LinkInput, LinkOptions};
use machine::{Fault, Machine};

fn image(obj: ObjectFile) -> cobj::Image {
    link(
        &[LinkInput::Object(obj)],
        &LinkOptions {
            entry: None,
            runtime_symbols: machine::runtime_symbols().collect(),
            ..Default::default()
        },
    )
    .unwrap()
}

/// Build a function that stores `value` at `buf+off` with `w`, reloads it
/// with `w2`, and returns the loaded value.
fn store_load(w: Width, w2: Width, value: i64) -> i64 {
    let mut o = ObjectFile::new("t.o");
    let buf = o.add_symbol(Symbol::data("buf"));
    let f = o.add_symbol(Symbol::func("f"));
    o.data.push(DataDef { sym: buf, init: vec![], zeroed: 16, relocs: vec![], align: 8 });
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 3,
        frame_size: 0,
        body: vec![
            Instr::Addr { dst: 0, sym: buf, offset: 0 },
            Instr::Const { dst: 1, value },
            Instr::Store { addr: 0, offset: 4, src: 1, width: w },
            Instr::Load { dst: 2, addr: 0, offset: 4, width: w2 },
            Instr::Ret { value: Some(2) },
        ],
    });
    let mut m = Machine::new(image(o)).unwrap();
    m.call("f", &[]).unwrap()
}

#[test]
fn width_one_truncates_and_zero_extends() {
    assert_eq!(store_load(Width::W1, Width::W1, 0x1ff), 0xff);
    assert_eq!(store_load(Width::W1, Width::W1, -1), 0xff);
}

#[test]
fn width_two_round_trips() {
    assert_eq!(store_load(Width::W2, Width::W2, 0x1234), 0x1234);
    assert_eq!(store_load(Width::W2, Width::W2, 0x1_ffff), 0xffff);
}

#[test]
fn width_four_sign_extends() {
    assert_eq!(store_load(Width::W4, Width::W4, 0x7fff_ffff), 0x7fff_ffff);
    assert_eq!(store_load(Width::W4, Width::W4, -5), -5);
    assert_eq!(store_load(Width::W8, Width::W4, -5), -5);
}

#[test]
fn width_eight_is_lossless() {
    assert_eq!(store_load(Width::W8, Width::W8, i64::MIN), i64::MIN);
    assert_eq!(store_load(Width::W8, Width::W8, i64::MAX), i64::MAX);
}

#[test]
fn narrow_store_leaves_neighbors_alone() {
    // write 8 bytes, overwrite the middle 2, check the rest
    let mut o = ObjectFile::new("t.o");
    let buf = o.add_symbol(Symbol::data("buf"));
    let f = o.add_symbol(Symbol::func("f"));
    o.data.push(DataDef { sym: buf, init: vec![], zeroed: 16, relocs: vec![], align: 8 });
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 3,
        frame_size: 0,
        body: vec![
            Instr::Addr { dst: 0, sym: buf, offset: 0 },
            Instr::Const { dst: 1, value: -1 }, // 0xffff…
            Instr::Store { addr: 0, offset: 0, src: 1, width: Width::W8 },
            Instr::Const { dst: 1, value: 0 },
            Instr::Store { addr: 0, offset: 3, src: 1, width: Width::W2 },
            Instr::Load { dst: 2, addr: 0, offset: 0, width: Width::W8 },
            Instr::Ret { value: Some(2) },
        ],
    });
    let mut m = Machine::new(image(o)).unwrap();
    let v = m.call("f", &[]).unwrap() as u64;
    assert_eq!(v, 0xffff_ff00_00ff_ffff);
}

#[test]
fn host_helpers_round_trip_guest_memory() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("strlen_"));
    // strlen over a pointer arg
    o.funcs.push(FuncDef {
        sym: f,
        params: 1,
        nregs: 4,
        frame_size: 0,
        body: vec![
            Instr::Const { dst: 1, value: 0 }, // 0: n = 0
            Instr::Load { dst: 2, addr: 0, offset: 0, width: Width::W1 }, // 1: c = *p
            Instr::Branch { cond: 2, then_to: 3, else_to: 7 }, // 2
            Instr::Const { dst: 3, value: 1 }, // 3
            Instr::Bin { op: BinOp::Add, dst: 1, a: 1, b: 3 }, // 4: n++
            Instr::Bin { op: BinOp::Add, dst: 0, a: 0, b: 3 }, // 5: p++
            Instr::Jump { target: 1 },         // 6
            Instr::Ret { value: Some(1) },     // 7
        ],
    });
    let mut m = Machine::new(image(o)).unwrap();
    let addr = m.host_alloc(32).unwrap();
    m.write_mem(addr, b"knit\0").unwrap();
    assert_eq!(m.call("strlen_", &[addr as i64]).unwrap(), 4);
    assert_eq!(m.read_cstr(addr, 32).unwrap(), "knit");
    assert_eq!(m.read_mem(addr, 4).unwrap(), b"knit");
}

#[test]
fn out_of_range_host_access_faults() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 0,
        body: vec![Instr::Ret { value: None }],
    });
    let m = Machine::new(image(o)).unwrap();
    assert!(matches!(m.read_mem(0, 8), Err(Fault::MemOutOfBounds { .. })));
    assert!(matches!(m.read_mem(u64::MAX - 4, 8), Err(Fault::MemOutOfBounds { .. })));
}

#[test]
fn heap_allocations_are_aligned_and_disjoint() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 0,
        body: vec![Instr::Ret { value: None }],
    });
    let mut m = Machine::new(image(o)).unwrap();
    let a = m.host_alloc(10).unwrap();
    let b = m.host_alloc(1).unwrap();
    let c = m.host_alloc(100).unwrap();
    assert_eq!(a % 16, 0);
    assert_eq!(b % 16, 0);
    assert_eq!(c % 16, 0);
    assert!(a + 10 <= b && b < c);
    m.write_mem(a, &[1; 10]).unwrap();
    m.write_mem(b, &[2; 1]).unwrap();
    assert_eq!(m.read_mem(a, 10).unwrap(), &[1; 10]);
}
