//! MESI protocol proptests: random per-core read/write traces against a
//! flat-memory oracle.
//!
//! The oracle is a plain `Vec<u8>` updated on every write; the bus must
//! (a) return oracle bytes on every read regardless of which core asks and
//! which cache holds the line, (b) satisfy the protocol invariants at all
//! times (never two Modified copies of a line; a Shared copy implies no
//! Modified copy elsewhere — `Bus::check_invariants`), and (c) converge to
//! the oracle exactly once dirty lines and the delayed write-back queue
//! are folded in (`Bus::backing_synced`).
//!
//! Failures print the generated-trace seed; replay a specific trace with
//! `SIMPERF_SEED=<n> cargo test -p machine --test mesi`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use machine::{Bus, DCacheParams, LineState};

const MEM_BASE: u64 = 0x1000;
const MEM_LEN: usize = 2048;

/// Replace the generated seed with `SIMPERF_SEED` when set, so a failure
/// printed by a previous run can be replayed directly from the CLI.
fn override_seed(generated: u64) -> u64 {
    match std::env::var("SIMPERF_SEED") {
        Ok(s) => s.trim().parse().unwrap_or(generated),
        Err(_) => generated,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_traces_match_the_flat_memory_oracle(seed in any::<u64>()) {
        let seed = override_seed(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let ncores = rng.random_range(1usize..5);
        // Geometries from roomy to pathological: the tiny caches force
        // evictions, so the delayed write-back queue and dirty-snoop
        // paths are exercised constantly.
        let geometries = [
            DCacheParams::default(),
            DCacheParams { size: 128, line: 32, ..DCacheParams::default() },
            DCacheParams { size: 64, line: 16, ..DCacheParams::default() },
        ];
        let params = geometries[rng.random_range(0usize..3)];

        let mut oracle: Vec<u8> = (0..MEM_LEN).map(|i| (i as u8) ^ 0x5a).collect();
        let mut bus = Bus::new(params, oracle.clone(), MEM_BASE, ncores);

        for step in 0..300 {
            let core = rng.random_range(0usize..ncores);
            let len = [1usize, 2, 4, 8, 16][rng.random_range(0usize..5)];
            let off = rng.random_range(0u64..(MEM_LEN - len) as u64 + 1) as usize;
            let addr = MEM_BASE + off as u64;
            match rng.random_range(0u32..10) {
                0..=3 => {
                    let mut out = vec![0u8; len];
                    bus.read(core, addr, &mut out);
                    prop_assert_eq!(
                        &out[..], &oracle[off..off + len],
                        "core {} read at {:#x} diverged (seed {})", core, addr, seed
                    );
                }
                4..=7 => {
                    let bytes: Vec<u8> =
                        (0..len).map(|_| rng.random_range(0u32..256) as u8).collect();
                    bus.write(core, addr, &bytes);
                    oracle[off..off + len].copy_from_slice(&bytes);
                    // After a write the writer holds the line Modified and
                    // nobody else holds it M or E.
                    prop_assert_eq!(
                        bus.line_state(core, addr), LineState::Modified,
                        "writer not Modified at {:#x} (seed {})", addr, seed
                    );
                    for other in (0..ncores).filter(|&o| o != core) {
                        let st = bus.line_state(other, addr);
                        prop_assert!(
                            st != LineState::Modified && st != LineState::Exclusive,
                            "core {} still holds {:?} after core {}'s write (seed {})",
                            other, st, core, seed
                        );
                    }
                }
                8 => {
                    let mut out = vec![0u8; len];
                    bus.dma_read(addr, &mut out);
                    prop_assert_eq!(
                        &out[..], &oracle[off..off + len],
                        "DMA read at {:#x} diverged (seed {})", addr, seed
                    );
                }
                _ => {
                    let bytes: Vec<u8> =
                        (0..len).map(|_| rng.random_range(0u32..256) as u8).collect();
                    bus.dma_write(addr, &bytes);
                    oracle[off..off + len].copy_from_slice(&bytes);
                }
            }
            if step % 16 == 0 {
                if let Err(e) = bus.check_invariants() {
                    return Err(TestCaseError::Fail(format!(
                        "protocol invariant violated at step {step}: {e} (seed {seed})"
                    )));
                }
            }
        }

        if let Err(e) = bus.check_invariants() {
            return Err(TestCaseError::Fail(format!(
                "protocol invariant violated at end of trace: {e} (seed {seed})"
            )));
        }
        prop_assert_eq!(
            bus.backing_synced(), oracle,
            "synced memory diverged from the oracle (seed {})", seed
        );
    }
}
