//! The CPU interpreter.
//!
//! Executes a linked [`Image`] one instruction at a time, charging cycles
//! per the [`CostModel`] and instruction-fetch stalls per the I-cache
//! simulator. Guest code reaches the outside world only through the
//! runtime intrinsics listed in [`INTRINSIC_NAMES`].

use std::collections::BTreeMap;
use std::rc::Rc;

use cobj::image::{CallTarget, Image, RInstr};
use cobj::ir::{Reg, Width};

use crate::cache::ICache;
use crate::costs::CostModel;
use crate::dev::{Console, NetDev};
use crate::mesi::{AccessCost, Bus};
use crate::profile::{CallEdge, FuncCount, Profile};

/// A core's handle onto the shared coherent bus: when present, every
/// guest load/store goes through the bus's MESI protocol (and host
/// accesses use coherent-DMA semantics) instead of the machine-local
/// `mem` vector. Installed by [`crate::MultiMachine`]; `None` on a
/// single-core machine, whose direct memory path is untouched.
#[derive(Clone)]
pub(crate) struct Coherence {
    pub(crate) bus: std::rc::Rc<std::cell::RefCell<Bus>>,
    pub(crate) core: usize,
}

/// Sign/zero-extend little-endian bytes exactly as [`Machine::load`]
/// does against flat memory (W1/W2 zero-extend, W4 sign-extends).
#[inline]
pub(crate) fn widen(width: Width, b: &[u8; 8]) -> i64 {
    match width {
        Width::W1 => b[0] as i64,
        Width::W2 => u16::from_le_bytes([b[0], b[1]]) as i64,
        Width::W4 => i32::from_le_bytes([b[0], b[1], b[2], b[3]]) as i64,
        Width::W8 => i64::from_le_bytes(*b),
    }
}

/// Intrinsics provided by the runtime, by name. The id of an intrinsic in a
/// linked image is the index of its name in the image's own (sorted)
/// intrinsic table, so dispatch here is by name at `Machine` construction.
pub const INTRINSIC_NAMES: &[&str] = &[
    "__abort",
    "__brk",
    "__clock",
    "__con_getc",
    "__con_putc",
    "__halt",
    "__net_poll",
    "__net_rx",
    "__net_tx",
    "__serial_getc",
    "__serial_putc",
    "__trace",
];

/// Resolved intrinsic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Intrinsic {
    Abort,
    Brk,
    Clock,
    ConGetc,
    ConPutc,
    Halt,
    NetPoll,
    NetRx,
    NetTx,
    SerialGetc,
    SerialPutc,
    Trace,
}

fn intrinsic_by_name(name: &str) -> Option<Intrinsic> {
    Some(match name {
        "__abort" => Intrinsic::Abort,
        "__brk" => Intrinsic::Brk,
        "__clock" => Intrinsic::Clock,
        "__con_getc" => Intrinsic::ConGetc,
        "__con_putc" => Intrinsic::ConPutc,
        "__halt" => Intrinsic::Halt,
        "__net_poll" => Intrinsic::NetPoll,
        "__net_rx" => Intrinsic::NetRx,
        "__net_tx" => Intrinsic::NetTx,
        "__serial_getc" => Intrinsic::SerialGetc,
        "__serial_putc" => Intrinsic::SerialPutc,
        "__trace" => Intrinsic::Trace,
        _ => return None,
    })
}

/// Execution faults. `Halted` is the normal outcome of `__halt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Memory access outside the data/heap/stack region.
    MemOutOfBounds { addr: u64, func: String, at: usize },
    /// Integer division or remainder by zero.
    DivByZero { func: String, at: usize },
    /// Indirect call through a value that is no function's address.
    BadFunctionPointer { value: i64, func: String, at: usize },
    /// The stack region was exhausted.
    StackOverflow { func: String },
    /// Too many nested calls.
    CallDepthExceeded,
    /// The step budget ran out (likely an infinite loop in guest code).
    StepLimitExceeded,
    /// Guest executed `__halt(code)`.
    Halted(i64),
    /// Guest executed `__abort(code)`.
    Aborted(i64),
    /// `Machine::call` was given an unknown function name.
    NoSuchFunction(String),
    /// `__brk` could not satisfy an allocation.
    OutOfHeap { requested: u64 },
    /// The image references a runtime symbol this machine does not provide.
    UnknownIntrinsic(String),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::MemOutOfBounds { addr, func, at } => {
                write!(f, "memory access at {addr:#x} out of bounds in `{func}` @{at}")
            }
            Fault::DivByZero { func, at } => write!(f, "division by zero in `{func}` @{at}"),
            Fault::BadFunctionPointer { value, func, at } => {
                write!(f, "indirect call through bad pointer {value:#x} in `{func}` @{at}")
            }
            Fault::StackOverflow { func } => write!(f, "stack overflow entering `{func}`"),
            Fault::CallDepthExceeded => write!(f, "call depth exceeded"),
            Fault::StepLimitExceeded => write!(f, "step limit exceeded"),
            Fault::Halted(c) => write!(f, "halted with code {c}"),
            Fault::Aborted(c) => write!(f, "aborted with code {c}"),
            Fault::NoSuchFunction(n) => write!(f, "no such function `{n}`"),
            Fault::OutOfHeap { requested } => {
                write!(f, "out of heap ({requested} bytes requested)")
            }
            Fault::UnknownIntrinsic(n) => write!(f, "unknown runtime symbol `{n}`"),
        }
    }
}

impl std::error::Error for Fault {}

/// Execution limits and memory-region sizes.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Maximum instructions executed per `call`.
    pub max_steps: u64,
    /// Maximum call nesting.
    pub max_call_depth: usize,
    /// Bytes of heap available to `__brk`.
    pub heap_size: u64,
    /// Bytes of stack.
    pub stack_size: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_steps: 500_000_000,
            max_call_depth: 4096,
            heap_size: 8 << 20,
            stack_size: 1 << 20,
        }
    }
}

/// Performance counters — the simulated equivalents of the Pentium Pro
/// counters the paper reads for Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Total cycles, including fetch stalls.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Instruction-fetch stall cycles (the paper's "instr. fetch stall
    /// cycles" column).
    pub ifetch_stall_cycles: u64,
    /// I-cache line misses.
    pub icache_misses: u64,
    /// Direct calls executed.
    pub calls: u64,
    /// Indirect calls executed.
    pub indirect_calls: u64,
    /// Intrinsic (device) calls executed.
    pub intrinsic_calls: u64,
    /// D-cache line misses (multi-core coherent mode only; zero on a
    /// single-core machine, whose data accesses are flat-cost).
    pub dcache_misses: u64,
    /// D-cache misses served by snooping a Modified line out of another
    /// core's cache (a subset of `dcache_misses`).
    pub coherence_misses: u64,
    /// Copies in *other* caches invalidated by this core's writes.
    pub invalidations: u64,
    /// Cycles this core stalled on bus transactions (miss fills,
    /// upgrades, drained write-backs); included in `cycles`.
    pub bus_stall_cycles: u64,
}

impl PerfCounters {
    /// Counter-wise difference `self - earlier` (for per-packet deltas).
    pub fn delta_since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles - earlier.cycles,
            instructions: self.instructions - earlier.instructions,
            ifetch_stall_cycles: self.ifetch_stall_cycles - earlier.ifetch_stall_cycles,
            icache_misses: self.icache_misses - earlier.icache_misses,
            calls: self.calls - earlier.calls,
            indirect_calls: self.indirect_calls - earlier.indirect_calls,
            intrinsic_calls: self.intrinsic_calls - earlier.intrinsic_calls,
            dcache_misses: self.dcache_misses - earlier.dcache_misses,
            coherence_misses: self.coherence_misses - earlier.coherence_misses,
            invalidations: self.invalidations - earlier.invalidations,
            bus_stall_cycles: self.bus_stall_cycles - earlier.bus_stall_cycles,
        }
    }
}

/// Which interpreter loop executes guest code. Both produce bit-identical
/// results, faults, performance counters, and profiles; the fast loop is
/// simply faster in host wall-clock (see DESIGN.md on interpreter
/// internals and `bench --bin simperf` for the measured gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The predecoded, frame-pooled hot loop (the default).
    #[default]
    Fast,
    /// The original one-instruction-at-a-time loop, retained verbatim as
    /// the differential-testing oracle.
    Reference,
}

/// One activation record.
pub(crate) struct Frame {
    pub(crate) func: u32,
    pub(crate) pc: usize,
    pub(crate) regs: Vec<i64>,
    pub(crate) args: Vec<i64>,
    pub(crate) ret_dst: Option<Reg>,
    pub(crate) saved_sp: u64,
    /// Lowest address of this frame's stack storage; `FrameAddr` offsets
    /// are relative to this.
    pub(crate) frame_base: u64,
}

/// The simulated machine: one image, one CPU, memory, devices, counters.
pub struct Machine {
    pub(crate) image: Rc<Image>,
    pub(crate) costs: CostModel,
    pub(crate) limits: RunLimits,
    pub(crate) icache: ICache,
    pub(crate) counters: PerfCounters,
    /// Data + heap + stack, covering `[mem_base, mem_base + mem.len())`.
    pub(crate) mem: Vec<u8>,
    pub(crate) mem_base: u64,
    pub(crate) heap_next: u64,
    pub(crate) heap_end: u64,
    pub(crate) stack_base: u64,
    pub(crate) mem_top: u64,
    pub(crate) sp: u64,
    /// Shared-bus handle in multi-core mode; see [`Coherence`].
    pub(crate) coherence: Option<Coherence>,
    pub(crate) intrinsic_ops: Vec<Intrinsic>,
    /// Interpreter selection; see [`ExecMode`].
    pub(crate) exec_mode: ExecMode,
    /// Per-function predecoded fetch metadata for the fast loop (parallel
    /// to `image.funcs`); computed once at construction.
    pub(crate) fetch_plans: Rc<Vec<crate::exec::CodePlan>>,
    /// Recycled register/argument buffers for the fast loop's frames.
    pub(crate) buf_pool: Vec<Vec<i64>>,
    /// When true, every call edge and per-function instruction count is
    /// recorded (see [`Machine::profile`]). Off by default: profiling has
    /// zero effect on execution, counters, or images.
    pub(crate) profiling: bool,
    /// (caller func idx, callee func idx, indirect) → calls.
    pub(crate) prof_edges: BTreeMap<(u32, u32, bool), u64>,
    /// (caller func idx, intrinsic id, indirect) → calls.
    pub(crate) prof_intrinsics: BTreeMap<(u32, u32, bool), u64>,
    /// Instructions retired per image function (indexed by func idx).
    pub(crate) prof_instrs: Vec<u64>,
    /// Console device (the "VGA" screen).
    pub console: Console,
    /// Second console device (the "serial" line).
    pub serial: Console,
    /// Network devices, indexed by the `dev` argument of the net intrinsics.
    pub netdevs: Vec<NetDev>,
    /// Values recorded by `__trace`.
    pub trace: Vec<i64>,
}

impl Machine {
    /// Build a machine for `image` with default costs and limits.
    pub fn new(image: Image) -> Result<Machine, Fault> {
        Machine::with_costs(image, CostModel::default())
    }

    /// Build a machine with an explicit cost model.
    pub fn with_costs(image: Image, costs: CostModel) -> Result<Machine, Fault> {
        Machine::with_config(image, costs, RunLimits::default())
    }

    /// Build a machine with explicit costs and limits.
    pub fn with_config(
        image: Image,
        costs: CostModel,
        limits: RunLimits,
    ) -> Result<Machine, Fault> {
        let fetch_plans = Rc::new(crate::exec::CodePlan::build_all(&image, costs.icache));
        Machine::from_shared(Rc::new(image), fetch_plans, costs, limits)
    }

    /// Build a machine sharing an already-predecoded image (how
    /// [`crate::MultiMachine`] avoids redoing `CodePlan::build_all` per
    /// core). The plans must have been built for `image` under
    /// `costs.icache`.
    pub(crate) fn from_shared(
        image: Rc<Image>,
        fetch_plans: Rc<Vec<crate::exec::CodePlan>>,
        costs: CostModel,
        limits: RunLimits,
    ) -> Result<Machine, Fault> {
        let mut intrinsic_ops = Vec::with_capacity(image.intrinsics.len());
        for name in &image.intrinsics {
            match intrinsic_by_name(name) {
                Some(op) => intrinsic_ops.push(op),
                None => return Err(Fault::UnknownIntrinsic(name.clone())),
            }
        }
        let mem_base = image.data_base;
        let heap_base = image.heap_base;
        let heap_end = heap_base + limits.heap_size;
        let stack_base = heap_end;
        let mem_top = stack_base + limits.stack_size;
        let mut mem = vec![0u8; (mem_top - mem_base) as usize];
        mem[..image.data.len()].copy_from_slice(&image.data);
        let icache = ICache::new(costs.icache);
        Ok(Machine {
            image,
            costs,
            limits,
            icache,
            counters: PerfCounters::default(),
            mem,
            mem_base,
            heap_next: heap_base,
            heap_end,
            stack_base,
            mem_top,
            sp: mem_top,
            coherence: None,
            intrinsic_ops,
            exec_mode: ExecMode::default(),
            fetch_plans,
            buf_pool: Vec::new(),
            profiling: false,
            prof_edges: BTreeMap::new(),
            prof_intrinsics: BTreeMap::new(),
            prof_instrs: Vec::new(),
            console: Console::default(),
            serial: Console::default(),
            netdevs: vec![NetDev::default(); 4],
            trace: Vec::new(),
        })
    }

    /// The linked image this machine executes.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Current counter values.
    pub fn counters(&self) -> PerfCounters {
        self.counters
    }

    /// Select which interpreter loop runs guest code. Both modes are
    /// observationally identical (results, faults, counters, profiles);
    /// [`ExecMode::Reference`] exists for differential testing and as the
    /// baseline for `simperf`'s throughput comparison.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The interpreter loop currently in use.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Zero the counters and I-cache statistics (cache contents stay warm).
    pub fn reset_counters(&mut self) {
        self.counters = PerfCounters::default();
        self.icache.reset_stats();
    }

    /// Cold-reset the I-cache (contents and statistics).
    pub fn flush_icache(&mut self) {
        self.icache.reset();
    }

    /// Enable or disable call-edge + instruction-count profiling. Counts
    /// accumulate across calls until [`Machine::clear_profile`]; turning
    /// profiling off keeps what was already recorded.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
        if on && self.prof_instrs.len() != self.image.funcs.len() {
            self.prof_instrs = vec![0; self.image.funcs.len()];
        }
    }

    /// Whether profiling is currently enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Discard all recorded profile data (profiling stays in its current
    /// enabled/disabled state).
    pub fn clear_profile(&mut self) {
        self.prof_edges.clear();
        self.prof_intrinsics.clear();
        for c in &mut self.prof_instrs {
            *c = 0;
        }
    }

    /// Snapshot the recorded profile: call edges (direct, indirect, and
    /// intrinsic callees) plus per-function instruction counts, keyed by
    /// link-level names. Same-named functions (e.g. `static`s kept apart
    /// by the linker) are aggregated under their shared name.
    pub fn profile(&self) -> Profile {
        let fname = |fi: u32| self.image.funcs[fi as usize].name.as_str();
        let mut edges: BTreeMap<(String, String, bool), u64> = BTreeMap::new();
        for (&(caller, callee, indirect), &n) in &self.prof_edges {
            *edges
                .entry((fname(caller).to_string(), fname(callee).to_string(), indirect))
                .or_insert(0) += n;
        }
        for (&(caller, id, indirect), &n) in &self.prof_intrinsics {
            *edges
                .entry((
                    fname(caller).to_string(),
                    self.image.intrinsics[id as usize].clone(),
                    indirect,
                ))
                .or_insert(0) += n;
        }
        let mut funcs: BTreeMap<String, u64> = BTreeMap::new();
        for (fi, &n) in self.prof_instrs.iter().enumerate() {
            if n > 0 {
                *funcs.entry(self.image.funcs[fi].name.clone()).or_insert(0) += n;
            }
        }
        Profile {
            edges: edges
                .into_iter()
                .map(|((caller, callee, indirect), count)| CallEdge {
                    caller,
                    callee,
                    indirect,
                    count,
                })
                .collect(),
            funcs: funcs
                .into_iter()
                .map(|(name, instructions)| FuncCount { name, instructions })
                .collect(),
        }
    }

    /// Read `len` bytes of guest memory. Host-side accesses use
    /// coherent-DMA semantics in multi-core mode (dirty cache lines are
    /// flushed so the bytes are current); no core is charged cycles.
    pub fn read_mem(&self, addr: u64, len: usize) -> Result<Vec<u8>, Fault> {
        let i = self.mem_index(addr, len as u64, "<host>", 0)?;
        if let Some(co) = &self.coherence {
            let mut out = vec![0u8; len];
            co.bus.borrow_mut().dma_read(addr, &mut out);
            return Ok(out);
        }
        Ok(self.mem[i..i + len].to_vec())
    }

    /// Write bytes into guest memory. In multi-core mode this is a
    /// coherent DMA write: cached copies of the touched lines are
    /// invalidated so every core observes the new bytes.
    pub fn write_mem(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Fault> {
        let i = self.mem_index(addr, bytes.len() as u64, "<host>", 0)?;
        if let Some(co) = &self.coherence {
            co.bus.borrow_mut().dma_write(addr, bytes);
            return Ok(());
        }
        self.mem[i..i + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Read a NUL-terminated guest string (at most `max` bytes).
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<String, Fault> {
        let mut out = Vec::new();
        for i in 0..max as u64 {
            let b = self.read_mem(addr + i, 1)?[0];
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// Allocate guest heap memory from the host side (for staging inputs).
    pub fn host_alloc(&mut self, len: u64) -> Result<u64, Fault> {
        self.brk(len)
    }

    #[inline]
    fn mem_index(&self, addr: u64, len: u64, func: &str, at: usize) -> Result<usize, Fault> {
        if addr < self.mem_base || addr.saturating_add(len) > self.mem_top {
            return Err(Fault::MemOutOfBounds { addr, func: func.to_string(), at });
        }
        Ok((addr - self.mem_base) as usize)
    }

    fn brk(&mut self, n: u64) -> Result<u64, Fault> {
        let aligned = (n + 15) & !15;
        if self.heap_next + aligned > self.heap_end {
            return Err(Fault::OutOfHeap { requested: n });
        }
        let addr = self.heap_next;
        self.heap_next += aligned;
        Ok(addr)
    }

    /// Call the image's entry function (as recorded at link time) with no
    /// arguments. A guest `__halt(code)` is reported as `Ok(code)`.
    pub fn run_entry(&mut self) -> Result<i64, Fault> {
        let entry = self.image.entry.ok_or_else(|| Fault::NoSuchFunction("<entry>".into()))?;
        match self.call_idx(entry, &[]) {
            Ok(v) => Ok(v),
            Err(Fault::Halted(c)) => Ok(c),
            Err(e) => Err(e),
        }
    }

    /// Call a function by link-level name.
    pub fn call(&mut self, name: &str, args: &[i64]) -> Result<i64, Fault> {
        let fi =
            self.image.func_by_name(name).ok_or_else(|| Fault::NoSuchFunction(name.to_string()))?;
        self.call_idx(fi, args)
    }

    /// Call a function by image index.
    pub fn call_idx(&mut self, fi: u32, args: &[i64]) -> Result<i64, Fault> {
        match self.exec_mode {
            ExecMode::Fast => self.run_fast(fi, args),
            ExecMode::Reference => self.run_reference(fi, args),
        }
    }

    /// The original interpreter loop, kept verbatim: the oracle every
    /// fast-path change is differentially tested against.
    pub(crate) fn run_reference(&mut self, fi: u32, args: &[i64]) -> Result<i64, Fault> {
        let image = Rc::clone(&self.image);
        let saved_sp = self.sp;
        let mut frames: Vec<Frame> = Vec::new();
        self.push_frame(&image, &mut frames, fi, args.to_vec(), None)?;
        let mut steps: u64 = 0;

        let result = loop {
            steps += 1;
            if steps > self.limits.max_steps {
                break Err(Fault::StepLimitExceeded);
            }
            let (func_idx, pc) = {
                let fr = frames.last().expect("frame stack never empty in loop");
                (fr.func, fr.pc)
            };
            let func = &image.funcs[func_idx as usize];

            // Falling off the end of a function is an implicit `return 0`.
            if pc >= func.body.len() {
                let v = 0;
                if !self.pop_frame(&mut frames, v) {
                    break Ok(v);
                }
                continue;
            }

            // Fetch: charge base cost + I-cache stalls.
            let misses_before = self.icache.misses();
            let stall = self.icache.fetch(func.instr_addrs[pc], func.instr_sizes[pc] as u64);
            self.counters.icache_misses += self.icache.misses() - misses_before;
            self.counters.ifetch_stall_cycles += stall;
            self.counters.cycles += stall;
            self.counters.instructions += 1;
            self.counters.cycles += self.costs.base;
            if self.profiling {
                self.prof_instrs[func_idx as usize] += 1;
            }

            let fr = frames.last_mut().expect("frame stack never empty in loop");
            fr.pc = pc + 1;

            match &func.body[pc] {
                RInstr::Const { dst, value } => fr.regs[*dst as usize] = *value,
                RInstr::Mov { dst, src } => fr.regs[*dst as usize] = fr.regs[*src as usize],
                RInstr::Bin { op, dst, a, b } => {
                    use cobj::ir::BinOp;
                    match op {
                        BinOp::Mul => self.counters.cycles += self.costs.mul,
                        BinOp::Div | BinOp::Rem => self.counters.cycles += self.costs.div,
                        _ => {}
                    }
                    let av = fr.regs[*a as usize];
                    let bv = fr.regs[*b as usize];
                    match op.eval(av, bv) {
                        Some(v) => fr.regs[*dst as usize] = v,
                        None => break Err(Fault::DivByZero { func: func.name.clone(), at: pc }),
                    }
                }
                RInstr::Un { op, dst, a } => {
                    fr.regs[*dst as usize] = op.eval(fr.regs[*a as usize]);
                }
                RInstr::Load { dst, addr, offset, width } => {
                    self.counters.cycles += self.costs.load;
                    let a = (fr.regs[*addr as usize] as u64).wrapping_add_signed(*offset);
                    let v = match self.load(a, *width, &func.name, pc) {
                        Ok(v) => v,
                        Err(e) => break Err(e),
                    };
                    frames.last_mut().expect("frame").regs[*dst as usize] = v;
                }
                RInstr::Store { addr, offset, src, width } => {
                    self.counters.cycles += self.costs.store;
                    let a = (fr.regs[*addr as usize] as u64).wrapping_add_signed(*offset);
                    let v = fr.regs[*src as usize];
                    if let Err(e) = self.store(a, *width, v, &func.name, pc) {
                        break Err(e);
                    }
                }
                RInstr::FrameAddr { dst, offset } => {
                    fr.regs[*dst as usize] = fr.frame_base.wrapping_add_signed(*offset) as i64;
                }
                RInstr::VarArg { dst, idx } => {
                    let i = func.params as usize + fr.regs[*idx as usize].max(0) as usize;
                    fr.regs[*dst as usize] = fr.args.get(i).copied().unwrap_or(0);
                }
                RInstr::Call { dst, target, args } => {
                    self.counters.cycles +=
                        self.costs.call_overhead + self.costs.call_per_arg * args.len() as u64;
                    let argv: Vec<i64> = args.iter().map(|r| fr.regs[*r as usize]).collect();
                    match target {
                        CallTarget::Func(tf) => {
                            self.counters.calls += 1;
                            let tf = *tf;
                            let dst = *dst;
                            if self.profiling {
                                *self.prof_edges.entry((func_idx, tf, false)).or_insert(0) += 1;
                            }
                            if let Err(e) = self.push_frame(&image, &mut frames, tf, argv, dst) {
                                break Err(e);
                            }
                        }
                        CallTarget::Intrinsic(id) => {
                            self.counters.intrinsic_calls += 1;
                            if self.profiling {
                                *self.prof_intrinsics.entry((func_idx, *id, false)).or_insert(0) +=
                                    1;
                            }
                            let op = self.intrinsic_ops[*id as usize];
                            let dst = *dst;
                            match self.intrinsic(op, &argv) {
                                Ok(v) => {
                                    if let Some(d) = dst {
                                        frames.last_mut().expect("frame").regs[d as usize] = v;
                                    }
                                }
                                Err(e) => break Err(e),
                            }
                        }
                    }
                }
                RInstr::CallInd { dst, target, args } => {
                    self.counters.cycles += self.costs.call_overhead
                        + self.costs.call_per_arg * args.len() as u64
                        + self.costs.indirect_call_penalty;
                    self.counters.indirect_calls += 1;
                    let ptr = fr.regs[*target as usize];
                    let argv: Vec<i64> = args.iter().map(|r| fr.regs[*r as usize]).collect();
                    let dst = *dst;
                    if let Some(tf) = image.func_at_addr(ptr as u64) {
                        if self.profiling {
                            *self.prof_edges.entry((func_idx, tf, true)).or_insert(0) += 1;
                        }
                        if let Err(e) = self.push_frame(&image, &mut frames, tf, argv, dst) {
                            break Err(e);
                        }
                    } else if let Some(id) = image.intrinsic_at_addr(ptr as u64) {
                        self.counters.intrinsic_calls += 1;
                        if self.profiling {
                            *self.prof_intrinsics.entry((func_idx, id, true)).or_insert(0) += 1;
                        }
                        let op = self.intrinsic_ops[id as usize];
                        match self.intrinsic(op, &argv) {
                            Ok(v) => {
                                if let Some(d) = dst {
                                    frames.last_mut().expect("frame").regs[d as usize] = v;
                                }
                            }
                            Err(e) => break Err(e),
                        }
                    } else {
                        break Err(Fault::BadFunctionPointer {
                            value: ptr,
                            func: func.name.clone(),
                            at: pc,
                        });
                    }
                }
                RInstr::Jump { target } => {
                    self.counters.cycles += self.costs.jump;
                    fr.pc = *target;
                }
                RInstr::Branch { cond, then_to, else_to } => {
                    let taken = fr.regs[*cond as usize] != 0;
                    // Model a simple not-taken-predicted branch.
                    self.counters.cycles +=
                        if taken { self.costs.branch_taken } else { self.costs.branch_not_taken };
                    fr.pc = if taken { *then_to } else { *else_to };
                }
                RInstr::Ret { value } => {
                    self.counters.cycles += self.costs.ret_overhead;
                    let v = value.map(|r| fr.regs[r as usize]).unwrap_or(0);
                    if !self.pop_frame(&mut frames, v) {
                        break Ok(v);
                    }
                }
                RInstr::Nop => {}
            }
        };

        // Unwind any remaining frames (on fault) and restore the stack.
        self.sp = saved_sp;
        result
    }

    fn push_frame(
        &mut self,
        image: &Image,
        frames: &mut Vec<Frame>,
        fi: u32,
        args: Vec<i64>,
        ret_dst: Option<Reg>,
    ) -> Result<(), Fault> {
        if frames.len() >= self.limits.max_call_depth {
            return Err(Fault::CallDepthExceeded);
        }
        let func = &image.funcs[fi as usize];
        let frame_bytes = ((func.frame_size as u64) + 15) & !15;
        if self.sp < self.stack_base + frame_bytes {
            return Err(Fault::StackOverflow { func: func.name.clone() });
        }
        let saved_sp = self.sp;
        self.sp -= frame_bytes;
        let frame_base = self.sp;
        let mut regs = vec![0i64; func.nregs as usize];
        for (i, a) in args.iter().take(func.params as usize).enumerate() {
            if i < regs.len() {
                regs[i] = *a;
            }
        }
        frames.push(Frame { func: fi, pc: 0, regs, args, ret_dst, saved_sp, frame_base });
        Ok(())
    }

    /// Pop the top frame, writing `v` into the caller's destination.
    /// Returns false when the root frame was popped.
    fn pop_frame(&mut self, frames: &mut Vec<Frame>, v: i64) -> bool {
        let fr = frames.pop().expect("pop_frame on empty stack");
        self.sp = fr.saved_sp;
        match frames.last_mut() {
            Some(caller) => {
                if let Some(d) = fr.ret_dst {
                    caller.regs[d as usize] = v;
                }
                true
            }
            None => false,
        }
    }

    /// Add one coherent access's costs to this core's counters. Shared
    /// verbatim (same arithmetic) with the fast loop's local-counter
    /// version so both modes stay bit-identical.
    #[inline]
    pub(crate) fn charge_access(counters: &mut PerfCounters, cost: AccessCost) {
        counters.cycles += cost.stall;
        counters.bus_stall_cycles += cost.stall;
        counters.dcache_misses += cost.dcache_misses;
        counters.coherence_misses += cost.coherence_misses;
        counters.invalidations += cost.invalidations;
    }

    #[inline]
    pub(crate) fn load(
        &mut self,
        addr: u64,
        width: Width,
        func: &str,
        at: usize,
    ) -> Result<i64, Fault> {
        let i = self.mem_index(addr, width.bytes(), func, at)?;
        if let Some(co) = &self.coherence {
            let mut b = [0u8; 8];
            let n = width.bytes() as usize;
            let cost = co.bus.borrow_mut().read(co.core, addr, &mut b[..n]);
            Machine::charge_access(&mut self.counters, cost);
            return Ok(widen(width, &b));
        }
        let m = &self.mem;
        Ok(match width {
            Width::W1 => m[i] as i64,
            Width::W2 => u16::from_le_bytes([m[i], m[i + 1]]) as i64,
            Width::W4 => i32::from_le_bytes([m[i], m[i + 1], m[i + 2], m[i + 3]]) as i64,
            Width::W8 => i64::from_le_bytes(m[i..i + 8].try_into().expect("8 bytes")),
        })
    }

    #[inline]
    pub(crate) fn store(
        &mut self,
        addr: u64,
        width: Width,
        v: i64,
        func: &str,
        at: usize,
    ) -> Result<(), Fault> {
        let i = self.mem_index(addr, width.bytes(), func, at)?;
        if let Some(co) = &self.coherence {
            let b = v.to_le_bytes();
            let n = width.bytes() as usize;
            let cost = co.bus.borrow_mut().write(co.core, addr, &b[..n]);
            Machine::charge_access(&mut self.counters, cost);
            return Ok(());
        }
        match width {
            Width::W1 => self.mem[i] = v as u8,
            Width::W2 => self.mem[i..i + 2].copy_from_slice(&(v as u16).to_le_bytes()),
            Width::W4 => self.mem[i..i + 4].copy_from_slice(&(v as u32).to_le_bytes()),
            Width::W8 => self.mem[i..i + 8].copy_from_slice(&v.to_le_bytes()),
        }
        Ok(())
    }

    pub(crate) fn intrinsic(&mut self, op: Intrinsic, args: &[i64]) -> Result<i64, Fault> {
        self.counters.cycles += self.costs.intrinsic;
        let arg = |i: usize| args.get(i).copied().unwrap_or(0);
        match op {
            Intrinsic::Abort => Err(Fault::Aborted(arg(0))),
            Intrinsic::Halt => Err(Fault::Halted(arg(0))),
            Intrinsic::Brk => self.brk(arg(0).max(0) as u64).map(|a| a as i64),
            Intrinsic::Clock => Ok(self.counters.cycles as i64),
            Intrinsic::ConGetc => Ok(self.console.getc().map(|c| c as i64).unwrap_or(-1)),
            Intrinsic::ConPutc => {
                self.console.putc(arg(0) as u8);
                Ok(0)
            }
            Intrinsic::NetPoll => {
                let dev = arg(0) as usize;
                Ok(self.netdevs.get(dev).map(|d| d.rx.len() as i64).unwrap_or(-1))
            }
            Intrinsic::NetRx => {
                let dev = arg(0) as usize;
                let buf = arg(1) as u64;
                let maxlen = arg(2).max(0) as usize;
                let pkt = match self.netdevs.get_mut(dev).and_then(|d| d.rx.pop_front()) {
                    Some(p) => p,
                    None => return Ok(-1),
                };
                let n = pkt.len().min(maxlen);
                if n < pkt.len() {
                    if let Some(d) = self.netdevs.get_mut(dev) {
                        d.rx_truncated += 1;
                    }
                }
                self.write_mem(buf, &pkt[..n])?;
                Ok(n as i64)
            }
            Intrinsic::NetTx => {
                let dev = arg(0) as usize;
                let buf = arg(1) as u64;
                let len = arg(2).max(0) as usize;
                let bytes = self.read_mem(buf, len)?;
                match self.netdevs.get_mut(dev) {
                    Some(d) => {
                        d.tx.push_back(bytes);
                        Ok(0)
                    }
                    None => Ok(-1),
                }
            }
            Intrinsic::SerialGetc => Ok(self.serial.getc().map(|c| c as i64).unwrap_or(-1)),
            Intrinsic::SerialPutc => {
                self.serial.putc(arg(0) as u8);
                Ok(0)
            }
            Intrinsic::Trace => {
                self.trace.push(arg(0));
                Ok(0)
            }
        }
    }

    /// Symbol table lookup helper for tests and harnesses.
    pub fn symbols(&self) -> &BTreeMap<String, cobj::image::SymbolLoc> {
        &self.image.symbols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobj::ir::{BinOp, Instr};
    use cobj::object::{FuncDef, ObjectFile, Symbol};
    use cobj::{link, LinkInput, LinkOptions};

    fn link_one(obj: ObjectFile, entry: &str) -> Image {
        link(&[LinkInput::Object(obj)], &LinkOptions::new(entry, crate::runtime_symbols())).unwrap()
    }

    #[test]
    fn add_two_numbers() {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("add"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 2,
            nregs: 3,
            frame_size: 0,
            body: vec![
                Instr::Bin { op: BinOp::Add, dst: 2, a: 0, b: 1 },
                Instr::Ret { value: Some(2) },
            ],
        });
        let mut m = Machine::new(link_one(o, "add")).unwrap();
        assert_eq!(m.call("add", &[30, 12]).unwrap(), 42);
        assert!(m.counters().cycles > 0);
        assert_eq!(m.counters().instructions, 2);
    }

    #[test]
    fn loop_and_branch() {
        // sum 1..=n
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("sum"));
        // r0=n, r1=acc, r2=i, r3=tmp
        o.funcs.push(FuncDef {
            sym: f,
            params: 1,
            nregs: 4,
            frame_size: 0,
            body: vec![
                Instr::Const { dst: 1, value: 0 },                 // 0 acc=0
                Instr::Const { dst: 2, value: 1 },                 // 1 i=1
                Instr::Bin { op: BinOp::Le, dst: 3, a: 2, b: 0 },  // 2 tmp = i<=n
                Instr::Branch { cond: 3, then_to: 4, else_to: 8 }, // 3
                Instr::Bin { op: BinOp::Add, dst: 1, a: 1, b: 2 }, // 4 acc+=i
                Instr::Const { dst: 3, value: 1 },                 // 5
                Instr::Bin { op: BinOp::Add, dst: 2, a: 2, b: 3 }, // 6 i+=1
                Instr::Jump { target: 2 },                         // 7
                Instr::Ret { value: Some(1) },                     // 8
            ],
        });
        let mut m = Machine::new(link_one(o, "sum")).unwrap();
        assert_eq!(m.call("sum", &[10]).unwrap(), 55);
    }

    #[test]
    fn intrinsics_console_and_halt() {
        let mut o = ObjectFile::new("t.o");
        let putc = o.add_symbol(Symbol::undef("__con_putc"));
        let halt = o.add_symbol(Symbol::undef("__halt"));
        let f = o.add_symbol(Symbol::func("main"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 1,
            frame_size: 0,
            body: vec![
                Instr::Const { dst: 0, value: 'K' as i64 },
                Instr::Call { dst: None, target: putc, args: vec![0] },
                Instr::Const { dst: 0, value: 7 },
                Instr::Call { dst: None, target: halt, args: vec![0] },
            ],
        });
        let mut m = Machine::new(link_one(o, "main")).unwrap();
        assert_eq!(m.run_entry().unwrap(), 7);
        assert_eq!(m.console.output, "K");
    }

    #[test]
    fn net_round_trip() {
        // main: buf = brk(64); len = net_rx(0, buf, 64); net_tx(1, buf, len)
        let mut o = ObjectFile::new("t.o");
        let brk = o.add_symbol(Symbol::undef("__brk"));
        let rx = o.add_symbol(Symbol::undef("__net_rx"));
        let tx = o.add_symbol(Symbol::undef("__net_tx"));
        let f = o.add_symbol(Symbol::func("main"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 5,
            frame_size: 0,
            body: vec![
                Instr::Const { dst: 0, value: 64 },
                Instr::Call { dst: Some(1), target: brk, args: vec![0] }, // buf
                Instr::Const { dst: 0, value: 0 },                        // dev 0
                Instr::Const { dst: 2, value: 64 },
                Instr::Call { dst: Some(3), target: rx, args: vec![0, 1, 2] }, // len
                Instr::Const { dst: 0, value: 1 },                             // dev 1
                Instr::Call { dst: Some(4), target: tx, args: vec![0, 1, 3] },
                Instr::Ret { value: Some(3) },
            ],
        });
        let mut m = Machine::new(link_one(o, "main")).unwrap();
        m.netdevs[0].inject(vec![1, 2, 3, 4, 5]);
        assert_eq!(m.call("main", &[]).unwrap(), 5);
        assert_eq!(m.netdevs[1].collect(), Some(vec![1, 2, 3, 4, 5]));
    }

    #[test]
    fn frame_locals_are_addressable() {
        // f: local x at offset 0; store 99; load back.
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("f"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 3,
            frame_size: 16,
            body: vec![
                Instr::FrameAddr { dst: 0, offset: 0 },
                Instr::Const { dst: 1, value: 99 },
                Instr::Store { addr: 0, offset: 0, src: 1, width: Width::W8 },
                Instr::Load { dst: 2, addr: 0, offset: 0, width: Width::W8 },
                Instr::Ret { value: Some(2) },
            ],
        });
        let mut m = Machine::new(link_one(o, "f")).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), 99);
    }

    #[test]
    fn varargs() {
        // sum3(n, ...) returns vararg(0)+vararg(1)
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("va"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 1,
            nregs: 4,
            frame_size: 0,
            body: vec![
                Instr::Const { dst: 1, value: 0 },
                Instr::VarArg { dst: 2, idx: 1 },
                Instr::Const { dst: 1, value: 1 },
                Instr::VarArg { dst: 3, idx: 1 },
                Instr::Bin { op: BinOp::Add, dst: 2, a: 2, b: 3 },
                Instr::Ret { value: Some(2) },
            ],
        });
        let mut m = Machine::new(link_one(o, "va")).unwrap();
        assert_eq!(m.call("va", &[9, 20, 22]).unwrap(), 42);
    }

    #[test]
    fn div_by_zero_faults() {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("f"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 2,
            nregs: 3,
            frame_size: 0,
            body: vec![
                Instr::Bin { op: BinOp::Div, dst: 2, a: 0, b: 1 },
                Instr::Ret { value: Some(2) },
            ],
        });
        let mut m = Machine::new(link_one(o, "f")).unwrap();
        assert!(matches!(m.call("f", &[1, 0]), Err(Fault::DivByZero { .. })));
        // Machine remains usable afterwards.
        assert_eq!(m.call("f", &[10, 2]).unwrap(), 5);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("spin"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 0,
            frame_size: 0,
            body: vec![Instr::Jump { target: 0 }],
        });
        let img = link_one(o, "spin");
        let mut m = Machine::with_config(
            img,
            CostModel::default(),
            RunLimits { max_steps: 1000, ..Default::default() },
        )
        .unwrap();
        assert_eq!(m.call("spin", &[]), Err(Fault::StepLimitExceeded));
    }

    #[test]
    fn bad_memory_access_faults() {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("f"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 2,
            frame_size: 0,
            body: vec![
                Instr::Const { dst: 0, value: 0x10 }, // below data base
                Instr::Load { dst: 1, addr: 0, offset: 0, width: Width::W8 },
                Instr::Ret { value: Some(1) },
            ],
        });
        let mut m = Machine::new(link_one(o, "f")).unwrap();
        assert!(matches!(m.call("f", &[]), Err(Fault::MemOutOfBounds { .. })));
    }

    #[test]
    fn indirect_call_through_function_address() {
        let mut o = ObjectFile::new("t.o");
        let g = o.add_symbol(Symbol::func("g"));
        let f = o.add_symbol(Symbol::func("f"));
        o.funcs.push(FuncDef {
            sym: g,
            params: 1,
            nregs: 2,
            frame_size: 0,
            body: vec![
                Instr::Const { dst: 1, value: 2 },
                Instr::Bin { op: BinOp::Mul, dst: 1, a: 0, b: 1 },
                Instr::Ret { value: Some(1) },
            ],
        });
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 2,
            frame_size: 0,
            body: vec![
                Instr::Addr { dst: 0, sym: g, offset: 0 },
                Instr::Const { dst: 1, value: 21 },
                Instr::CallInd { dst: Some(1), target: 0, args: vec![1] },
                Instr::Ret { value: Some(1) },
            ],
        });
        let mut m = Machine::new(link_one(o, "f")).unwrap();
        assert_eq!(m.call("f", &[]).unwrap(), 42);
        assert_eq!(m.counters().indirect_calls, 1);
    }

    #[test]
    fn indirect_call_costs_more_than_direct() {
        // Same callee, called directly vs. indirectly.
        let build = |indirect: bool| {
            let mut o = ObjectFile::new("t.o");
            let g = o.add_symbol(Symbol::func("g"));
            let f = o.add_symbol(Symbol::func("f"));
            o.funcs.push(FuncDef {
                sym: g,
                params: 0,
                nregs: 1,
                frame_size: 0,
                body: vec![Instr::Const { dst: 0, value: 1 }, Instr::Ret { value: Some(0) }],
            });
            let body = if indirect {
                vec![
                    Instr::Addr { dst: 0, sym: g, offset: 0 },
                    Instr::CallInd { dst: Some(0), target: 0, args: vec![] },
                    Instr::Ret { value: Some(0) },
                ]
            } else {
                vec![
                    Instr::Nop,
                    Instr::Call { dst: Some(0), target: g, args: vec![] },
                    Instr::Ret { value: Some(0) },
                ]
            };
            o.funcs.push(FuncDef { sym: f, params: 0, nregs: 1, frame_size: 0, body });
            let mut m = Machine::with_costs(link_one(o, "f"), CostModel::no_icache()).unwrap();
            m.call("f", &[]).unwrap();
            m.counters().cycles
        };
        assert!(build(true) > build(false));
    }

    #[test]
    fn counters_reset_keeps_cache_warm() {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("f"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 1,
            frame_size: 0,
            body: vec![Instr::Const { dst: 0, value: 1 }, Instr::Ret { value: Some(0) }],
        });
        let mut m = Machine::new(link_one(o, "f")).unwrap();
        m.call("f", &[]).unwrap();
        let cold = m.counters().icache_misses;
        assert!(cold > 0);
        m.reset_counters();
        m.call("f", &[]).unwrap();
        assert_eq!(m.counters().icache_misses, 0, "cache stays warm across reset");
        m.flush_icache();
        m.reset_counters();
        m.call("f", &[]).unwrap();
        assert_eq!(m.counters().icache_misses, cold);
    }

    #[test]
    fn stack_overflow_on_infinite_recursion() {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("rec"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 1,
            frame_size: 64,
            body: vec![
                Instr::Call { dst: Some(0), target: f, args: vec![] },
                Instr::Ret { value: Some(0) },
            ],
        });
        let mut m = Machine::new(link_one(o, "rec")).unwrap();
        let r = m.call("rec", &[]);
        assert!(
            matches!(r, Err(Fault::StackOverflow { .. }) | Err(Fault::CallDepthExceeded)),
            "got {r:?}"
        );
    }

    #[test]
    fn profiling_records_edges_and_instruction_counts() {
        // f calls g twice directly, calls h once indirectly, and halts.
        let mut o = ObjectFile::new("t.o");
        let g = o.add_symbol(Symbol::func("g"));
        let h = o.add_symbol(Symbol::func("h"));
        let halt = o.add_symbol(Symbol::undef("__halt"));
        let f = o.add_symbol(Symbol::func("f"));
        let leaf = |sym, v| FuncDef {
            sym,
            params: 0,
            nregs: 1,
            frame_size: 0,
            body: vec![Instr::Const { dst: 0, value: v }, Instr::Ret { value: Some(0) }],
        };
        o.funcs.push(leaf(g, 1));
        o.funcs.push(leaf(h, 2));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 2,
            frame_size: 0,
            body: vec![
                Instr::Call { dst: Some(0), target: g, args: vec![] },
                Instr::Call { dst: Some(0), target: g, args: vec![] },
                Instr::Addr { dst: 1, sym: h, offset: 0 },
                Instr::CallInd { dst: Some(0), target: 1, args: vec![] },
                Instr::Const { dst: 0, value: 0 },
                Instr::Call { dst: None, target: halt, args: vec![0] },
            ],
        });
        let mut m = Machine::new(link_one(o, "f")).unwrap();
        m.set_profiling(true);
        assert_eq!(m.run_entry().unwrap(), 0);
        let p = m.profile();
        let edge = |caller: &str, callee: &str, indirect: bool| {
            p.edges
                .iter()
                .find(|e| e.caller == caller && e.callee == callee && e.indirect == indirect)
                .map(|e| e.count)
        };
        assert_eq!(edge("f", "g", false), Some(2));
        assert_eq!(edge("f", "h", true), Some(1));
        assert_eq!(edge("f", "__halt", false), Some(1));
        let instrs = |name: &str| p.funcs.iter().find(|x| x.name == name).map(|x| x.instructions);
        assert_eq!(instrs("g"), Some(4));
        assert_eq!(instrs("h"), Some(2));
        assert_eq!(instrs("f"), Some(6));
        // Round-trip through the serialized form.
        assert_eq!(Profile::from_json(&p.to_json()).unwrap(), p);
        // clear_profile drops everything.
        m.clear_profile();
        assert!(m.profile().is_empty());
    }

    #[test]
    fn profiling_off_records_nothing_and_changes_no_counters() {
        let build = |profiling: bool| {
            let mut o = ObjectFile::new("t.o");
            let g = o.add_symbol(Symbol::func("g"));
            let f = o.add_symbol(Symbol::func("f"));
            o.funcs.push(FuncDef {
                sym: g,
                params: 0,
                nregs: 1,
                frame_size: 0,
                body: vec![Instr::Const { dst: 0, value: 1 }, Instr::Ret { value: Some(0) }],
            });
            o.funcs.push(FuncDef {
                sym: f,
                params: 0,
                nregs: 1,
                frame_size: 0,
                body: vec![
                    Instr::Call { dst: Some(0), target: g, args: vec![] },
                    Instr::Ret { value: Some(0) },
                ],
            });
            let mut m = Machine::new(link_one(o, "f")).unwrap();
            m.set_profiling(profiling);
            m.call("f", &[]).unwrap();
            (m.counters(), m.profile())
        };
        let (on_counters, on_profile) = build(true);
        let (off_counters, off_profile) = build(false);
        assert_eq!(on_counters, off_counters, "profiling must not perturb counters");
        assert!(off_profile.is_empty());
        assert!(!on_profile.is_empty());
    }

    #[test]
    fn trace_and_clock() {
        let mut o = ObjectFile::new("t.o");
        let clock = o.add_symbol(Symbol::undef("__clock"));
        let trace = o.add_symbol(Symbol::undef("__trace"));
        let f = o.add_symbol(Symbol::func("f"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 1,
            frame_size: 0,
            body: vec![
                Instr::Call { dst: Some(0), target: clock, args: vec![] },
                Instr::Call { dst: None, target: trace, args: vec![0] },
                Instr::Ret { value: None },
            ],
        });
        let mut m = Machine::new(link_one(o, "f")).unwrap();
        m.call("f", &[]).unwrap();
        assert_eq!(m.trace.len(), 1);
        assert!(m.trace[0] > 0);
    }
}
