//! Snooping-bus MESI data caches.
//!
//! The multi-core machine shares one guest memory through a [`Bus`]
//! connecting per-core write-back [`DCache`]s. Coherence is classic
//! snooping MESI: every miss is a bus transaction (`BusRd` for reads,
//! `BusRdX` for write misses, `BusUpgr` for writes that hit a Shared
//! line), every other cache snoops it, and a Modified copy elsewhere is
//! flushed to memory and downgraded (read) or invalidated (write) before
//! the requester proceeds.
//!
//! Write-backs are *delayed*: evicting a Modified line does not touch
//! memory immediately but queues a write-back event on the bus. The queue
//! drains one event per subsequent bus transaction (modelling a victim /
//! store buffer that competes with demand traffic for the bus), and any
//! transaction that touches a queued line drains that line's event first —
//! so memory order is always correct, only the *timing* of the write-back
//! is deferred. [`Bus::backing_synced`] gives the memory image with all
//! pending events and dirty lines applied, without perturbing any state.
//!
//! The caches carry real data, not just tags: in coherent mode every guest
//! load and store goes through the bus, Modified lines live only in the
//! owning cache until flushed, and the MESI proptests check final-memory
//! equality against a flat-memory oracle — a tag-only model could not
//! fail those tests, so it would not be testing anything.

use std::collections::VecDeque;

/// Eraser lockset state of one watched byte (Savage et al., SOSP '97).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShadowState {
    /// Never accessed since the checker was armed.
    Virgin,
    /// Accessed by exactly one core so far (initialization pattern).
    Exclusive,
    /// Read by multiple cores, never written after the second arrived.
    Shared,
    /// Written with multiple cores involved; lockset violations report.
    SharedModified,
}

/// Shadow word for one watched byte: Eraser state machine plus the
/// candidate lockset (bitmask over the registered lock words).
#[derive(Debug, Clone, Copy)]
struct ShadowCell {
    state: ShadowState,
    /// Owning core while `Exclusive`.
    owner: u8,
    /// Candidate lockset; starts at "all locks" when the second core
    /// arrives and is intersected with the accessor's held set after.
    lockset: u32,
    /// Index into the lock-word table if this byte *is* a lock word
    /// (lock words are the synchronization itself, never checked).
    lock_idx: u8,
    /// Excluded from checking — the dynamic mirror of a static
    /// `#[allow(atomicity_hint)]` on a deliberately approximate counter.
    exempt: bool,
    /// A violation was already reported for this byte.
    reported: bool,
}

const NOT_A_LOCK: u8 = u8::MAX;

/// One dynamic lockset violation: a byte in `SharedModified` state was
/// accessed while its candidate lockset was empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceEvent {
    /// Guest address of the first violating byte.
    pub addr: u64,
    /// Core performing the violating access.
    pub core: usize,
    /// Whether the violating access was a store.
    pub write: bool,
}

/// The dynamic race oracle: shadows every coherent guest load/store with
/// the accessing core's currently-held lock-word set and runs the Eraser
/// state machine per watched byte. Piggybacks on the bus (all coherent
/// traffic already funnels through [`Bus::read`]/[`Bus::write`]); charges
/// no cycles, so enabling it perturbs neither timing nor Fast/Reference
/// bit-identity. DMA traffic is host-side and exempt.
#[derive(Debug)]
struct RaceCheck {
    /// Watched range `[base, base + cells.len())` — the static data
    /// segment; stacks and code are per-core or read-only.
    base: u64,
    cells: Vec<ShadowCell>,
    /// Registered lock words as `(addr, len)`; at most 32.
    locks: Vec<(u64, u64)>,
    /// Per-core held-lock bitmask, updated by stores to lock words
    /// (nonzero store = acquire, zero store = release — the spin idiom).
    held: Vec<u32>,
    events: Vec<RaceEvent>,
}

impl RaceCheck {
    fn new(base: u64, len: usize, locks: &[(u64, u64)], ncores: usize) -> RaceCheck {
        assert!(locks.len() <= 32, "the race oracle tracks at most 32 lock words");
        let mut cells = vec![
            ShadowCell {
                state: ShadowState::Virgin,
                owner: 0,
                lockset: u32::MAX,
                lock_idx: NOT_A_LOCK,
                exempt: false,
                reported: false,
            };
            len
        ];
        for (i, &(laddr, llen)) in locks.iter().enumerate() {
            for b in laddr..laddr + llen {
                if b >= base && b < base + len as u64 {
                    cells[(b - base) as usize].lock_idx = i as u8;
                }
            }
        }
        RaceCheck { base, cells, locks: locks.to_vec(), held: vec![0; ncores], events: Vec::new() }
    }

    /// Update `core`'s held set if this store hits a lock word: any
    /// nonzero byte stored is an acquire, an all-zero store a release.
    fn note_store(&mut self, core: usize, addr: u64, bytes: &[u8]) {
        for (i, &(laddr, llen)) in self.locks.iter().enumerate() {
            let end = addr + bytes.len() as u64;
            if addr < laddr + llen && laddr < end {
                if bytes.iter().any(|&b| b != 0) {
                    self.held[core] |= 1 << i;
                } else {
                    self.held[core] &= !(1 << i);
                }
            }
        }
    }

    /// Run the Eraser transition for every watched byte of the access.
    fn access(&mut self, core: usize, addr: u64, len: usize, write: bool) {
        let held = self.held[core];
        let end = (addr + len as u64).min(self.base + self.cells.len() as u64);
        let start = addr.max(self.base);
        let mut event_pushed = false;
        for a in start..end {
            let cell = &mut self.cells[(a - self.base) as usize];
            if cell.lock_idx != NOT_A_LOCK || cell.exempt {
                continue;
            }
            match cell.state {
                ShadowState::Virgin => {
                    cell.state = ShadowState::Exclusive;
                    cell.owner = core as u8;
                }
                ShadowState::Exclusive if cell.owner == core as u8 => {}
                ShadowState::Exclusive => {
                    // Second core arrived: refinement starts here.
                    cell.lockset = held;
                    cell.state =
                        if write { ShadowState::SharedModified } else { ShadowState::Shared };
                }
                ShadowState::Shared => {
                    cell.lockset &= held;
                    if write {
                        cell.state = ShadowState::SharedModified;
                    }
                }
                ShadowState::SharedModified => {
                    cell.lockset &= held;
                }
            }
            if cell.state == ShadowState::SharedModified && cell.lockset == 0 && !cell.reported {
                cell.reported = true;
                // One event per violating access, not per violating byte.
                if !event_pushed {
                    event_pushed = true;
                    self.events.push(RaceEvent { addr: a, core, write });
                }
            }
        }
    }
}

/// Geometry and penalties of the per-core data caches and the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DCacheParams {
    /// Total size of each core's D-cache in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Stall cycles for a miss filled from memory (BusRd/BusRdX).
    pub miss_stall: u64,
    /// *Additional* stall cycles when the miss snoops a Modified copy out
    /// of another cache (the cache-to-cache / coherence-miss penalty).
    pub coherence_stall: u64,
    /// Stall cycles for a BusUpgr (write hit on a Shared line).
    pub upgrade_stall: u64,
    /// Stall cycles charged when a bus transaction drains one pending
    /// write-back event ahead of itself.
    pub wb_stall: u64,
}

impl Default for DCacheParams {
    fn default() -> Self {
        // Per-core 8 KiB write-back D-cache (the Pentium Pro's L1 data
        // size), 32-byte lines as elsewhere. Miss costs are deliberately
        // larger than the I-cache's: a data miss is a full bus round trip.
        DCacheParams {
            size: 8 * 1024,
            line: 32,
            miss_stall: 20,
            coherence_stall: 10,
            upgrade_stall: 6,
            wb_stall: 8,
        }
    }
}

/// MESI line states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// No valid copy.
    Invalid,
    /// Clean copy; other caches may also hold it.
    Shared,
    /// Clean copy, guaranteed to be the only cached one.
    Exclusive,
    /// Dirty copy, guaranteed to be the only cached one; memory is stale.
    Modified,
}

/// One core's direct-mapped, write-back, data-carrying cache.
#[derive(Debug, Clone)]
pub struct DCache {
    /// Tag per set.
    tags: Vec<u64>,
    /// MESI state per set.
    states: Vec<LineState>,
    /// Line data, `nlines * line` bytes.
    data: Vec<u8>,
}

impl DCache {
    fn new(nlines: usize, line: usize) -> DCache {
        DCache {
            tags: vec![u64::MAX; nlines],
            states: vec![LineState::Invalid; nlines],
            data: vec![0u8; nlines * line],
        }
    }

    /// The state of the copy of global line `lineno`, if cached.
    fn state_of(&self, lineno: u64, nlines: u64) -> LineState {
        let set = (lineno % nlines) as usize;
        if self.states[set] != LineState::Invalid && self.tags[set] == lineno / nlines {
            self.states[set]
        } else {
            LineState::Invalid
        }
    }
}

/// Cycle and event costs of one guest memory access, to be charged to the
/// *requesting* core's [`crate::PerfCounters`] by the interpreter loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCost {
    /// Bus stall cycles (miss fills, upgrades, drained write-backs).
    pub stall: u64,
    /// D-cache line misses (BusRd + BusRdX fills).
    pub dcache_misses: u64,
    /// Misses served by snooping a Modified copy out of another cache.
    pub coherence_misses: u64,
    /// Copies in *other* caches invalidated by this core's writes.
    pub invalidations: u64,
}

/// Bus-level transaction counters (not per-core; per-core effects land in
/// [`crate::PerfCounters`] via [`AccessCost`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Read-miss transactions.
    pub bus_rd: u64,
    /// Read-for-ownership transactions (write misses).
    pub bus_rdx: u64,
    /// Upgrade transactions (write hits on Shared lines).
    pub bus_upgr: u64,
    /// Write-back events applied to memory.
    pub writebacks: u64,
}

impl BusStats {
    /// Counter deltas relative to an earlier snapshot.
    pub fn delta_since(&self, earlier: &BusStats) -> BusStats {
        BusStats {
            bus_rd: self.bus_rd - earlier.bus_rd,
            bus_rdx: self.bus_rdx - earlier.bus_rdx,
            bus_upgr: self.bus_upgr - earlier.bus_upgr,
            writebacks: self.writebacks - earlier.writebacks,
        }
    }
}

/// The snooping bus: every core's D-cache, the backing guest memory, and
/// the delayed write-back event queue.
#[derive(Debug)]
pub struct Bus {
    params: DCacheParams,
    nlines: u64,
    caches: Vec<DCache>,
    /// Backing memory, covering `[mem_base, mem_base + mem.len())`.
    mem: Vec<u8>,
    mem_base: u64,
    /// Delayed write-backs: (global line number, line data).
    pending_wb: VecDeque<(u64, Vec<u8>)>,
    stats: BusStats,
    /// Optional dynamic race oracle (see [`Bus::race_check_enable`]).
    race: Option<RaceCheck>,
}

impl Bus {
    /// A bus over `mem` (based at guest address `mem_base`) with `ncores`
    /// empty caches.
    pub fn new(params: DCacheParams, mem: Vec<u8>, mem_base: u64, ncores: usize) -> Bus {
        assert!(params.line.is_power_of_two(), "line size must be a power of two");
        assert!(params.size.is_multiple_of(params.line), "size must be a multiple of line size");
        assert!(ncores >= 1, "a bus needs at least one core");
        let nlines = params.size / params.line;
        let caches =
            (0..ncores).map(|_| DCache::new(nlines as usize, params.line as usize)).collect();
        Bus {
            params,
            nlines,
            caches,
            mem,
            mem_base,
            pending_wb: VecDeque::new(),
            stats: BusStats::default(),
            race: None,
        }
    }

    /// Arm the dynamic lockset oracle over `[watch_base, watch_base +
    /// watch_len)` (the static data segment) with the given lock words.
    /// Every subsequent coherent load/store runs the Eraser state machine;
    /// no cycles are charged, so execution timing is unchanged.
    pub fn race_check_enable(&mut self, watch_base: u64, watch_len: usize, locks: &[(u64, u64)]) {
        let ncores = self.caches.len();
        self.race = Some(RaceCheck::new(watch_base, watch_len, locks, ncores));
    }

    /// Exclude address ranges from an armed oracle — the dynamic mirror
    /// of `#[allow(atomicity_hint)]` on deliberately approximate counters.
    /// No-op when the oracle is not enabled.
    pub fn race_exempt(&mut self, ranges: &[(u64, u64)]) {
        if let Some(rc) = &mut self.race {
            for &(addr, len) in ranges {
                let end = (addr + len).min(rc.base + rc.cells.len() as u64);
                for a in addr.max(rc.base)..end {
                    rc.cells[(a - rc.base) as usize].exempt = true;
                }
            }
        }
    }

    /// Lockset violations recorded so far (at most one per byte address).
    pub fn race_events(&self) -> Vec<RaceEvent> {
        self.race.as_ref().map(|r| r.events.clone()).unwrap_or_default()
    }

    /// Number of cores on the bus.
    pub fn ncores(&self) -> usize {
        self.caches.len()
    }

    /// The cache/bus parameters in use.
    pub fn params(&self) -> DCacheParams {
        self.params
    }

    /// Bus-level transaction counts so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Zero the transaction counts (cache contents stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }

    /// Lowest guest address covered by the backing memory.
    pub fn mem_base(&self) -> u64 {
        self.mem_base
    }

    /// Size of the backing memory in bytes.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }

    fn line_range(&self, addr: u64, len: usize) -> (u64, u64) {
        let first = addr / self.params.line;
        let last = (addr + (len as u64).max(1) - 1) / self.params.line;
        (first, last)
    }

    fn backing_index(&self, lineno: u64) -> usize {
        (lineno * self.params.line - self.mem_base) as usize
    }

    /// Apply one write-back event to backing memory.
    fn apply_wb(&mut self, lineno: u64, data: &[u8]) {
        let i = self.backing_index(lineno);
        self.mem[i..i + data.len()].copy_from_slice(data);
        self.stats.writebacks += 1;
    }

    /// Drain every pending write-back of `lineno` (correctness: a
    /// transaction on a line must observe its queued write-back), charging
    /// `wb_stall` per event drained.
    fn drain_line(&mut self, lineno: u64, cost: &mut AccessCost) {
        let mut i = 0;
        while i < self.pending_wb.len() {
            if self.pending_wb[i].0 == lineno {
                let (l, data) = self.pending_wb.remove(i).expect("index in range");
                self.apply_wb(l, &data);
                cost.stall += self.params.wb_stall;
            } else {
                i += 1;
            }
        }
    }

    /// Drain the oldest pending write-back, if any (timing: each bus
    /// transaction retires one delayed event ahead of itself).
    fn drain_one(&mut self, cost: &mut AccessCost) {
        if let Some((l, data)) = self.pending_wb.pop_front() {
            self.apply_wb(l, &data);
            cost.stall += self.params.wb_stall;
        }
    }

    /// Evict whatever occupies `set` in `core`'s cache; a Modified victim
    /// queues a delayed write-back event.
    fn evict(&mut self, core: usize, set: usize) {
        let c = &mut self.caches[core];
        if c.states[set] == LineState::Modified {
            let line = self.params.line as usize;
            let lineno = c.tags[set] * self.nlines + set as u64;
            let data = c.data[set * line..(set + 1) * line].to_vec();
            c.states[set] = LineState::Invalid;
            self.pending_wb.push_back((lineno, data));
        } else {
            c.states[set] = LineState::Invalid;
        }
    }

    /// Bring global line `lineno` into `core`'s cache with read (shared)
    /// or write (exclusive/modified) permission, running the full snooping
    /// protocol. The workhorse behind [`Bus::read`] and [`Bus::write`].
    fn ensure(&mut self, core: usize, lineno: u64, for_write: bool, cost: &mut AccessCost) {
        let set = (lineno % self.nlines) as usize;
        let tag = lineno / self.nlines;
        let state = self.caches[core].state_of(lineno, self.nlines);
        if state != LineState::Invalid {
            if !for_write {
                return;
            }
            match state {
                LineState::Modified => return,
                LineState::Exclusive => {
                    // Silent E→M upgrade: no bus transaction needed.
                    self.caches[core].states[set] = LineState::Modified;
                    return;
                }
                LineState::Shared => {
                    // BusUpgr: invalidate every other copy.
                    self.stats.bus_upgr += 1;
                    self.drain_one(cost);
                    for o in 0..self.caches.len() {
                        if o != core
                            && self.caches[o].state_of(lineno, self.nlines) != LineState::Invalid
                        {
                            self.caches[o].states[set] = LineState::Invalid;
                            cost.invalidations += 1;
                        }
                    }
                    self.caches[core].states[set] = LineState::Modified;
                    cost.stall += self.params.upgrade_stall;
                    return;
                }
                LineState::Invalid => unreachable!(),
            }
        }

        // Miss: BusRd (read) or BusRdX (read-for-ownership).
        cost.dcache_misses += 1;
        self.evict(core, set);
        self.drain_line(lineno, cost);
        self.drain_one(cost);

        // Snoop the other caches.
        let mut shared = false;
        let mut dirty_transfer = false;
        let line = self.params.line as usize;
        for o in 0..self.caches.len() {
            if o == core {
                continue;
            }
            let ostate = self.caches[o].state_of(lineno, self.nlines);
            if ostate == LineState::Invalid {
                continue;
            }
            if ostate == LineState::Modified {
                // Flush the dirty copy to memory so the fill below (and
                // memory itself) observe the latest data.
                let i = self.backing_index(lineno);
                let src = &self.caches[o].data[set * line..(set + 1) * line];
                self.mem[i..i + line].copy_from_slice(src);
                dirty_transfer = true;
            }
            if for_write {
                self.caches[o].states[set] = LineState::Invalid;
                cost.invalidations += 1;
            } else {
                self.caches[o].states[set] = LineState::Shared;
                shared = true;
            }
        }
        if dirty_transfer {
            cost.coherence_misses += 1;
            cost.stall += self.params.coherence_stall;
        }

        // Fill from (now current) memory.
        let i = self.backing_index(lineno);
        let c = &mut self.caches[core];
        c.data[set * line..(set + 1) * line].copy_from_slice(&self.mem[i..i + line]);
        c.tags[set] = tag;
        c.states[set] = if for_write {
            self.stats.bus_rdx += 1;
            LineState::Modified
        } else {
            self.stats.bus_rd += 1;
            if shared {
                LineState::Shared
            } else {
                LineState::Exclusive
            }
        };
        cost.stall += self.params.miss_stall;
    }

    /// Guest load: bring every touched line in with read permission and
    /// copy the bytes out of `core`'s cache. The caller has already
    /// bounds-checked `[addr, addr + out.len())`.
    pub fn read(&mut self, core: usize, addr: u64, out: &mut [u8]) -> AccessCost {
        if let Some(rc) = self.race.as_mut() {
            rc.access(core, addr, out.len(), false);
        }
        let mut cost = AccessCost::default();
        let (first, last) = self.line_range(addr, out.len());
        for lineno in first..=last {
            self.ensure(core, lineno, false, &mut cost);
        }
        self.copy_from_cache(core, addr, out);
        cost
    }

    /// Guest store: bring every touched line in with write permission and
    /// write the bytes into `core`'s cache (memory is updated at
    /// write-back time).
    pub fn write(&mut self, core: usize, addr: u64, bytes: &[u8]) -> AccessCost {
        if let Some(rc) = self.race.as_mut() {
            rc.access(core, addr, bytes.len(), true);
            rc.note_store(core, addr, bytes);
        }
        let mut cost = AccessCost::default();
        let (first, last) = self.line_range(addr, bytes.len());
        for lineno in first..=last {
            self.ensure(core, lineno, true, &mut cost);
        }
        let line = self.params.line as usize;
        let mut off = 0usize;
        while off < bytes.len() {
            let a = addr + off as u64;
            let lineno = a / self.params.line;
            let set = (lineno % self.nlines) as usize;
            let in_line = (a % self.params.line) as usize;
            let n = (line - in_line).min(bytes.len() - off);
            self.caches[core].data[set * line + in_line..set * line + in_line + n]
                .copy_from_slice(&bytes[off..off + n]);
            off += n;
        }
        cost
    }

    fn copy_from_cache(&self, core: usize, addr: u64, out: &mut [u8]) {
        let line = self.params.line as usize;
        let mut off = 0usize;
        while off < out.len() {
            let a = addr + off as u64;
            let lineno = a / self.params.line;
            let set = (lineno % self.nlines) as usize;
            let in_line = (a % self.params.line) as usize;
            let n = (line - in_line).min(out.len() - off);
            out[off..off + n].copy_from_slice(
                &self.caches[core].data[set * line + in_line..set * line + in_line + n],
            );
            off += n;
        }
    }

    /// Host/device read (packet transmit, string reads): coherent-DMA
    /// semantics — queued write-backs of the touched lines are applied and
    /// Modified copies flushed to memory (staying Modified), then the
    /// bytes come from memory. No core is charged.
    pub fn dma_read(&mut self, addr: u64, out: &mut [u8]) {
        let mut scratch = AccessCost::default();
        let (first, last) = self.line_range(addr, out.len());
        let line = self.params.line as usize;
        for lineno in first..=last {
            self.drain_line(lineno, &mut scratch);
            let set = (lineno % self.nlines) as usize;
            for o in 0..self.caches.len() {
                if self.caches[o].state_of(lineno, self.nlines) == LineState::Modified {
                    let i = self.backing_index(lineno);
                    let src = &self.caches[o].data[set * line..(set + 1) * line];
                    self.mem[i..i + line].copy_from_slice(src);
                }
            }
        }
        let i = (addr - self.mem_base) as usize;
        out.copy_from_slice(&self.mem[i..i + out.len()]);
    }

    /// Host/device write (packet receive, input staging): coherent-DMA
    /// semantics — queued write-backs are applied first, dirty copies
    /// flushed, every cached copy of the touched lines invalidated, then
    /// the bytes land in memory. No core is charged.
    pub fn dma_write(&mut self, addr: u64, bytes: &[u8]) {
        let mut scratch = AccessCost::default();
        let (first, last) = self.line_range(addr, bytes.len());
        let line = self.params.line as usize;
        for lineno in first..=last {
            self.drain_line(lineno, &mut scratch);
            let set = (lineno % self.nlines) as usize;
            for o in 0..self.caches.len() {
                let st = self.caches[o].state_of(lineno, self.nlines);
                if st == LineState::Invalid {
                    continue;
                }
                if st == LineState::Modified {
                    // A partial DMA write must merge with the dirty data.
                    let i = self.backing_index(lineno);
                    let src = &self.caches[o].data[set * line..(set + 1) * line];
                    self.mem[i..i + line].copy_from_slice(src);
                }
                self.caches[o].states[set] = LineState::Invalid;
            }
        }
        let i = (addr - self.mem_base) as usize;
        self.mem[i..i + bytes.len()].copy_from_slice(bytes);
    }

    /// The memory image with every pending write-back and every Modified
    /// line applied — what memory *will* contain once all delayed events
    /// retire. Pure observation: no cache or queue state changes.
    pub fn backing_synced(&self) -> Vec<u8> {
        let mut mem = self.mem.clone();
        for (lineno, data) in &self.pending_wb {
            let i = self.backing_index(*lineno);
            mem[i..i + data.len()].copy_from_slice(data);
        }
        let line = self.params.line as usize;
        for c in &self.caches {
            for set in 0..c.states.len() {
                if c.states[set] == LineState::Modified {
                    let lineno = c.tags[set] * self.nlines + set as u64;
                    let i = self.backing_index(lineno);
                    mem[i..i + line].copy_from_slice(&c.data[set * line..(set + 1) * line]);
                }
            }
        }
        mem
    }

    /// Check the MESI protocol invariants over all caches:
    ///
    /// 1. a line has at most one Modified/Exclusive copy, and such a copy
    ///    is the *only* cached copy (so: never two M copies, and a Shared
    ///    copy implies no M elsewhere);
    /// 2. every clean (Shared/Exclusive) copy's data matches the synced
    ///    memory image.
    pub fn check_invariants(&self) -> Result<(), String> {
        use std::collections::BTreeMap;
        let mut copies: BTreeMap<u64, Vec<(usize, LineState)>> = BTreeMap::new();
        for (core, c) in self.caches.iter().enumerate() {
            for set in 0..c.states.len() {
                if c.states[set] != LineState::Invalid {
                    let lineno = c.tags[set] * self.nlines + set as u64;
                    copies.entry(lineno).or_default().push((core, c.states[set]));
                }
            }
        }
        for (lineno, holders) in &copies {
            let exclusive = holders
                .iter()
                .filter(|(_, s)| matches!(s, LineState::Modified | LineState::Exclusive))
                .count();
            if exclusive > 1 {
                return Err(format!("line {lineno}: multiple M/E copies: {holders:?}"));
            }
            if exclusive == 1 && holders.len() > 1 {
                return Err(format!("line {lineno}: M/E copy is not exclusive: {holders:?}"));
            }
        }
        let synced = self.backing_synced();
        let line = self.params.line as usize;
        for (core, c) in self.caches.iter().enumerate() {
            for set in 0..c.states.len() {
                let st = c.states[set];
                if st == LineState::Shared || st == LineState::Exclusive {
                    let lineno = c.tags[set] * self.nlines + set as u64;
                    let i = self.backing_index(lineno);
                    if c.data[set * line..(set + 1) * line] != synced[i..i + line] {
                        return Err(format!(
                            "line {lineno}: clean copy in core {core} disagrees with memory"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The state of `lineno`'s copy in `core`'s cache (for tests).
    pub fn line_state(&self, core: usize, addr: u64) -> LineState {
        self.caches[core].state_of(addr / self.params.line, self.nlines)
    }

    /// Number of queued (not yet applied) write-back events.
    pub fn pending_writebacks(&self) -> usize {
        self.pending_wb.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bus(ncores: usize) -> Bus {
        // 4 lines of 32 bytes per cache, 1 KiB of memory at base 0x1000.
        let params = DCacheParams {
            size: 128,
            line: 32,
            miss_stall: 20,
            coherence_stall: 10,
            upgrade_stall: 6,
            wb_stall: 8,
        };
        Bus::new(params, vec![0u8; 1024], 0x1000, ncores)
    }

    #[test]
    fn read_miss_then_hit_is_exclusive() {
        let mut b = small_bus(2);
        let mut buf = [0u8; 4];
        let c = b.read(0, 0x1000, &mut buf);
        assert_eq!(c.dcache_misses, 1);
        assert_eq!(c.stall, 20);
        assert_eq!(b.line_state(0, 0x1000), LineState::Exclusive);
        let c = b.read(0, 0x1004, &mut buf);
        assert_eq!(c, AccessCost::default());
    }

    #[test]
    fn second_reader_shares() {
        let mut b = small_bus(2);
        let mut buf = [0u8; 4];
        b.read(0, 0x1000, &mut buf);
        b.read(1, 0x1000, &mut buf);
        assert_eq!(b.line_state(0, 0x1000), LineState::Shared);
        assert_eq!(b.line_state(1, 0x1000), LineState::Shared);
        b.check_invariants().unwrap();
    }

    #[test]
    fn write_hit_on_shared_upgrades_and_invalidates() {
        let mut b = small_bus(2);
        let mut buf = [0u8; 4];
        b.read(0, 0x1000, &mut buf);
        b.read(1, 0x1000, &mut buf);
        let c = b.write(0, 0x1000, &[1, 2, 3, 4]);
        assert_eq!(c.invalidations, 1);
        assert_eq!(c.dcache_misses, 0);
        assert_eq!(b.stats().bus_upgr, 1);
        assert_eq!(b.line_state(0, 0x1000), LineState::Modified);
        assert_eq!(b.line_state(1, 0x1000), LineState::Invalid);
        b.check_invariants().unwrap();
    }

    #[test]
    fn dirty_snoop_is_a_coherence_miss() {
        let mut b = small_bus(2);
        b.write(0, 0x1000, &[7; 8]);
        let mut buf = [0u8; 8];
        let c = b.read(1, 0x1000, &mut buf);
        assert_eq!(buf, [7; 8]);
        assert_eq!(c.coherence_misses, 1);
        assert_eq!(c.stall, 20 + 10);
        // Dirty copy was flushed and downgraded to Shared.
        assert_eq!(b.line_state(0, 0x1000), LineState::Shared);
        assert_eq!(b.line_state(1, 0x1000), LineState::Shared);
        b.check_invariants().unwrap();
    }

    #[test]
    fn eviction_queues_a_delayed_writeback() {
        let mut b = small_bus(1);
        b.write(0, 0x1000, &[9; 4]);
        // 128 bytes later maps to the same set with a different tag.
        let mut buf = [0u8; 4];
        b.read(0, 0x1000 + 128, &mut buf);
        // The dirty victim is queued, and the fetch transaction drained it
        // (drain-one policy), so memory already has the data here; what
        // matters is that a fresh read sees it.
        b.read(0, 0x1000, &mut buf);
        assert_eq!(buf, [9; 4]);
        b.check_invariants().unwrap();
    }

    #[test]
    fn queued_writeback_is_drained_before_a_refetch() {
        let mut b = small_bus(2);
        b.write(0, 0x1000, &[5; 4]);
        // Evict via a conflicting line; the write-back is now pending.
        let mut buf = [0u8; 4];
        b.write(0, 0x1000 + 128, &[1; 4]);
        // Another core reads the original line: must see 5s even though
        // the write-back may still be queued.
        b.read(1, 0x1000, &mut buf);
        assert_eq!(buf, [5; 4]);
        b.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_invalidates_all_copies() {
        let mut b = small_bus(3);
        let mut buf = [0u8; 4];
        b.read(0, 0x1000, &mut buf);
        b.read(1, 0x1000, &mut buf);
        let c = b.write(2, 0x1000, &[1; 4]);
        assert_eq!(c.invalidations, 2);
        assert_eq!(b.stats().bus_rdx, 1);
        assert_eq!(b.line_state(0, 0x1000), LineState::Invalid);
        assert_eq!(b.line_state(1, 0x1000), LineState::Invalid);
        assert_eq!(b.line_state(2, 0x1000), LineState::Modified);
        b.check_invariants().unwrap();
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut b = small_bus(1);
        let mut buf = [0u8; 8];
        let c = b.read(0, 0x1000 + 28, &mut buf);
        assert_eq!(c.dcache_misses, 2);
    }

    #[test]
    fn dma_write_invalidates_and_dma_read_sees_dirty_data() {
        let mut b = small_bus(2);
        b.write(0, 0x1000, &[3; 4]);
        let mut buf = [0u8; 4];
        b.dma_read(0x1000, &mut buf);
        assert_eq!(buf, [3; 4]);
        // Still Modified (DMA read does not downgrade).
        assert_eq!(b.line_state(0, 0x1000), LineState::Modified);
        b.dma_write(0x1000, &[8; 4]);
        assert_eq!(b.line_state(0, 0x1000), LineState::Invalid);
        let mut buf2 = [0u8; 4];
        b.read(1, 0x1000, &mut buf2);
        assert_eq!(buf2, [8; 4]);
        b.check_invariants().unwrap();
    }

    #[test]
    fn race_check_flags_unlocked_shared_write() {
        let mut b = small_bus(2);
        // Lock word at 0x1200, watched data covers the whole kilobyte.
        b.race_check_enable(0x1000, 1024, &[(0x1200, 8)]);
        // Core 0 initializes the counter: Virgin -> Exclusive, no report.
        b.write(0, 0x1100, &[1; 8]);
        assert!(b.race_events().is_empty());
        // Core 1 writes it with no lock held: SharedModified, empty set.
        b.write(1, 0x1100, &[2; 8]);
        let ev = b.race_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0], RaceEvent { addr: 0x1100, core: 1, write: true });
        // Further accesses to the same bytes do not re-report.
        b.write(0, 0x1100, &[3; 8]);
        assert_eq!(b.race_events().len(), 1);
    }

    #[test]
    fn race_check_accepts_consistent_locking() {
        let mut b = small_bus(2);
        b.race_check_enable(0x1000, 1024, &[(0x1200, 8)]);
        let one = 1u64.to_le_bytes();
        let zero = 0u64.to_le_bytes();
        for core in [0usize, 1, 0, 1] {
            b.write(core, 0x1200, &one); // acquire
            let mut v = [0u8; 8];
            b.read(core, 0x1100, &mut v);
            b.write(core, 0x1100, &[5; 8]);
            b.write(core, 0x1200, &zero); // release
        }
        assert!(b.race_events().is_empty());
        b.check_invariants().unwrap();
    }

    #[test]
    fn race_check_read_sharing_is_silent_but_mixed_lock_write_reports() {
        let mut b = small_bus(2);
        b.race_check_enable(0x1000, 1024, &[(0x1200, 8), (0x1208, 8)]);
        // Read-only sharing never reports, even with no locks held.
        b.write(0, 0x1080, &[9; 8]);
        let mut v = [0u8; 8];
        b.read(1, 0x1080, &mut v);
        b.read(0, 0x1080, &mut v);
        assert!(b.race_events().is_empty());
        // Two cores writing the same word under *different* locks: the
        // candidate lockset intersects to empty and reports.
        let one = 1u64.to_le_bytes();
        let zero = 0u64.to_le_bytes();
        b.write(0, 0x1200, &one);
        b.write(0, 0x1100, &[1; 8]);
        b.write(0, 0x1200, &zero);
        b.write(1, 0x1208, &one);
        b.write(1, 0x1100, &[2; 8]);
        b.write(1, 0x1208, &zero);
        // Refinement starts at the second core, so the third access is
        // where {lock A} ∩ {lock B} collapses to ∅.
        assert!(b.race_events().is_empty());
        b.write(0, 0x1200, &one);
        b.write(0, 0x1100, &[3; 8]);
        b.write(0, 0x1200, &zero);
        let ev = b.race_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].core, 0);
    }

    #[test]
    fn backing_synced_observes_without_mutating() {
        let mut b = small_bus(2);
        b.write(0, 0x1000, &[4; 4]);
        let before = b.line_state(0, 0x1000);
        let synced = b.backing_synced();
        assert_eq!(&synced[0..4], &[4; 4]);
        assert_eq!(b.line_state(0, 0x1000), before);
        // Raw backing memory is still stale (write-back is delayed).
        assert_eq!(b.mem[0], 0);
    }
}
