//! Direct-mapped instruction-cache simulator.
//!
//! Fetches are fed the byte address and encoded size of each executed
//! instruction; an instruction spanning a line boundary touches both lines.
//! The paper measured "the impact of stalls in the instruction fetch unit
//! because there is a risk that the inlining enabled by flattening would
//! increase the size of the router code, leading to poor I-cache
//! performance" (§6) — and found the opposite: flattening *improved*
//! I-cache behaviour. This model lets that same experiment run here: miss
//! behaviour is a pure function of code layout and execution order.

/// Geometry and penalty of the instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ICacheParams {
    /// Total size in bytes (see `Default` for the scaling rationale).
    pub size: u64,
    /// Line size in bytes. Default 32, as on the Pentium Pro.
    pub line: u64,
    /// Stall cycles charged per miss.
    pub miss_stall: u64,
}

impl Default for ICacheParams {
    fn default() -> Self {
        // Scaled-down Pentium Pro: the real chip had 8 KiB of L1 I-cache
        // against hot paths of tens of KiB; our simulated routers are much
        // smaller, so a 4 KiB cache reproduces a comparable pressure ratio.
        ICacheParams { size: 4 * 1024, line: 32, miss_stall: 14 }
    }
}

/// A direct-mapped instruction cache.
#[derive(Debug, Clone)]
pub struct ICache {
    params: ICacheParams,
    /// Tag per line; `u64::MAX` marks an empty line.
    tags: Vec<u64>,
    misses: u64,
    accesses: u64,
}

impl ICache {
    /// Create an empty cache.
    pub fn new(params: ICacheParams) -> Self {
        assert!(params.line.is_power_of_two(), "line size must be a power of two");
        assert!(params.size.is_multiple_of(params.line), "size must be a multiple of line size");
        let nlines = (params.size / params.line) as usize;
        ICache { params, tags: vec![u64::MAX; nlines], misses: 0, accesses: 0 }
    }

    /// Simulate fetching `size` bytes starting at `addr`.
    /// Returns the stall cycles incurred.
    pub fn fetch(&mut self, addr: u64, size: u64) -> u64 {
        if self.params.miss_stall == 0 {
            return 0;
        }
        let first_line = addr / self.params.line;
        let last_line = (addr + size.max(1) - 1) / self.params.line;
        let nlines = self.tags.len() as u64;
        let mut stall = 0;
        for line in first_line..=last_line {
            let set = (line % nlines) as usize;
            let tag = line / nlines;
            self.accesses += 1;
            if self.tags[set] != tag {
                self.tags[set] = tag;
                self.misses += 1;
                stall += self.params.miss_stall;
            }
        }
        stall
    }

    /// Touch one predecoded line: bump the access counter and return
    /// whether the line missed (tag mismatch, now filled). The fast
    /// interpreter's per-instruction fetch is a run of these against
    /// `(set, tag)` pairs computed once at `Machine` construction — the
    /// address arithmetic of [`ICache::fetch`] done ahead of time.
    /// Callers must skip the call entirely when `miss_stall` is zero,
    /// mirroring [`ICache::fetch`]'s early return (which counts nothing).
    #[inline]
    pub(crate) fn access_line(&mut self, set: u32, tag: u64) -> bool {
        self.accesses += 1;
        let slot = &mut self.tags[set as usize];
        if *slot != tag {
            *slot = tag;
            self.misses += 1;
            true
        } else {
            false
        }
    }

    /// A tagless placeholder left behind while the fast interpreter loop
    /// temporarily owns the real cache as a local (hot-loop counter
    /// locality); never accessed.
    pub(crate) fn placeholder(params: ICacheParams) -> Self {
        ICache { params, tags: Vec::new(), misses: 0, accesses: 0 }
    }

    /// Number of line accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidate all lines and zero the statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.misses = 0;
        self.accesses = 0;
    }

    /// Zero the statistics but keep cache contents (for warm measurements,
    /// matching the paper's steady-state packet timing).
    pub fn reset_stats(&mut self) {
        self.misses = 0;
        self.accesses = 0;
    }

    /// The cache geometry in use.
    pub fn params(&self) -> ICacheParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ICache {
        ICache::new(ICacheParams { size: 128, line: 32, miss_stall: 10 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.fetch(0, 4), 10);
        assert_eq!(c.fetch(4, 4), 0);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.accesses(), 2);
    }

    #[test]
    fn straddling_instruction_touches_two_lines() {
        let mut c = small();
        assert_eq!(c.fetch(30, 4), 20);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn conflict_eviction() {
        let mut c = small(); // 4 lines of 32B
        assert_eq!(c.fetch(0, 1), 10);
        // 128 bytes later maps to the same set with a different tag.
        assert_eq!(c.fetch(128, 1), 10);
        // Original line was evicted.
        assert_eq!(c.fetch(0, 1), 10);
    }

    #[test]
    fn compact_loop_fits_and_stops_missing() {
        let mut c = small();
        // Simulate executing a 64-byte loop body twice.
        for _ in 0..2 {
            for a in (0..64).step_by(4) {
                c.fetch(a, 4);
            }
        }
        // Only the two distinct lines miss, once each.
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn access_line_matches_fetch_for_straddle_pairs() {
        // The predecoded fast path replays a straddling fetch as two
        // `access_line` calls on consecutive (set, tag) pairs; both paths
        // must agree miss-for-miss. `small()` is 4 lines of 32 bytes, so
        // addr 30 size 4 touches lines 0 and 1 → sets 0 and 1, tag 0.
        let mut via_fetch = small();
        let mut via_lines = small();
        assert_eq!(via_fetch.fetch(30, 4), 20);
        assert!(via_lines.access_line(0, 0), "first line cold-misses");
        assert!(via_lines.access_line(1, 0), "second line cold-misses");
        assert_eq!(via_fetch.misses(), via_lines.misses());
        assert_eq!(via_fetch.accesses(), via_lines.accesses());
        // replaying the same straddle hits in both models
        assert_eq!(via_fetch.fetch(30, 4), 0);
        assert!(!via_lines.access_line(0, 0));
        assert!(!via_lines.access_line(1, 0));
        assert_eq!(via_fetch.misses(), via_lines.misses());
    }

    #[test]
    fn access_line_straddle_wraps_to_set_zero_with_next_tag() {
        // A straddle across the cache's last line wraps: addr 127 size 2
        // touches line 3 (set 3, tag 0) and line 4 (set 0, tag 1).
        let mut via_fetch = small();
        let mut via_lines = small();
        assert_eq!(via_fetch.fetch(127, 2), 20);
        assert!(via_lines.access_line(3, 0));
        assert!(via_lines.access_line(0, 1));
        // the wrapped fill evicted set 0's tag-0 occupant: refetching
        // address 0 must conflict-miss in both models
        assert_eq!(via_fetch.fetch(0, 1), 10);
        assert!(via_lines.access_line(0, 0));
        assert_eq!(via_fetch.misses(), via_lines.misses());
        assert_eq!(via_fetch.accesses(), via_lines.accesses());
    }

    #[test]
    fn disabled_cache_counts_nothing() {
        let mut c = ICache::new(ICacheParams { size: 128, line: 32, miss_stall: 0 });
        assert_eq!(c.fetch(0, 4), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut c = small();
        c.fetch(0, 4);
        c.reset();
        assert_eq!(c.misses(), 0);
        assert_eq!(c.fetch(0, 4), 10);
    }
}
