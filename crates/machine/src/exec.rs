//! The fast interpreter loop.
//!
//! Executes exactly the semantics of [`Machine::run_reference`] — same
//! results, same faults at the same `(func, pc)` sites, bit-identical
//! performance counters and profiles (differentially tested in
//! `tests/simperf.rs`) — but restructured for host throughput:
//!
//! * **Predecoded micro-ops.** Every [`RInstr`] is decoded once at
//!   `Machine` construction into a fixed-size [`UOp`]: one dense stream
//!   per function carrying the opcode (with [`cobj::ir::BinOp`],
//!   [`cobj::ir::UnOp`] and [`cobj::ir::Width`] folded into the opcode
//!   byte), the register operands, the immediate, *and* the instruction's
//!   I-cache line metadata. The hot loop does a single indexed load per
//!   guest instruction and one `match` — no enum-payload walking, no
//!   second dispatch on the operator, no separate fetch-plan stream. Call
//!   argument registers live in a per-function arena (`call_args`)
//!   instead of a `Vec` inside the instruction.
//! * **Predecoded fetch.** The I-cache lines each instruction touches are
//!   a pure function of the (immutable) code layout and cache geometry,
//!   so [`CodePlan::build_all`] computes every `(set, tag)` pair up
//!   front. The first — almost always only — line is inline in the
//!   `UOp`; the rare line-straddling tail lives in an arena. Fetch is
//!   then one [`crate::ICache::access_line`] call, no division, no
//!   address arithmetic.
//! * **Register file, program counter and I-cache in locals.** The
//!   reference loop re-fetches `frames.last_mut()` for nearly every
//!   operand access because the borrow checker can't see that
//!   `self.load(..)` leaves the frame stack alone. Here the running
//!   frame's registers are a local `Vec`, the pc is a local `usize`
//!   (synced to the [`Frame`] only across calls), and the I-cache is
//!   owned by the loop, so operand access and the hot counters compile
//!   to direct register/stack traffic.
//! * **Frame and argument pooling.** `Call` in the reference loop
//!   allocates a fresh `Vec<i64>` for the arguments and `push_frame`
//!   another for the registers, every single call. The fast loop recycles
//!   both through `Machine::buf_pool`, which persists across `call`s — a
//!   router `step()` makes hundreds of guest calls and, warm, allocates
//!   nothing.
//! * **Counters in registers.** The loop accumulates [`PerfCounters`] in
//!   a local and stores them back on exit (and around intrinsics, which
//!   may read the live cycle count via `__clock`), freeing LLVM to keep
//!   the hot counters in registers instead of memory.
//!
//! [`PerfCounters`]: crate::PerfCounters

use std::rc::Rc;

use cobj::image::{CallTarget, Image, RInstr};
use cobj::ir::{BinOp, Reg, UnOp, Width};

use crate::cache::ICacheParams;
use crate::cpu::{Fault, Frame, Machine};

/// Micro-op opcodes. Binary/unary operators and access widths are folded
/// in so the loop dispatches exactly once per guest instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// `a = imm`.
    Const,
    /// `a = b`.
    Mov,
    // `a = b <op> c`, one opcode per operator (semantics must mirror
    // `BinOp::eval` exactly; the differential proptests enforce this).
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    // `a = <op> b`, mirroring `UnOp::eval`.
    Neg,
    Not,
    BitNot,
    // `a = mem[b + imm]`, one opcode per width.
    Load1,
    Load2,
    Load4,
    Load8,
    // `mem[a + imm] = b`, one opcode per width.
    Store1,
    Store2,
    Store4,
    Store8,
    /// `a = frame_base + imm`.
    FrameAddr,
    /// `a = varargs[b]`.
    VarArg,
    /// Direct call to image function `imm`; `b` args at `call_args[c..]`,
    /// result into register `a - 1` (0 = discarded).
    CallFunc,
    /// Direct call to intrinsic `imm`; operands as [`Op::CallFunc`].
    CallIntr,
    /// Indirect call through the pointer in register `imm`; operands as
    /// [`Op::CallFunc`].
    CallInd,
    /// `pc = imm`.
    Jump,
    /// `pc = (regs[a] != 0) ? b : c`.
    Branch,
    /// Return `regs[a - 1]` (0 = return 0).
    Ret,
    Nop,
}

/// One predecoded instruction: opcode, operands, immediate, and the
/// instruction's I-cache fetch metadata (first line inline — the
/// overwhelmingly common *only* line — plus an arena reference for the
/// rare line-straddling tail).
#[derive(Debug, Clone)]
struct UOp {
    /// Immediate: constant, address offset, jump target, call target.
    imm: i64,
    /// First I-cache line's tag.
    tag: u64,
    a: u32,
    b: u32,
    c: u32,
    /// First I-cache line's set index.
    set: u32,
    /// Start of the straddled lines in [`CodePlan::rest`].
    rest: u32,
    /// Number of additional lines this instruction straddles onto.
    extra: u16,
    code: Op,
}

/// Predecoded body of one function: the micro-op stream, the call-argument
/// register arena, and the fetch-straddle arena.
pub(crate) struct CodePlan {
    ops: Vec<UOp>,
    call_args: Vec<Reg>,
    rest: Vec<(u32, u64)>,
}

/// Encode an optional register so 0 means "none" (register `r` becomes
/// `r + 1`).
fn enc_opt(r: Option<Reg>) -> u32 {
    r.map(|r| r + 1).unwrap_or(0)
}

impl CodePlan {
    /// Decode every function in `image` under the given cache geometry.
    ///
    /// Fetch metadata mirrors [`crate::ICache::fetch`]'s line arithmetic:
    /// an instruction spans `addr / line ..= (addr + size.max(1) - 1) /
    /// line`, each line mapping to set `line % nlines` with tag
    /// `line / nlines`.
    pub(crate) fn build_all(image: &Image, params: ICacheParams) -> Vec<CodePlan> {
        let nlines = params.size / params.line;
        image
            .funcs
            .iter()
            .map(|f| {
                let mut ops = Vec::with_capacity(f.body.len());
                let mut call_args: Vec<Reg> = Vec::new();
                let mut rest = Vec::new();
                for (i, instr) in f.body.iter().enumerate() {
                    let addr = f.instr_addrs[i];
                    let size = f.instr_sizes[i];
                    let first = addr / params.line;
                    let last = (addr + (size as u64).max(1) - 1) / params.line;
                    let rstart = rest.len() as u32;
                    for line in first + 1..=last {
                        rest.push(((line % nlines) as u32, line / nlines));
                    }
                    let mut op = UOp {
                        imm: 0,
                        tag: first / nlines,
                        a: 0,
                        b: 0,
                        c: 0,
                        set: (first % nlines) as u32,
                        rest: rstart,
                        extra: (last - first) as u16,
                        code: Op::Nop,
                    };
                    match instr {
                        RInstr::Const { dst, value } => {
                            op.code = Op::Const;
                            op.a = *dst;
                            op.imm = *value;
                        }
                        RInstr::Mov { dst, src } => {
                            op.code = Op::Mov;
                            op.a = *dst;
                            op.b = *src;
                        }
                        RInstr::Bin { op: bop, dst, a, b } => {
                            op.code = match bop {
                                BinOp::Add => Op::Add,
                                BinOp::Sub => Op::Sub,
                                BinOp::Mul => Op::Mul,
                                BinOp::Div => Op::Div,
                                BinOp::Rem => Op::Rem,
                                BinOp::And => Op::And,
                                BinOp::Or => Op::Or,
                                BinOp::Xor => Op::Xor,
                                BinOp::Shl => Op::Shl,
                                BinOp::Shr => Op::Shr,
                                BinOp::Eq => Op::Eq,
                                BinOp::Ne => Op::Ne,
                                BinOp::Lt => Op::Lt,
                                BinOp::Le => Op::Le,
                                BinOp::Gt => Op::Gt,
                                BinOp::Ge => Op::Ge,
                            };
                            op.a = *dst;
                            op.b = *a;
                            op.c = *b;
                        }
                        RInstr::Un { op: uop, dst, a } => {
                            op.code = match uop {
                                UnOp::Neg => Op::Neg,
                                UnOp::Not => Op::Not,
                                UnOp::BitNot => Op::BitNot,
                            };
                            op.a = *dst;
                            op.b = *a;
                        }
                        RInstr::Load { dst, addr, offset, width } => {
                            op.code = match width {
                                Width::W1 => Op::Load1,
                                Width::W2 => Op::Load2,
                                Width::W4 => Op::Load4,
                                Width::W8 => Op::Load8,
                            };
                            op.a = *dst;
                            op.b = *addr;
                            op.imm = *offset;
                        }
                        RInstr::Store { addr, offset, src, width } => {
                            op.code = match width {
                                Width::W1 => Op::Store1,
                                Width::W2 => Op::Store2,
                                Width::W4 => Op::Store4,
                                Width::W8 => Op::Store8,
                            };
                            op.a = *addr;
                            op.b = *src;
                            op.imm = *offset;
                        }
                        RInstr::FrameAddr { dst, offset } => {
                            op.code = Op::FrameAddr;
                            op.a = *dst;
                            op.imm = *offset;
                        }
                        RInstr::VarArg { dst, idx } => {
                            op.code = Op::VarArg;
                            op.a = *dst;
                            op.b = *idx;
                        }
                        RInstr::Call { dst, target, args } => {
                            op.a = enc_opt(*dst);
                            op.b = args.len() as u32;
                            op.c = call_args.len() as u32;
                            call_args.extend_from_slice(args);
                            match target {
                                CallTarget::Func(tf) => {
                                    op.code = Op::CallFunc;
                                    op.imm = *tf as i64;
                                }
                                CallTarget::Intrinsic(id) => {
                                    op.code = Op::CallIntr;
                                    op.imm = *id as i64;
                                }
                            }
                        }
                        RInstr::CallInd { dst, target, args } => {
                            op.code = Op::CallInd;
                            op.a = enc_opt(*dst);
                            op.b = args.len() as u32;
                            op.c = call_args.len() as u32;
                            op.imm = *target as i64;
                            call_args.extend_from_slice(args);
                        }
                        RInstr::Jump { target } => {
                            op.code = Op::Jump;
                            op.imm = *target as i64;
                        }
                        RInstr::Branch { cond, then_to, else_to } => {
                            op.code = Op::Branch;
                            op.a = *cond;
                            op.b = *then_to as u32;
                            op.c = *else_to as u32;
                        }
                        RInstr::Ret { value } => {
                            op.code = Op::Ret;
                            op.a = enc_opt(*value);
                        }
                        RInstr::Nop => op.code = Op::Nop,
                    }
                    ops.push(op);
                }
                CodePlan { ops, call_args, rest }
            })
            .collect()
    }
}

impl Machine {
    /// Pop a recycled buffer from the pool (or allocate the first time).
    #[inline]
    fn take_buf(&mut self) -> Vec<i64> {
        self.buf_pool.pop().unwrap_or_default()
    }

    /// Return a frame's buffers to the pool, leaving the frame empty.
    #[inline]
    fn reclaim_frame(&mut self, fr: &mut Frame) {
        self.buf_pool.push(std::mem::take(&mut fr.regs));
        self.buf_pool.push(std::mem::take(&mut fr.args));
    }

    /// Build an activation record from pooled storage. `depth` is the
    /// number of frames already live (the reference loop's `frames.len()`
    /// at its `push_frame` check). On error the argument buffer is
    /// reclaimed and machine state is untouched.
    #[inline]
    fn make_frame(
        &mut self,
        image: &Image,
        fi: u32,
        mut args: Vec<i64>,
        ret_dst: Option<Reg>,
        depth: usize,
    ) -> Result<Frame, Fault> {
        if depth >= self.limits.max_call_depth {
            self.buf_pool.push(std::mem::take(&mut args));
            return Err(Fault::CallDepthExceeded);
        }
        let func = &image.funcs[fi as usize];
        let frame_bytes = ((func.frame_size as u64) + 15) & !15;
        if self.sp < self.stack_base + frame_bytes {
            self.buf_pool.push(std::mem::take(&mut args));
            return Err(Fault::StackOverflow { func: func.name.clone() });
        }
        let saved_sp = self.sp;
        self.sp -= frame_bytes;
        let frame_base = self.sp;
        let mut regs = self.take_buf();
        regs.clear();
        regs.resize(func.nregs as usize, 0);
        let n = (func.params as usize).min(args.len()).min(regs.len());
        regs[..n].copy_from_slice(&args[..n]);
        Ok(Frame { func: fi, pc: 0, regs, args, ret_dst, saved_sp, frame_base })
    }

    /// The fast interpreter loop. Observationally identical to
    /// [`Machine::run_reference`]; see the module docs for what changed.
    ///
    /// Dispatches to one of four monomorphized copies so the hot loop
    /// carries no per-instruction `profiling` / fetch-enabled branches.
    pub(crate) fn run_fast(&mut self, fi: u32, args: &[i64]) -> Result<i64, Fault> {
        match (self.profiling, self.costs.icache.miss_stall != 0) {
            (false, true) => self.run_fast_impl::<false, true>(fi, args),
            (false, false) => self.run_fast_impl::<false, false>(fi, args),
            (true, true) => self.run_fast_impl::<true, true>(fi, args),
            (true, false) => self.run_fast_impl::<true, false>(fi, args),
        }
    }

    fn run_fast_impl<const PROFILING: bool, const FETCH: bool>(
        &mut self,
        fi: u32,
        args: &[i64],
    ) -> Result<i64, Fault> {
        let image = Rc::clone(&self.image);
        let plans = Rc::clone(&self.fetch_plans);
        let costs = self.costs.clone();
        let miss_stall = costs.icache.miss_stall;
        let max_steps = self.limits.max_steps;
        let saved_sp = self.sp;

        let mut root_args = self.take_buf();
        root_args.clear();
        root_args.extend_from_slice(args);
        let mut fr = self.make_frame(&image, fi, root_args, None, 0)?;
        // The running frame's register file and program counter live in
        // locals; `fr` keeps the rest (VarArg storage, frame geometry,
        // return linkage). `fr.pc` is only synced at call sites (as the
        // return address) and `fr.regs` whenever the frame is suspended
        // or retired.
        let mut regs: Vec<i64> = std::mem::take(&mut fr.regs);
        let mut npc: usize = 0;
        let mut func = &image.funcs[fi as usize];
        let mut plan = &plans[fi as usize];
        let mut ops = plan.ops.as_slice();
        // Suspended callers; the running frame is the local `fr`.
        let mut stack: Vec<Frame> = Vec::new();
        let mut ctr = self.counters;
        // Own the I-cache for the duration of the loop so its access/miss
        // counters live on the stack; restored after the loop (nothing
        // inside — loads, stores, intrinsics — reads it meanwhile).
        let mut icache =
            std::mem::replace(&mut self.icache, crate::ICache::placeholder(costs.icache));
        // Guest memory as a loop-owned local too: loads and stores then
        // compile to direct indexing off locals instead of round-tripping
        // through `self` (whose fields LLVM must conservatively reload).
        // Intrinsics do touch guest memory — packet and console I/O — so
        // the buffer is swapped back around each intrinsic call.
        let mut mem = std::mem::take(&mut self.mem);
        let mut mem_base = self.mem_base;
        let mut mem_top = self.mem_top;
        // Shared-bus handle in multi-core mode. A single predictable
        // `Option` branch in the Load/Store arms (always `None` on a
        // single-core machine) rather than doubling the monomorphized
        // combinations; in coherent mode `mem` is the empty placeholder
        // vector and every access goes through the bus.
        let coherence = self.coherence.clone();
        // The per-instruction base cycle cost is accumulated lazily as
        // `instructions × base` at sync points (intrinsic calls, loop
        // exit) rather than added every iteration.
        let mut synced = ctr.instructions;
        let mut steps: u64 = 0;

        let result = loop {
            steps += 1;
            if steps > max_steps {
                break Err(Fault::StepLimitExceeded);
            }
            let pc = npc;

            // Falling off the end of a function is an implicit `return 0`.
            let Some(op) = ops.get(pc) else {
                self.sp = fr.saved_sp;
                match stack.pop() {
                    Some(parent) => {
                        let dst = fr.ret_dst;
                        fr.regs = std::mem::take(&mut regs);
                        self.reclaim_frame(&mut fr);
                        fr = parent;
                        regs = std::mem::take(&mut fr.regs);
                        npc = fr.pc;
                        if let Some(d) = dst {
                            regs[d as usize] = 0;
                        }
                        func = &image.funcs[fr.func as usize];
                        plan = &plans[fr.func as usize];
                        ops = plan.ops.as_slice();
                    }
                    None => break Ok(0),
                }
                continue;
            };

            // Fetch: charge base cost + I-cache stalls off the predecoded
            // line metadata (skipped entirely when stalls are free,
            // mirroring `ICache::fetch`'s early return).
            if FETCH {
                let mut missed = u64::from(icache.access_line(op.set, op.tag));
                if op.extra != 0 {
                    let start = op.rest as usize;
                    for &(set, tag) in &plan.rest[start..start + op.extra as usize] {
                        missed += u64::from(icache.access_line(set, tag));
                    }
                }
                let stall = missed * miss_stall;
                ctr.icache_misses += missed;
                ctr.ifetch_stall_cycles += stall;
                ctr.cycles += stall;
            }
            ctr.instructions += 1;
            if PROFILING {
                self.prof_instrs[fr.func as usize] += 1;
            }

            npc = pc + 1;

            match op.code {
                Op::Const => regs[op.a as usize] = op.imm,
                Op::Mov => regs[op.a as usize] = regs[op.b as usize],
                Op::Add => {
                    regs[op.a as usize] = regs[op.b as usize].wrapping_add(regs[op.c as usize]);
                }
                Op::Sub => {
                    regs[op.a as usize] = regs[op.b as usize].wrapping_sub(regs[op.c as usize]);
                }
                Op::Mul => {
                    ctr.cycles += costs.mul;
                    regs[op.a as usize] = regs[op.b as usize].wrapping_mul(regs[op.c as usize]);
                }
                Op::Div => {
                    ctr.cycles += costs.div;
                    let bv = regs[op.c as usize];
                    if bv == 0 {
                        break Err(Fault::DivByZero { func: func.name.clone(), at: pc });
                    }
                    regs[op.a as usize] = regs[op.b as usize].wrapping_div(bv);
                }
                Op::Rem => {
                    ctr.cycles += costs.div;
                    let bv = regs[op.c as usize];
                    if bv == 0 {
                        break Err(Fault::DivByZero { func: func.name.clone(), at: pc });
                    }
                    regs[op.a as usize] = regs[op.b as usize].wrapping_rem(bv);
                }
                Op::And => regs[op.a as usize] = regs[op.b as usize] & regs[op.c as usize],
                Op::Or => regs[op.a as usize] = regs[op.b as usize] | regs[op.c as usize],
                Op::Xor => regs[op.a as usize] = regs[op.b as usize] ^ regs[op.c as usize],
                Op::Shl => {
                    let bv = regs[op.c as usize];
                    regs[op.a as usize] = regs[op.b as usize].wrapping_shl((bv & 63) as u32);
                }
                Op::Shr => {
                    let bv = regs[op.c as usize];
                    regs[op.a as usize] = regs[op.b as usize].wrapping_shr((bv & 63) as u32);
                }
                Op::Eq => {
                    regs[op.a as usize] = (regs[op.b as usize] == regs[op.c as usize]) as i64;
                }
                Op::Ne => {
                    regs[op.a as usize] = (regs[op.b as usize] != regs[op.c as usize]) as i64;
                }
                Op::Lt => {
                    regs[op.a as usize] = (regs[op.b as usize] < regs[op.c as usize]) as i64;
                }
                Op::Le => {
                    regs[op.a as usize] = (regs[op.b as usize] <= regs[op.c as usize]) as i64;
                }
                Op::Gt => {
                    regs[op.a as usize] = (regs[op.b as usize] > regs[op.c as usize]) as i64;
                }
                Op::Ge => {
                    regs[op.a as usize] = (regs[op.b as usize] >= regs[op.c as usize]) as i64;
                }
                Op::Neg => regs[op.a as usize] = regs[op.b as usize].wrapping_neg(),
                Op::Not => regs[op.a as usize] = (regs[op.b as usize] == 0) as i64,
                Op::BitNot => regs[op.a as usize] = !regs[op.b as usize],
                Op::Load1 | Op::Load2 | Op::Load4 | Op::Load8 => {
                    // Inline `Machine::load` against the loop-local memory
                    // (bounds rule and widening exactly as `mem_index`).
                    ctr.cycles += costs.load;
                    let len = match op.code {
                        Op::Load1 => 1,
                        Op::Load2 => 2,
                        Op::Load4 => 4,
                        _ => 8,
                    };
                    let a = (regs[op.b as usize] as u64).wrapping_add_signed(op.imm);
                    if a < mem_base || a.saturating_add(len) > mem_top {
                        break Err(Fault::MemOutOfBounds {
                            addr: a,
                            func: func.name.clone(),
                            at: pc,
                        });
                    }
                    regs[op.a as usize] = if let Some(co) = &coherence {
                        let mut b = [0u8; 8];
                        let cost = co.bus.borrow_mut().read(co.core, a, &mut b[..len as usize]);
                        Machine::charge_access(&mut ctr, cost);
                        match op.code {
                            Op::Load1 => b[0] as i64,
                            Op::Load2 => u16::from_le_bytes([b[0], b[1]]) as i64,
                            Op::Load4 => i32::from_le_bytes([b[0], b[1], b[2], b[3]]) as i64,
                            _ => i64::from_le_bytes(b),
                        }
                    } else {
                        let i = (a - mem_base) as usize;
                        match op.code {
                            Op::Load1 => mem[i] as i64,
                            Op::Load2 => u16::from_le_bytes([mem[i], mem[i + 1]]) as i64,
                            Op::Load4 => {
                                i32::from_le_bytes([mem[i], mem[i + 1], mem[i + 2], mem[i + 3]])
                                    as i64
                            }
                            _ => i64::from_le_bytes(mem[i..i + 8].try_into().expect("8 bytes")),
                        }
                    };
                }
                Op::Store1 | Op::Store2 | Op::Store4 | Op::Store8 => {
                    ctr.cycles += costs.store;
                    let len = match op.code {
                        Op::Store1 => 1,
                        Op::Store2 => 2,
                        Op::Store4 => 4,
                        _ => 8,
                    };
                    let a = (regs[op.a as usize] as u64).wrapping_add_signed(op.imm);
                    if a < mem_base || a.saturating_add(len) > mem_top {
                        break Err(Fault::MemOutOfBounds {
                            addr: a,
                            func: func.name.clone(),
                            at: pc,
                        });
                    }
                    let v = regs[op.b as usize];
                    if let Some(co) = &coherence {
                        let b = v.to_le_bytes();
                        let cost = co.bus.borrow_mut().write(co.core, a, &b[..len as usize]);
                        Machine::charge_access(&mut ctr, cost);
                    } else {
                        let i = (a - mem_base) as usize;
                        match op.code {
                            Op::Store1 => mem[i] = v as u8,
                            Op::Store2 => mem[i..i + 2].copy_from_slice(&(v as u16).to_le_bytes()),
                            Op::Store4 => mem[i..i + 4].copy_from_slice(&(v as u32).to_le_bytes()),
                            _ => mem[i..i + 8].copy_from_slice(&v.to_le_bytes()),
                        }
                    }
                }
                Op::FrameAddr => {
                    regs[op.a as usize] = fr.frame_base.wrapping_add_signed(op.imm) as i64;
                }
                Op::VarArg => {
                    let i = func.params as usize + regs[op.b as usize].max(0) as usize;
                    regs[op.a as usize] = fr.args.get(i).copied().unwrap_or(0);
                }
                Op::CallFunc => {
                    let argc = op.b as usize;
                    let start = op.c as usize;
                    let tf = op.imm as u32;
                    let dst = if op.a == 0 { None } else { Some(op.a - 1) };
                    ctr.cycles += costs.call_overhead + costs.call_per_arg * argc as u64;
                    ctr.calls += 1;
                    let mut argv = self.take_buf();
                    argv.clear();
                    argv.extend(
                        plan.call_args[start..start + argc].iter().map(|r| regs[*r as usize]),
                    );
                    if PROFILING {
                        *self.prof_edges.entry((fr.func, tf, false)).or_insert(0) += 1;
                    }
                    match self.make_frame(&image, tf, argv, dst, stack.len() + 1) {
                        Ok(mut callee) => {
                            fr.pc = npc;
                            fr.regs = std::mem::take(&mut regs);
                            regs = std::mem::take(&mut callee.regs);
                            stack.push(std::mem::replace(&mut fr, callee));
                            npc = 0;
                            func = &image.funcs[tf as usize];
                            plan = &plans[tf as usize];
                            ops = plan.ops.as_slice();
                        }
                        Err(e) => break Err(e),
                    }
                }
                Op::CallIntr => {
                    let argc = op.b as usize;
                    let start = op.c as usize;
                    let id = op.imm as u32;
                    let dst = op.a;
                    ctr.cycles += costs.call_overhead + costs.call_per_arg * argc as u64;
                    ctr.intrinsic_calls += 1;
                    let mut argv = self.take_buf();
                    argv.clear();
                    argv.extend(
                        plan.call_args[start..start + argc].iter().map(|r| regs[*r as usize]),
                    );
                    if PROFILING {
                        *self.prof_intrinsics.entry((fr.func, id, false)).or_insert(0) += 1;
                    }
                    let iop = self.intrinsic_ops[id as usize];
                    // Intrinsics observe (and charge) the live counters —
                    // `__clock` reads `cycles` — and touch guest memory, so
                    // sync the lazy base cycles and swap both back around
                    // the call.
                    ctr.cycles += costs.base * (ctr.instructions - synced);
                    synced = ctr.instructions;
                    self.counters = ctr;
                    std::mem::swap(&mut self.mem, &mut mem);
                    let r = self.intrinsic(iop, &argv);
                    std::mem::swap(&mut self.mem, &mut mem);
                    mem_base = self.mem_base;
                    mem_top = self.mem_top;
                    ctr = self.counters;
                    self.buf_pool.push(argv);
                    match r {
                        Ok(v) => {
                            if dst != 0 {
                                regs[(dst - 1) as usize] = v;
                            }
                        }
                        Err(e) => break Err(e),
                    }
                }
                Op::CallInd => {
                    let argc = op.b as usize;
                    let start = op.c as usize;
                    let dst = if op.a == 0 { None } else { Some(op.a - 1) };
                    ctr.cycles += costs.call_overhead
                        + costs.call_per_arg * argc as u64
                        + costs.indirect_call_penalty;
                    ctr.indirect_calls += 1;
                    let ptr = regs[op.imm as usize];
                    let mut argv = self.take_buf();
                    argv.clear();
                    argv.extend(
                        plan.call_args[start..start + argc].iter().map(|r| regs[*r as usize]),
                    );
                    if let Some(tf) = image.func_at_addr(ptr as u64) {
                        if PROFILING {
                            *self.prof_edges.entry((fr.func, tf, true)).or_insert(0) += 1;
                        }
                        match self.make_frame(&image, tf, argv, dst, stack.len() + 1) {
                            Ok(mut callee) => {
                                fr.pc = npc;
                                fr.regs = std::mem::take(&mut regs);
                                regs = std::mem::take(&mut callee.regs);
                                stack.push(std::mem::replace(&mut fr, callee));
                                npc = 0;
                                func = &image.funcs[tf as usize];
                                plan = &plans[tf as usize];
                                ops = plan.ops.as_slice();
                            }
                            Err(e) => break Err(e),
                        }
                    } else if let Some(id) = image.intrinsic_at_addr(ptr as u64) {
                        ctr.intrinsic_calls += 1;
                        if PROFILING {
                            *self.prof_intrinsics.entry((fr.func, id, true)).or_insert(0) += 1;
                        }
                        let iop = self.intrinsic_ops[id as usize];
                        ctr.cycles += costs.base * (ctr.instructions - synced);
                        synced = ctr.instructions;
                        self.counters = ctr;
                        std::mem::swap(&mut self.mem, &mut mem);
                        let r = self.intrinsic(iop, &argv);
                        std::mem::swap(&mut self.mem, &mut mem);
                        mem_base = self.mem_base;
                        mem_top = self.mem_top;
                        ctr = self.counters;
                        self.buf_pool.push(argv);
                        match r {
                            Ok(v) => {
                                if let Some(d) = dst {
                                    regs[d as usize] = v;
                                }
                            }
                            Err(e) => break Err(e),
                        }
                    } else {
                        self.buf_pool.push(argv);
                        break Err(Fault::BadFunctionPointer {
                            value: ptr,
                            func: func.name.clone(),
                            at: pc,
                        });
                    }
                }
                Op::Jump => {
                    ctr.cycles += costs.jump;
                    npc = op.imm as usize;
                }
                Op::Branch => {
                    let taken = regs[op.a as usize] != 0;
                    // Model a simple not-taken-predicted branch.
                    ctr.cycles += if taken { costs.branch_taken } else { costs.branch_not_taken };
                    npc = if taken { op.b as usize } else { op.c as usize };
                }
                Op::Ret => {
                    ctr.cycles += costs.ret_overhead;
                    let v = if op.a == 0 { 0 } else { regs[(op.a - 1) as usize] };
                    self.sp = fr.saved_sp;
                    match stack.pop() {
                        Some(parent) => {
                            let dst = fr.ret_dst;
                            fr.regs = std::mem::take(&mut regs);
                            self.reclaim_frame(&mut fr);
                            fr = parent;
                            regs = std::mem::take(&mut fr.regs);
                            npc = fr.pc;
                            if let Some(d) = dst {
                                regs[d as usize] = v;
                            }
                            func = &image.funcs[fr.func as usize];
                            plan = &plans[fr.func as usize];
                            ops = plan.ops.as_slice();
                        }
                        None => break Ok(v),
                    }
                }
                Op::Nop => {}
            }
        };

        // Sync the lazily-accumulated base cycles, store the counters,
        // cache and memory back, recycle every remaining frame (on fault
        // the whole stack is abandoned), and restore the stack pointer.
        ctr.cycles += costs.base * (ctr.instructions - synced);
        self.counters = ctr;
        self.icache = icache;
        self.mem = mem;
        fr.regs = std::mem::take(&mut regs);
        self.reclaim_frame(&mut fr);
        for mut f in stack {
            self.reclaim_frame(&mut f);
        }
        self.sp = saved_sp;
        result
    }
}
