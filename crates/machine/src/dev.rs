//! Simulated devices.
//!
//! The paper's testbed was "three 200 MHz Pentium Pro machines … directly
//! connected via DEC Tulip 10/100 Ethernet cards, with the machine in the
//! middle functioning as the IP router". Here the middle machine is the
//! simulated CPU, and the two neighbours are the benchmark harness: it
//! enqueues packets on a [`NetDev`]'s receive queue and drains the transmit
//! queue, while guest code reaches the devices through runtime intrinsics.

use std::collections::VecDeque;

/// A character console (stands in for the OSKit's serial/VGA consoles).
#[derive(Debug, Default, Clone)]
pub struct Console {
    /// Everything guest code has written.
    pub output: String,
    /// Pending input characters for `__con_getc`.
    pub input: VecDeque<u8>,
}

impl Console {
    /// Append one output character.
    pub fn putc(&mut self, c: u8) {
        self.output.push(c as char);
    }

    /// Pop one input character, if any.
    pub fn getc(&mut self) -> Option<u8> {
        self.input.pop_front()
    }

    /// Queue input for the guest.
    pub fn feed(&mut self, s: &str) {
        self.input.extend(s.bytes());
    }
}

/// A network device with receive and transmit queues.
#[derive(Debug, Default, Clone)]
pub struct NetDev {
    /// Packets waiting for the guest to receive.
    pub rx: VecDeque<Vec<u8>>,
    /// Packets the guest has transmitted.
    pub tx: VecDeque<Vec<u8>>,
    /// Count of packets dropped because a receive buffer was too small.
    pub rx_truncated: u64,
}

impl NetDev {
    /// Harness side: enqueue an incoming packet.
    pub fn inject(&mut self, pkt: Vec<u8>) {
        self.rx.push_back(pkt);
    }

    /// Harness side: dequeue a transmitted packet.
    pub fn collect(&mut self) -> Option<Vec<u8>> {
        self.tx.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn console_round_trip() {
        let mut c = Console::default();
        c.feed("hi");
        assert_eq!(c.getc(), Some(b'h'));
        assert_eq!(c.getc(), Some(b'i'));
        assert_eq!(c.getc(), None);
        c.putc(b'x');
        assert_eq!(c.output, "x");
    }

    #[test]
    fn netdev_queues_are_fifo() {
        let mut d = NetDev::default();
        d.inject(vec![1]);
        d.inject(vec![2]);
        assert_eq!(d.rx.pop_front(), Some(vec![1]));
        d.tx.push_back(vec![3]);
        d.tx.push_back(vec![4]);
        assert_eq!(d.collect(), Some(vec![3]));
        assert_eq!(d.collect(), Some(vec![4]));
        assert_eq!(d.collect(), None);
    }
}
