//! # machine — execution substrate with a cost model
//!
//! The paper evaluates Knit on a 200 MHz Pentium Pro, reporting three
//! metrics per configuration (Table 1): **cycles** per routed packet,
//! **instruction-fetch stall cycles** (from the Pentium Pro performance
//! counters), and **text size**. We have no Pentium Pro; this crate is the
//! substitute documented in DESIGN.md. It executes linked [`cobj::Image`]s
//! under an explicit, deterministic cost model:
//!
//! * every instruction has a cycle cost ([`costs::CostModel`]);
//! * direct calls pay per-argument push costs and a fixed overhead, and
//!   indirect calls (the Click/COM style) pay an extra indirect-branch
//!   penalty;
//! * instruction fetch goes through a direct-mapped I-cache simulator
//!   ([`cache::ICache`]) indexed by the *real byte addresses* the linker
//!   assigned, so code layout and inlining genuinely change the stall
//!   count — the mechanism behind the paper's observation that flattening
//!   *improves* I-cache behaviour.
//!
//! Devices (console, network devices with rx/tx queues, a cycle clock) are
//! exposed to guest code as runtime intrinsics, replacing the paper's
//! DEC Tulip NICs and VGA/serial consoles.

pub mod cache;
pub mod costs;
pub mod cpu;
pub mod dev;
pub(crate) mod exec;
pub mod mc;
pub mod mesi;
pub mod profile;

pub use cache::{ICache, ICacheParams};
pub use costs::CostModel;
pub use cpu::{ExecMode, Fault, Machine, PerfCounters, RunLimits};
pub use dev::{Console, NetDev};
pub use mc::MultiMachine;
pub use mesi::{AccessCost, Bus, BusStats, DCacheParams, LineState, RaceEvent};
pub use profile::{CallEdge, FuncCount, Profile};

/// Names of all runtime intrinsics the machine provides, for use as
/// [`cobj::LinkOptions::runtime_symbols`].
pub fn runtime_symbols() -> impl Iterator<Item = String> {
    cpu::INTRINSIC_NAMES.iter().map(|s| s.to_string())
}
