//! The multi-core machine.
//!
//! N [`Machine`] cores executing one shared image over one shared guest
//! memory, connected by the snooping MESI bus of [`crate::mesi`]. Each
//! core keeps its own performance counters, I-cache, console/serial/trace
//! devices, and a private slice of the stack region; data, heap, and the
//! network devices are shared.
//!
//! Scheduling is deterministic round-robin at *call* granularity: the
//! harness runs one entry-point call on core 0, then core 1, and so on
//! (see [`MultiMachine::call_on`]). There is no preemption inside a call,
//! so guest-level locks (e.g. the Clack `SharedQueue` spinlock) never
//! spin — but every cross-core data structure still generates real
//! coherence traffic, because the cores' D-caches fight over its lines.
//! Determinism is what makes the lockstep differential harness work: both
//! [`ExecMode::Fast`] and [`ExecMode::Reference`] execute the identical
//! interleaving and must produce bit-identical results, counters, and
//! memory.

use std::cell::RefCell;
use std::rc::Rc;

use cobj::image::Image;

use crate::cpu::{Coherence, Fault, Machine};
use crate::mesi::{Bus, BusStats, RaceEvent};
use crate::{CostModel, ExecMode, NetDev, PerfCounters, RunLimits};

/// N coherent cores over one image and one shared guest memory.
pub struct MultiMachine {
    cores: Vec<Machine>,
    bus: Rc<RefCell<Bus>>,
    /// Shared network devices, swapped into whichever core is running.
    pub netdevs: Vec<NetDev>,
    /// Shared heap-allocation cursor (`__brk` is a global resource).
    heap_next: u64,
}

impl MultiMachine {
    /// Build an `ncores`-way machine with default costs and limits.
    pub fn new(image: Image, ncores: usize) -> Result<MultiMachine, Fault> {
        MultiMachine::with_config(image, CostModel::default(), RunLimits::default(), ncores)
    }

    /// Build an `ncores`-way machine with explicit costs and limits. The
    /// stack region is split evenly between the cores; everything else
    /// (data, heap) is shared through the bus.
    pub fn with_config(
        image: Image,
        costs: CostModel,
        limits: RunLimits,
        ncores: usize,
    ) -> Result<MultiMachine, Fault> {
        assert!(ncores >= 1, "a MultiMachine needs at least one core");
        let first = Machine::with_config(image, costs.clone(), limits)?;
        let image_rc = Rc::clone(&first.image);
        let plans = Rc::clone(&first.fetch_plans);
        let mut cores = vec![first];
        for _ in 1..ncores {
            cores.push(Machine::from_shared(
                Rc::clone(&image_rc),
                Rc::clone(&plans),
                costs.clone(),
                limits,
            )?);
        }

        // Core 0's freshly initialized memory becomes the bus's backing
        // store; every core's local vector is retired to a placeholder.
        let mem = std::mem::take(&mut cores[0].mem);
        let mem_base = cores[0].mem_base;
        let bus = Rc::new(RefCell::new(Bus::new(costs.dcache, mem, mem_base, ncores)));

        // Partition the stack region into per-core stacks (16-byte
        // aligned). `mem_top` stays global: stacks are ordinary shared
        // memory, only the allocation is per-core.
        let stack_base = cores[0].stack_base;
        let mem_top = cores[0].mem_top;
        let chunk = ((mem_top - stack_base) / ncores as u64) & !15;
        assert!(chunk >= 4096, "stack region too small for {ncores} cores");
        let heap_next = cores[0].heap_next;
        for (c, m) in cores.iter_mut().enumerate() {
            m.mem = Vec::new();
            m.coherence = Some(Coherence { bus: Rc::clone(&bus), core: c });
            m.stack_base = stack_base + c as u64 * chunk;
            m.sp = m.stack_base + chunk;
        }

        let netdevs = std::mem::take(&mut cores[0].netdevs);
        for m in cores.iter_mut() {
            m.netdevs = Vec::new();
        }
        Ok(MultiMachine { cores, bus, netdevs, heap_next })
    }

    /// Number of cores.
    pub fn ncores(&self) -> usize {
        self.cores.len()
    }

    /// Borrow one core (counters, console, trace, image, symbols).
    pub fn core(&self, c: usize) -> &Machine {
        &self.cores[c]
    }

    /// Mutably borrow one core.
    pub fn core_mut(&mut self, c: usize) -> &mut Machine {
        &mut self.cores[c]
    }

    /// One core's performance counters.
    pub fn counters(&self, c: usize) -> PerfCounters {
        self.cores[c].counters()
    }

    /// Sum of all cores' counters.
    pub fn counters_total(&self) -> PerfCounters {
        let mut total = PerfCounters::default();
        for m in &self.cores {
            let c = m.counters();
            total.cycles += c.cycles;
            total.instructions += c.instructions;
            total.ifetch_stall_cycles += c.ifetch_stall_cycles;
            total.icache_misses += c.icache_misses;
            total.calls += c.calls;
            total.indirect_calls += c.indirect_calls;
            total.intrinsic_calls += c.intrinsic_calls;
            total.dcache_misses += c.dcache_misses;
            total.coherence_misses += c.coherence_misses;
            total.invalidations += c.invalidations;
            total.bus_stall_cycles += c.bus_stall_cycles;
        }
        total
    }

    /// Select the interpreter loop on every core.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        for m in &mut self.cores {
            m.set_exec_mode(mode);
        }
    }

    /// Zero every core's counters and I-cache statistics plus the bus
    /// transaction counts (cache contents stay warm on all of them).
    pub fn reset_counters(&mut self) {
        for m in &mut self.cores {
            m.reset_counters();
        }
        self.bus.borrow_mut().reset_stats();
    }

    /// Bus-level transaction counts.
    pub fn bus_stats(&self) -> BusStats {
        self.bus.borrow().stats()
    }

    /// Arm the dynamic lockset race oracle over the watched address range
    /// with the given lock words (see [`Bus::race_check_enable`]). Charges
    /// no cycles; Fast/Reference bit-identity is unaffected.
    pub fn race_check_enable(&mut self, watch_base: u64, watch_len: usize, locks: &[(u64, u64)]) {
        self.bus.borrow_mut().race_check_enable(watch_base, watch_len, locks);
    }

    /// Exclude address ranges from the armed oracle (see
    /// [`Bus::race_exempt`]).
    pub fn race_exempt(&mut self, ranges: &[(u64, u64)]) {
        self.bus.borrow_mut().race_exempt(ranges);
    }

    /// Lockset violations the armed oracle has recorded so far.
    pub fn race_events(&self) -> Vec<RaceEvent> {
        self.bus.borrow().race_events()
    }

    /// Check the MESI protocol invariants across all cores.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.bus.borrow().check_invariants()
    }

    /// Grow the shared device array to at least `n` devices.
    pub fn ensure_netdevs(&mut self, n: usize) {
        if self.netdevs.len() < n {
            self.netdevs.resize(n, NetDev::default());
        }
    }

    /// Run one call on one core: the unit of the deterministic
    /// round-robin interleaving. The shared devices and heap cursor are
    /// handed to the core for the duration of the call.
    pub fn call_on(&mut self, core: usize, name: &str, args: &[i64]) -> Result<i64, Fault> {
        let fi = self.cores[core]
            .image
            .func_by_name(name)
            .ok_or_else(|| Fault::NoSuchFunction(name.to_string()))?;
        self.call_idx_on(core, fi, args)
    }

    /// [`MultiMachine::call_on`] by image function index.
    pub fn call_idx_on(&mut self, core: usize, fi: u32, args: &[i64]) -> Result<i64, Fault> {
        let m = &mut self.cores[core];
        m.heap_next = self.heap_next;
        std::mem::swap(&mut m.netdevs, &mut self.netdevs);
        let r = m.call_idx(fi, args);
        std::mem::swap(&mut m.netdevs, &mut self.netdevs);
        self.heap_next = m.heap_next;
        r
    }

    /// Guest-address memory read with coherent-DMA semantics (bounds
    /// checked like any host access).
    pub fn read_mem(&self, addr: u64, len: usize) -> Result<Vec<u8>, Fault> {
        self.cores[0].read_mem(addr, len)
    }

    /// Guest-address memory write with coherent-DMA semantics.
    pub fn write_mem(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Fault> {
        self.cores[0].write_mem(addr, bytes)
    }

    /// Allocate shared guest heap from the host side.
    pub fn host_alloc(&mut self, len: u64) -> Result<u64, Fault> {
        let m = &mut self.cores[0];
        m.heap_next = self.heap_next;
        let r = m.host_alloc(len);
        self.heap_next = m.heap_next;
        r
    }

    /// Snapshot of the entire shared memory with all dirty lines and
    /// pending write-backs applied — the canonical memory observation for
    /// the differential tests (non-mutating, unlike a DMA read).
    pub fn memory_synced(&self) -> Vec<u8> {
        self.bus.borrow().backing_synced()
    }

    /// Lowest guest address of the shared memory.
    pub fn mem_base(&self) -> u64 {
        self.bus.borrow().mem_base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobj::ir::{BinOp, Instr, Width};
    use cobj::object::{FuncDef, ObjectFile, Symbol};
    use cobj::{link, LinkInput, LinkOptions};

    /// An image with a shared counter in the data segment: `bump()` does
    /// a read-modify-write on it and returns the new value.
    fn bump_image() -> cobj::image::Image {
        let mut o = ObjectFile::new("t.o");
        let ctr = o.add_symbol(Symbol::data("ctr"));
        o.data.push(cobj::object::DataDef {
            sym: ctr,
            init: vec![0u8; 8],
            zeroed: 0,
            relocs: vec![],
            align: 8,
        });
        let f = o.add_symbol(Symbol::func("bump"));
        o.funcs.push(FuncDef {
            sym: f,
            params: 0,
            nregs: 3,
            frame_size: 0,
            body: vec![
                Instr::Addr { dst: 0, sym: ctr, offset: 0 },
                Instr::Load { dst: 1, addr: 0, offset: 0, width: Width::W8 },
                Instr::Const { dst: 2, value: 1 },
                Instr::Bin { op: BinOp::Add, dst: 1, a: 1, b: 2 },
                Instr::Store { addr: 0, offset: 0, src: 1, width: Width::W8 },
                Instr::Ret { value: Some(1) },
            ],
        });
        link(&[LinkInput::Object(o)], &LinkOptions::new("bump", crate::runtime_symbols())).unwrap()
    }

    #[test]
    fn cores_share_memory_coherently() {
        let mut mm = MultiMachine::new(bump_image(), 3).unwrap();
        let mut last = 0;
        for round in 0..4 {
            for c in 0..3 {
                last = mm.call_on(c, "bump", &[]).unwrap();
                assert_eq!(last, (round * 3 + c + 1) as i64);
            }
        }
        assert_eq!(last, 12);
        mm.check_invariants().unwrap();
        // Ping-ponging a written line across cores must show up as
        // coherence traffic on cores 1 and 2.
        assert!(mm.counters(1).coherence_misses > 0);
        assert!(mm.counters(1).invalidations > 0);
        assert!(mm.counters(1).bus_stall_cycles > 0);
    }

    #[test]
    fn fast_and_reference_are_identical_on_the_multimachine() {
        let run = |mode: ExecMode| {
            let mut mm = MultiMachine::new(bump_image(), 2).unwrap();
            mm.set_exec_mode(mode);
            let mut results = Vec::new();
            for _ in 0..5 {
                for c in 0..2 {
                    results.push(mm.call_on(c, "bump", &[]).unwrap());
                }
            }
            let counters: Vec<PerfCounters> = (0..2).map(|c| mm.counters(c)).collect();
            (results, counters, mm.bus_stats(), mm.memory_synced())
        };
        assert_eq!(run(ExecMode::Fast), run(ExecMode::Reference));
    }

    #[test]
    fn per_core_stacks_do_not_collide() {
        let mut o = ObjectFile::new("t.o");
        let f = o.add_symbol(Symbol::func("probe"));
        // Write the core id into a frame local and read it back.
        o.funcs.push(FuncDef {
            sym: f,
            params: 1,
            nregs: 3,
            frame_size: 16,
            body: vec![
                Instr::FrameAddr { dst: 1, offset: 0 },
                Instr::Store { addr: 1, offset: 0, src: 0, width: Width::W8 },
                Instr::Load { dst: 2, addr: 1, offset: 0, width: Width::W8 },
                Instr::Ret { value: Some(2) },
            ],
        });
        let image =
            link(&[LinkInput::Object(o)], &LinkOptions::new("probe", crate::runtime_symbols()))
                .unwrap();
        let mut mm = MultiMachine::new(image, 4).unwrap();
        for c in 0..4 {
            assert_eq!(mm.call_on(c, "probe", &[c as i64 + 100]).unwrap(), c as i64 + 100);
        }
        // Distinct stack partitions.
        let bases: Vec<u64> = (0..4).map(|c| mm.core(c).stack_base).collect();
        for w in bases.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
