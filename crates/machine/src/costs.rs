//! The cycle cost model.
//!
//! Parameters are fixed here, once, and documented; they were chosen so the
//! *base* modular Clack router lands in the neighbourhood of the paper's
//! ~2400 cycles/packet on a 200 MHz Pentium Pro, and every other number in
//! EXPERIMENTS.md is then measured under the same model — nothing is fitted
//! per-configuration. The relative costs encode the effects the paper's
//! analysis relies on:
//!
//! * function calls have real overhead ("the cost of pushing arguments onto
//!   the stack", §6) — eliminated when flattening lets the compiler inline;
//! * indirect calls (Click's virtual dispatch, COM) cost substantially more
//!   than direct calls — the penalty MIT's "specializer" removes;
//! * instruction-cache misses stall the fetch unit — improved by the
//!   compact straight-line code flattening produces.

use crate::cache::ICacheParams;
use crate::mesi::DCacheParams;

/// Cycle costs for the simulated CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of any instruction.
    pub base: u64,
    /// Extra cost of a memory load (cache hit assumed; the paper only
    /// reports *instruction* fetch stalls, so data accesses are flat-cost).
    pub load: u64,
    /// Extra cost of a memory store.
    pub store: u64,
    /// Extra cost of a multiply.
    pub mul: u64,
    /// Extra cost of a divide or remainder.
    pub div: u64,
    /// Fixed overhead of a direct call (call instruction, prologue, frame
    /// setup), beyond `base`.
    pub call_overhead: u64,
    /// Cost of pushing one argument.
    pub call_per_arg: u64,
    /// Extra overhead of a return (epilogue, ret).
    pub ret_overhead: u64,
    /// Additional penalty for an *indirect* call (branch-target buffer miss
    /// cost on the Pentium Pro; what Click pays per element hop).
    pub indirect_call_penalty: u64,
    /// Taken conditional branch.
    pub branch_taken: u64,
    /// Not-taken conditional branch.
    pub branch_not_taken: u64,
    /// Unconditional jump.
    pub jump: u64,
    /// Flat cost of a runtime intrinsic (device register access).
    pub intrinsic: u64,
    /// Instruction-cache geometry and miss penalty.
    pub icache: ICacheParams,
    /// Data-cache geometry and bus penalties (multi-core coherent mode;
    /// single-core machines keep flat-cost data accesses).
    pub dcache: DCacheParams,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base: 1,
            load: 2,
            store: 2,
            mul: 3,
            div: 20,
            call_overhead: 14,
            call_per_arg: 2,
            ret_overhead: 6,
            indirect_call_penalty: 18,
            branch_taken: 2,
            branch_not_taken: 1,
            jump: 1,
            intrinsic: 6,
            icache: ICacheParams::default(),
            dcache: DCacheParams::default(),
        }
    }
}

impl CostModel {
    /// A cost model with the I-cache disabled (infinite cache), useful for
    /// separating call-overhead effects from locality effects in ablation
    /// benches.
    pub fn no_icache() -> Self {
        CostModel {
            icache: ICacheParams { miss_stall: 0, ..ICacheParams::default() },
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_encode_the_papers_effects() {
        let c = CostModel::default();
        // Indirect calls must cost more than direct ones.
        assert!(c.indirect_call_penalty > 0);
        // Calls must have nonzero overhead for flattening to matter.
        assert!(c.call_overhead + c.ret_overhead > 2 * c.base);
        // I-cache misses must stall.
        assert!(c.icache.miss_stall > 0);
    }
}
