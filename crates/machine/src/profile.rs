//! Execution profiles: call edges and per-function instruction counts.
//!
//! [`crate::Machine`] can optionally record, per call site class, every
//! (caller, callee) pair it executes — direct calls, indirect calls
//! resolved through function pointers, and intrinsic (device) calls — plus
//! how many instructions each function retires. The result is surfaced as
//! a [`Profile`]: a plain-data artifact with a stable, deterministic JSON
//! encoding, suitable for writing to disk in a `--profile-gen` build and
//! feeding back into the linker's profile-guided layout (and the PGO
//! flatten advisor) in a `--profile-use` build.
//!
//! The JSON codec here is hand-rolled: the build environment vendors no
//! serialization crates, and the schema is small enough that an explicit
//! writer/reader doubles as its specification.

use std::collections::BTreeMap;

use cobj::layout::LayoutProfile;

/// One observed call edge, aggregated over the run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CallEdge {
    /// Link-level name of the calling function.
    pub caller: String,
    /// Link-level name of the called function (or intrinsic).
    pub callee: String,
    /// Whether the calls were made through a function pointer.
    pub indirect: bool,
    /// Number of calls observed.
    pub count: u64,
}

/// Aggregated execution counts for one function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FuncCount {
    /// Link-level function name.
    pub name: String,
    /// Instructions retired while executing in this function.
    pub instructions: u64,
}

/// A serializable execution profile.
///
/// Both vectors are kept sorted (edges by `(caller, callee, indirect)`,
/// functions by name), so two profiles describing the same behaviour
/// compare equal and serialize identically regardless of how they were
/// accumulated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Observed call edges, sorted.
    pub edges: Vec<CallEdge>,
    /// Per-function instruction counts (executed functions only), sorted.
    pub funcs: Vec<FuncCount>,
}

impl Profile {
    /// True when the profile recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty() && self.funcs.is_empty()
    }

    /// Total calls across all edges.
    pub fn total_calls(&self) -> u64 {
        self.edges.iter().map(|e| e.count).sum()
    }

    /// Merge another profile into this one (summing matching counters),
    /// e.g. to combine profiles from several workloads.
    pub fn merge(&mut self, other: &Profile) {
        let mut edges: BTreeMap<(String, String, bool), u64> = BTreeMap::new();
        for e in self.edges.iter().chain(other.edges.iter()) {
            *edges.entry((e.caller.clone(), e.callee.clone(), e.indirect)).or_insert(0) += e.count;
        }
        self.edges = edges
            .into_iter()
            .map(|((caller, callee, indirect), count)| CallEdge { caller, callee, indirect, count })
            .collect();
        let mut funcs: BTreeMap<String, u64> = BTreeMap::new();
        for f in self.funcs.iter().chain(other.funcs.iter()) {
            *funcs.entry(f.name.clone()).or_insert(0) += f.instructions;
        }
        self.funcs = funcs
            .into_iter()
            .map(|(name, instructions)| FuncCount { name, instructions })
            .collect();
    }

    /// Project onto the layout-relevant view consumed by
    /// [`cobj::layout::Layout::ProfileGuided`]: edge weights summed over
    /// direct/indirect, intrinsic callees dropped (the runtime has no
    /// placement), plus per-function heat.
    pub fn layout_profile(&self) -> LayoutProfile {
        let mut lp = LayoutProfile::default();
        for e in &self.edges {
            if e.count > 0 && !crate::cpu::INTRINSIC_NAMES.contains(&e.callee.as_str()) {
                lp.record_edge(e.caller.clone(), e.callee.clone(), e.count);
            }
        }
        for f in &self.funcs {
            if f.instructions > 0 {
                lp.record_func(f.name.clone(), f.instructions);
            }
        }
        lp
    }

    /// Stable FNV-1a hash of the canonical JSON encoding. Used to fold a
    /// profile into build fingerprints.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Serialize to the stable JSON encoding (sorted arrays, fixed key
    /// order, newline-terminated).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n  \"edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\"caller\": ");
            json_string(&mut s, &e.caller);
            s.push_str(", \"callee\": ");
            json_string(&mut s, &e.callee);
            s.push_str(&format!(
                ", \"indirect\": {}, \"count\": {}}}",
                if e.indirect { "true" } else { "false" },
                e.count
            ));
        }
        s.push_str(if self.edges.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"funcs\": [");
        for (i, f) in self.funcs.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\"name\": ");
            json_string(&mut s, &f.name);
            s.push_str(&format!(", \"instructions\": {}}}", f.instructions));
        }
        s.push_str(if self.funcs.is_empty() { "]\n" } else { "\n  ]\n" });
        s.push_str("}\n");
        s
    }

    /// Parse a profile from its JSON encoding. Accepts any JSON with the
    /// expected shape (whitespace and key order are free); unknown keys
    /// are ignored so the schema can grow.
    pub fn from_json(text: &str) -> Result<Profile, String> {
        let v = JsonParser::new(text).parse()?;
        let obj = v.as_object().ok_or("profile: top level must be an object")?;
        let mut p = Profile::default();
        if let Some(edges) = obj.get("edges") {
            for (i, e) in
                edges.as_array().ok_or("profile: `edges` must be an array")?.iter().enumerate()
            {
                let eo =
                    e.as_object().ok_or_else(|| format!("profile: edge {i} must be an object"))?;
                p.edges.push(CallEdge {
                    caller: eo
                        .get("caller")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("profile: edge {i} missing `caller`"))?
                        .to_string(),
                    callee: eo
                        .get("callee")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("profile: edge {i} missing `callee`"))?
                        .to_string(),
                    indirect: eo.get("indirect").and_then(Json::as_bool).unwrap_or(false),
                    count: eo
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("profile: edge {i} missing `count`"))?,
                });
            }
        }
        if let Some(funcs) = obj.get("funcs") {
            for (i, f) in
                funcs.as_array().ok_or("profile: `funcs` must be an array")?.iter().enumerate()
            {
                let fo =
                    f.as_object().ok_or_else(|| format!("profile: func {i} must be an object"))?;
                p.funcs.push(FuncCount {
                    name: fo
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("profile: func {i} missing `name`"))?
                        .to_string(),
                    instructions: fo
                        .get("instructions")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("profile: func {i} missing `instructions`"))?,
                });
            }
        }
        p.edges.sort();
        p.funcs.sort();
        Ok(p)
    }
}

/// Append `s` to `out` as a JSON string literal. Public because `knit`'s
/// protocol codec shares this exact escaping (the two codecs must agree on
/// the bytes a string serializes to).
pub fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value (just enough JSON for the profile schema).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    /// Unsigned integer (the only number kind the schema emits); kept as
    /// `u64` so counts above 2^53 survive the round trip exactly.
    Int(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Minimal recursive-descent JSON parser.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser { bytes: text.as_bytes(), pos: 0 }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("json: trailing garbage at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("json: expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("json: bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("json: unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            let key = match self.peek() {
                Some(b'"') => self.string()?,
                _ => return Err(format!("json: expected object key at byte {}", self.pos)),
            };
            self.expect(b':')?;
            let v = self.value()?;
            m.insert(key, v);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("json: expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("json: expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("json: unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err("json: unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("json: bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "json: bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("json: bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|bs| std::str::from_utf8(bs).ok())
                        .ok_or("json: invalid utf-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("json: bad number at byte {start}"))?;
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("json: bad number at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        Profile {
            edges: vec![
                CallEdge {
                    caller: "classify".into(),
                    callee: "__net_tx".into(),
                    indirect: false,
                    count: 7,
                },
                CallEdge {
                    caller: "router_step".into(),
                    callee: "classify".into(),
                    indirect: true,
                    count: 512,
                },
            ],
            funcs: vec![
                FuncCount { name: "classify".into(), instructions: 4096 },
                FuncCount { name: "router_step".into(), instructions: 1024 },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let p = sample();
        let json = p.to_json();
        let back = Profile::from_json(&json).unwrap();
        assert_eq!(p, back);
        // Encoding is stable: re-serializing the parse is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn json_round_trips_weird_names() {
        let mut p = Profile::default();
        p.funcs.push(FuncCount { name: "we\"ird\\name\n\u{1}é".into(), instructions: 1 });
        let back = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn empty_profile_round_trips() {
        let p = Profile::default();
        let back = Profile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
        assert!(back.is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Profile::from_json("").is_err());
        assert!(Profile::from_json("[]").is_err());
        assert!(Profile::from_json("{\"edges\": 3}").is_err());
        assert!(Profile::from_json("{} trailing").is_err());
        assert!(Profile::from_json("{\"edges\": [{\"caller\": \"a\"}]}").is_err());
    }

    #[test]
    fn parser_accepts_unknown_keys_and_any_order() {
        let text = r#"{
            "future": {"nested": [1, 2, null]},
            "funcs": [{"instructions": 5, "name": "f", "extra": true}],
            "edges": []
        }"#;
        let p = Profile::from_json(text).unwrap();
        assert_eq!(p.funcs, vec![FuncCount { name: "f".into(), instructions: 5 }]);
    }

    #[test]
    fn stable_hash_tracks_content() {
        let p = sample();
        let mut q = sample();
        assert_eq!(p.stable_hash(), q.stable_hash());
        q.edges[1].count += 1;
        assert_ne!(p.stable_hash(), q.stable_hash());
    }

    #[test]
    fn merge_sums_counts() {
        let mut p = sample();
        p.merge(&sample());
        assert_eq!(p.total_calls(), 2 * sample().total_calls());
        assert_eq!(p.funcs[0].instructions, 8192);
        // Still sorted and deduplicated.
        assert_eq!(p.edges.len(), 2);
    }

    #[test]
    fn layout_profile_drops_intrinsic_callees() {
        let lp = sample().layout_profile();
        assert_eq!(lp.edges.len(), 1, "intrinsic callee edge dropped");
        assert_eq!(lp.edges.get(&("router_step".into(), "classify".into())), Some(&512));
        assert_eq!(lp.func_counts.get("classify"), Some(&4096));
    }
}
