//! Differential tests: the fast interpreter against the reference oracle.
//!
//! `ExecMode::Fast` must be *observationally identical* to
//! `ExecMode::Reference` — same results, same faults at the same
//! `(func, pc)` sites, bit-identical performance counters, profiles,
//! memory images, device output, and traces. These tests drive both loops
//! over randomly generated programs (which routinely divide by zero, read
//! wild addresses, recurse forever, and spin until the step limit) and over
//! the real Clack router, comparing every observable after every call.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use knit_repro::clack;
use knit_repro::cobj::ir::{BinOp, Instr, UnOp, Width};
use knit_repro::cobj::object::{FuncDef, ObjectFile, Symbol};
use knit_repro::cobj::{link, Image, LinkInput, LinkOptions};
use knit_repro::machine::{
    self, CostModel, ExecMode, Fault, ICacheParams, Machine, Profile, RunLimits,
};

// ---------------------------------------------------------------------------
// random program generator
// ---------------------------------------------------------------------------

/// Intrinsics random programs may call (a mix of pure, device, faulting,
/// and counter-observing operations — `__clock` reads live cycle counts,
/// which is exactly the kind of thing a buggy fast path would skew).
const INTRINSICS: &[&str] = &["__brk", "__clock", "__con_putc", "__halt", "__trace"];

/// Generate a linked image from `seed`: a handful of functions with random
/// bodies that call each other (directly and through function pointers),
/// touch frame and heap memory, and hit every fault class.
fn gen_image(seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let nfuncs = rng.random_range(2usize..5);
    let mut o = ObjectFile::new("diff.o");
    let intr_syms: Vec<_> = INTRINSICS.iter().map(|n| o.add_symbol(Symbol::undef(*n))).collect();
    let shapes: Vec<(u32, u32, u32)> = (0..nfuncs)
        .map(|_| {
            let params = rng.random_range(0u32..3);
            let nregs = rng.random_range(4u32..8);
            let frame = [0u32, 16, 32][rng.random_range(0usize..3)];
            (params, nregs, frame)
        })
        .collect();
    let func_syms: Vec<_> =
        (0..nfuncs).map(|i| o.add_symbol(Symbol::func(format!("f{i}")))).collect();

    for (i, &(params, nregs, frame)) in shapes.iter().enumerate() {
        let len = rng.random_range(4usize..14);
        let mut body = Vec::with_capacity(len);
        let reg = |rng: &mut StdRng| rng.random_range(0u32..nregs);
        for _ in 0..len {
            let ins = match rng.random_range(0u32..20) {
                0 | 1 => Instr::Const {
                    dst: reg(&mut rng),
                    // Mostly small values (zeros make natural div-by-zero
                    // divisors); occasionally a wild one for OOB addresses.
                    value: if rng.random_bool(0.15) {
                        rng.random::<i64>() >> 16
                    } else {
                        rng.random_range(-64i64..64)
                    },
                },
                2 => Instr::Mov { dst: reg(&mut rng), src: reg(&mut rng) },
                3..=5 => {
                    const OPS: &[BinOp] = &[
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Div,
                        BinOp::Rem,
                        BinOp::And,
                        BinOp::Xor,
                        BinOp::Shl,
                        BinOp::Eq,
                        BinOp::Lt,
                    ];
                    Instr::Bin {
                        op: OPS[rng.random_range(0usize..OPS.len())],
                        dst: reg(&mut rng),
                        a: reg(&mut rng),
                        b: reg(&mut rng),
                    }
                }
                6 => Instr::Un {
                    op: [UnOp::Neg, UnOp::Not, UnOp::BitNot][rng.random_range(0usize..3)],
                    dst: reg(&mut rng),
                    a: reg(&mut rng),
                },
                7 | 8 if frame > 0 => Instr::FrameAddr {
                    dst: reg(&mut rng),
                    offset: rng.random_range(0i64..frame as i64),
                },
                9 => Instr::Load {
                    dst: reg(&mut rng),
                    addr: reg(&mut rng),
                    offset: rng.random_range(-4i64..12),
                    width: [Width::W1, Width::W2, Width::W4, Width::W8]
                        [rng.random_range(0usize..4)],
                },
                10 => Instr::Store {
                    addr: reg(&mut rng),
                    offset: rng.random_range(-4i64..12),
                    src: reg(&mut rng),
                    width: [Width::W1, Width::W2, Width::W4, Width::W8]
                        [rng.random_range(0usize..4)],
                },
                11 => Instr::VarArg { dst: reg(&mut rng), idx: reg(&mut rng) },
                12 | 13 => {
                    // Direct call: another function (recursion allowed — the
                    // depth limit is itself under test) or an intrinsic.
                    let target = if rng.random_bool(0.6) {
                        func_syms[rng.random_range(0usize..nfuncs)]
                    } else {
                        intr_syms[rng.random_range(0usize..intr_syms.len())]
                    };
                    let nargs = rng.random_range(0usize..3);
                    Instr::Call {
                        dst: if rng.random_bool(0.7) { Some(reg(&mut rng)) } else { None },
                        target,
                        args: (0..nargs).map(|_| reg(&mut rng)).collect(),
                    }
                }
                14 => Instr::Addr {
                    dst: reg(&mut rng),
                    sym: if rng.random_bool(0.7) {
                        func_syms[rng.random_range(0usize..nfuncs)]
                    } else {
                        intr_syms[rng.random_range(0usize..intr_syms.len())]
                    },
                    offset: 0,
                },
                15 => {
                    // Often a garbage pointer → BadFunctionPointer; after an
                    // `Addr`, a live one → real indirect call.
                    let nargs = rng.random_range(0usize..3);
                    Instr::CallInd {
                        dst: if rng.random_bool(0.7) { Some(reg(&mut rng)) } else { None },
                        target: reg(&mut rng),
                        args: (0..nargs).map(|_| reg(&mut rng)).collect(),
                    }
                }
                16 => Instr::Jump { target: rng.random_range(0usize..len) },
                17 => Instr::Branch {
                    cond: reg(&mut rng),
                    then_to: rng.random_range(0usize..len),
                    else_to: rng.random_range(0usize..len),
                },
                18 => Instr::Ret {
                    value: if rng.random_bool(0.8) { Some(reg(&mut rng)) } else { None },
                },
                _ => Instr::Nop,
            };
            body.push(ins);
        }
        o.funcs.push(FuncDef { sym: func_syms[i], params, nregs, frame_size: frame, body });
    }
    link(&[LinkInput::Object(o)], &LinkOptions::new("f0", machine::runtime_symbols()))
        .expect("generated object links")
}

// ---------------------------------------------------------------------------
// observable machine state
// ---------------------------------------------------------------------------

/// Everything a guest execution can observe or produce, snapshot for
/// comparison. `PartialEq` over the lot is the bit-identity check.
#[derive(Debug, PartialEq)]
struct Observed {
    results: Vec<Result<i64, Fault>>,
    counters: machine::PerfCounters,
    profile: Profile,
    memory: Vec<u8>,
    console: String,
    serial: String,
    trace: Vec<i64>,
}

/// Run `calls` invocations of `f0` on a fresh machine in `mode`, snapshot
/// all observables. Tight limits keep runaway programs (infinite loops,
/// unbounded recursion) fast while still exercising the fault paths.
fn observe(image: &Image, mode: ExecMode, costs: CostModel, args: &[i64]) -> Observed {
    let limits =
        RunLimits { max_steps: 20_000, max_call_depth: 32, heap_size: 1 << 16, stack_size: 4096 };
    let mut m = Machine::with_config(image.clone(), costs, limits).unwrap();
    m.set_exec_mode(mode);
    m.set_profiling(true);
    // Two calls back-to-back: the second runs against warm caches and (in
    // fast mode) recycled frame buffers, so cross-call state is covered.
    let results = (0..2).map(|_| m.call("f0", args)).collect();
    let mem_len =
        (image.heap_base + limits.heap_size + limits.stack_size - image.data_base) as usize;
    Observed {
        results,
        counters: m.counters(),
        profile: m.profile(),
        memory: m.read_mem(image.data_base, mem_len).unwrap().to_vec(),
        console: m.console.output.clone(),
        serial: m.serial.output.clone(),
        trace: m.trace.clone(),
    }
}

fn assert_modes_agree(image: &Image, costs: CostModel, args: &[i64]) {
    let fast = observe(image, ExecMode::Fast, costs.clone(), args);
    let reference = observe(image, ExecMode::Reference, costs, args);
    assert_eq!(fast, reference);
}

// ---------------------------------------------------------------------------
// property: random programs behave identically under both loops
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fast_matches_reference_on_random_programs(seed in any::<u64>()) {
        let image = gen_image(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5f5f);
        let args: Vec<i64> = (0..rng.random_range(0usize..3))
            .map(|_| rng.random_range(-8i64..8))
            .collect();
        // Three cache geometries: the default, stalls disabled (the
        // `miss_stall == 0` early-return path), and a tiny cache that
        // thrashes (conflict-eviction heavy).
        let geometries = [
            ICacheParams::default(),
            ICacheParams { size: 128, line: 32, miss_stall: 0 },
            ICacheParams { size: 128, line: 32, miss_stall: 9 },
        ];
        let icache = geometries[rng.random_range(0usize..3)];
        let costs = CostModel { icache, ..CostModel::default() };

        let fast = observe(&image, ExecMode::Fast, costs.clone(), &args);
        let reference = observe(&image, ExecMode::Reference, costs, &args);
        prop_assert_eq!(fast, reference, "seed {}", seed);
    }
}

// ---------------------------------------------------------------------------
// deterministic fault-class cases (always in the suite, no seed luck needed)
// ---------------------------------------------------------------------------

fn link_one(o: ObjectFile, entry: &str) -> Image {
    link(&[LinkInput::Object(o)], &LinkOptions::new(entry, machine::runtime_symbols())).unwrap()
}

#[test]
fn div_by_zero_faults_at_identical_site() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 2,
        nregs: 3,
        frame_size: 0,
        body: vec![
            Instr::Nop,
            Instr::Bin { op: BinOp::Div, dst: 2, a: 0, b: 1 },
            Instr::Ret { value: Some(2) },
        ],
    });
    let image = link_one(o, "f0");
    // The faulting call and a subsequent successful one: the machine must
    // stay usable after a fault in both modes.
    for (mode_args, want) in [
        (&[7i64, 0][..], Err(Fault::DivByZero { func: "f0".into(), at: 1 })),
        (&[42, 2][..], Ok(21)),
    ] {
        let mut fast = Machine::new(image.clone()).unwrap();
        fast.set_exec_mode(ExecMode::Fast);
        let mut reference = Machine::new(image.clone()).unwrap();
        reference.set_exec_mode(ExecMode::Reference);
        let rf = fast.call("f0", mode_args);
        let rr = reference.call("f0", mode_args);
        assert_eq!(rf, want);
        assert_eq!(rf, rr);
        assert_eq!(fast.counters(), reference.counters());
    }
    assert_modes_agree(&image, CostModel::default(), &[9, 0]);
}

#[test]
fn out_of_bounds_access_faults_identically() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 2,
        frame_size: 0,
        body: vec![
            Instr::Const { dst: 0, value: 0x10 }, // below the data base
            Instr::Load { dst: 1, addr: 0, offset: 0, width: Width::W8 },
            Instr::Ret { value: Some(1) },
        ],
    });
    let image = link_one(o, "f0");
    assert_modes_agree(&image, CostModel::default(), &[]);
    let got = observe(&image, ExecMode::Fast, CostModel::default(), &[]);
    assert!(
        matches!(got.results[0], Err(Fault::MemOutOfBounds { at: 1, .. })),
        "got {:?}",
        got.results[0]
    );
}

#[test]
fn step_limit_and_counters_agree_on_infinite_loop() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 0,
        body: vec![Instr::Const { dst: 0, value: 1 }, Instr::Jump { target: 0 }],
    });
    let image = link_one(o, "f0");
    assert_modes_agree(&image, CostModel::default(), &[]);
    let got = observe(&image, ExecMode::Fast, CostModel::default(), &[]);
    assert_eq!(got.results[0], Err(Fault::StepLimitExceeded));
    // Exactly max_steps instructions per call were charged.
    assert_eq!(got.counters.instructions, 40_000);
}

#[test]
fn unbounded_recursion_faults_identically() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 64,
        body: vec![
            Instr::Call { dst: Some(0), target: f, args: vec![] },
            Instr::Ret { value: Some(0) },
        ],
    });
    let image = link_one(o, "f0");
    assert_modes_agree(&image, CostModel::default(), &[]);
    let got = observe(&image, ExecMode::Fast, CostModel::default(), &[]);
    assert!(
        matches!(got.results[0], Err(Fault::StackOverflow { .. }) | Err(Fault::CallDepthExceeded)),
        "got {:?}",
        got.results[0]
    );
}

#[test]
fn bad_function_pointer_faults_identically() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 0,
        body: vec![
            Instr::Const { dst: 0, value: 0x7777 },
            Instr::CallInd { dst: Some(0), target: 0, args: vec![] },
            Instr::Ret { value: Some(0) },
        ],
    });
    let image = link_one(o, "f0");
    assert_modes_agree(&image, CostModel::default(), &[]);
    let got = observe(&image, ExecMode::Fast, CostModel::default(), &[]);
    assert!(
        matches!(got.results[0], Err(Fault::BadFunctionPointer { value: 0x7777, at: 1, .. })),
        "got {:?}",
        got.results[0]
    );
}

// ---------------------------------------------------------------------------
// the real thing: the Clack router, packet for packet
// ---------------------------------------------------------------------------

/// Drive the hand-built Clack router end to end in `mode` and snapshot
/// every observable: per-device output frames, counters, profile, console.
fn run_router(mode: ExecMode) -> (Vec<Vec<Vec<u8>>>, Observed) {
    let report = clack::build_hand_router(false).expect("router builds");
    let entry = report
        .exports
        .iter()
        .find(|(k, _)| k.ends_with(".router_step"))
        .map(|(_, v)| v.clone())
        .expect("router_step exported");
    let mut m = Machine::new(report.image.clone()).unwrap();
    m.set_exec_mode(mode);
    m.set_profiling(true);
    m.call("__knit_init", &[]).expect("init");
    let entry = m.image().func_by_name(&entry).expect("entry resolves");

    let work = clack::packets::workload(&clack::packets::WorkloadOptions {
        count: 96,
        ..Default::default()
    });
    let mut results = Vec::new();
    for (dev, pkt) in &work {
        m.netdevs[*dev].inject(pkt.clone());
        loop {
            match m.call_idx(entry, &[]) {
                Ok(0) => break,
                Ok(n) => results.push(Ok(n)),
                Err(e) => {
                    results.push(Err(e));
                    break;
                }
            }
        }
    }
    let outputs = (0..m.netdevs.len())
        .map(|d| {
            let mut frames = Vec::new();
            while let Some(fr) = m.netdevs[d].collect() {
                frames.push(fr);
            }
            frames
        })
        .collect();
    let obs = Observed {
        results,
        counters: m.counters(),
        profile: m.profile(),
        memory: Vec::new(), // router memory is huge; counters + frames suffice
        console: m.console.output.clone(),
        serial: m.serial.output.clone(),
        trace: m.trace.clone(),
    };
    (outputs, obs)
}

#[test]
fn clack_router_is_bit_identical_across_modes() {
    let (frames_fast, fast) = run_router(ExecMode::Fast);
    let (frames_ref, reference) = run_router(ExecMode::Reference);
    assert_eq!(frames_fast, frames_ref, "routed frames must match");
    assert_eq!(fast, reference, "counters, profile, and device output must match");
    assert!(fast.counters.cycles > 0);
}
