//! Differential tests: the fast interpreter against the reference oracle.
//!
//! `ExecMode::Fast` must be *observationally identical* to
//! `ExecMode::Reference` — same results, same faults at the same
//! `(func, pc)` sites, bit-identical performance counters, profiles,
//! memory images, device output, and traces. These tests drive both loops
//! over randomly generated programs (which routinely divide by zero, read
//! wild addresses, recurse forever, and spin until the step limit) and over
//! the real Clack router, comparing every observable after every call.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use knit_repro::clack;
use knit_repro::cobj::ir::{BinOp, Instr, Width};
use knit_repro::cobj::object::{FuncDef, ObjectFile, Symbol};
use knit_repro::cobj::{link, Image, LinkInput, LinkOptions};
use knit_repro::machine::{
    self, CostModel, ExecMode, Fault, ICacheParams, Machine, Profile, RunLimits,
};

mod common;
use common::{gen_image, override_seed, repro};

// ---------------------------------------------------------------------------
// observable machine state
// ---------------------------------------------------------------------------

/// Everything a guest execution can observe or produce, snapshot for
/// comparison. `PartialEq` over the lot is the bit-identity check.
#[derive(Debug, PartialEq)]
struct Observed {
    results: Vec<Result<i64, Fault>>,
    counters: machine::PerfCounters,
    profile: Profile,
    memory: Vec<u8>,
    console: String,
    serial: String,
    trace: Vec<i64>,
}

/// Run `calls` invocations of `f0` on a fresh machine in `mode`, snapshot
/// all observables. Tight limits keep runaway programs (infinite loops,
/// unbounded recursion) fast while still exercising the fault paths.
fn observe(image: &Image, mode: ExecMode, costs: CostModel, args: &[i64]) -> Observed {
    let limits =
        RunLimits { max_steps: 20_000, max_call_depth: 32, heap_size: 1 << 16, stack_size: 4096 };
    let mut m = Machine::with_config(image.clone(), costs, limits).unwrap();
    m.set_exec_mode(mode);
    m.set_profiling(true);
    // Two calls back-to-back: the second runs against warm caches and (in
    // fast mode) recycled frame buffers, so cross-call state is covered.
    let results = (0..2).map(|_| m.call("f0", args)).collect();
    let mem_len =
        (image.heap_base + limits.heap_size + limits.stack_size - image.data_base) as usize;
    Observed {
        results,
        counters: m.counters(),
        profile: m.profile(),
        memory: m.read_mem(image.data_base, mem_len).unwrap().to_vec(),
        console: m.console.output.clone(),
        serial: m.serial.output.clone(),
        trace: m.trace.clone(),
    }
}

fn assert_modes_agree(image: &Image, costs: CostModel, args: &[i64]) {
    let fast = observe(image, ExecMode::Fast, costs.clone(), args);
    let reference = observe(image, ExecMode::Reference, costs, args);
    assert_eq!(fast, reference);
}

// ---------------------------------------------------------------------------
// property: random programs behave identically under both loops
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fast_matches_reference_on_random_programs(seed in any::<u64>()) {
        let seed = override_seed(seed);
        let image = gen_image(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5f5f);
        let args: Vec<i64> = (0..rng.random_range(0usize..3))
            .map(|_| rng.random_range(-8i64..8))
            .collect();
        // Three cache geometries: the default, stalls disabled (the
        // `miss_stall == 0` early-return path), and a tiny cache that
        // thrashes (conflict-eviction heavy).
        let geometries = [
            ICacheParams::default(),
            ICacheParams { size: 128, line: 32, miss_stall: 0 },
            ICacheParams { size: 128, line: 32, miss_stall: 9 },
        ];
        let icache = geometries[rng.random_range(0usize..3)];
        let costs = CostModel { icache, ..CostModel::default() };

        let fast = observe(&image, ExecMode::Fast, costs.clone(), &args);
        let reference = observe(&image, ExecMode::Reference, costs, &args);
        prop_assert_eq!(fast, reference, "{}", repro(seed));
    }
}

// ---------------------------------------------------------------------------
// deterministic fault-class cases (always in the suite, no seed luck needed)
// ---------------------------------------------------------------------------

fn link_one(o: ObjectFile, entry: &str) -> Image {
    link(&[LinkInput::Object(o)], &LinkOptions::new(entry, machine::runtime_symbols())).unwrap()
}

#[test]
fn div_by_zero_faults_at_identical_site() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 2,
        nregs: 3,
        frame_size: 0,
        body: vec![
            Instr::Nop,
            Instr::Bin { op: BinOp::Div, dst: 2, a: 0, b: 1 },
            Instr::Ret { value: Some(2) },
        ],
    });
    let image = link_one(o, "f0");
    // The faulting call and a subsequent successful one: the machine must
    // stay usable after a fault in both modes.
    for (mode_args, want) in [
        (&[7i64, 0][..], Err(Fault::DivByZero { func: "f0".into(), at: 1 })),
        (&[42, 2][..], Ok(21)),
    ] {
        let mut fast = Machine::new(image.clone()).unwrap();
        fast.set_exec_mode(ExecMode::Fast);
        let mut reference = Machine::new(image.clone()).unwrap();
        reference.set_exec_mode(ExecMode::Reference);
        let rf = fast.call("f0", mode_args);
        let rr = reference.call("f0", mode_args);
        assert_eq!(rf, want);
        assert_eq!(rf, rr);
        assert_eq!(fast.counters(), reference.counters());
    }
    assert_modes_agree(&image, CostModel::default(), &[9, 0]);
}

#[test]
fn out_of_bounds_access_faults_identically() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 2,
        frame_size: 0,
        body: vec![
            Instr::Const { dst: 0, value: 0x10 }, // below the data base
            Instr::Load { dst: 1, addr: 0, offset: 0, width: Width::W8 },
            Instr::Ret { value: Some(1) },
        ],
    });
    let image = link_one(o, "f0");
    assert_modes_agree(&image, CostModel::default(), &[]);
    let got = observe(&image, ExecMode::Fast, CostModel::default(), &[]);
    assert!(
        matches!(got.results[0], Err(Fault::MemOutOfBounds { at: 1, .. })),
        "got {:?}",
        got.results[0]
    );
}

#[test]
fn step_limit_and_counters_agree_on_infinite_loop() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 0,
        body: vec![Instr::Const { dst: 0, value: 1 }, Instr::Jump { target: 0 }],
    });
    let image = link_one(o, "f0");
    assert_modes_agree(&image, CostModel::default(), &[]);
    let got = observe(&image, ExecMode::Fast, CostModel::default(), &[]);
    assert_eq!(got.results[0], Err(Fault::StepLimitExceeded));
    // Exactly max_steps instructions per call were charged.
    assert_eq!(got.counters.instructions, 40_000);
}

#[test]
fn unbounded_recursion_faults_identically() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 64,
        body: vec![
            Instr::Call { dst: Some(0), target: f, args: vec![] },
            Instr::Ret { value: Some(0) },
        ],
    });
    let image = link_one(o, "f0");
    assert_modes_agree(&image, CostModel::default(), &[]);
    let got = observe(&image, ExecMode::Fast, CostModel::default(), &[]);
    assert!(
        matches!(got.results[0], Err(Fault::StackOverflow { .. }) | Err(Fault::CallDepthExceeded)),
        "got {:?}",
        got.results[0]
    );
}

#[test]
fn bad_function_pointer_faults_identically() {
    let mut o = ObjectFile::new("t.o");
    let f = o.add_symbol(Symbol::func("f0"));
    o.funcs.push(FuncDef {
        sym: f,
        params: 0,
        nregs: 1,
        frame_size: 0,
        body: vec![
            Instr::Const { dst: 0, value: 0x7777 },
            Instr::CallInd { dst: Some(0), target: 0, args: vec![] },
            Instr::Ret { value: Some(0) },
        ],
    });
    let image = link_one(o, "f0");
    assert_modes_agree(&image, CostModel::default(), &[]);
    let got = observe(&image, ExecMode::Fast, CostModel::default(), &[]);
    assert!(
        matches!(got.results[0], Err(Fault::BadFunctionPointer { value: 0x7777, at: 1, .. })),
        "got {:?}",
        got.results[0]
    );
}

// ---------------------------------------------------------------------------
// the real thing: the Clack router, packet for packet
// ---------------------------------------------------------------------------

/// Drive the hand-built Clack router end to end in `mode` and snapshot
/// every observable: per-device output frames, counters, profile, console.
fn run_router(mode: ExecMode) -> (Vec<Vec<Vec<u8>>>, Observed) {
    let report = clack::build_hand_router(false).expect("router builds");
    let entry = report
        .exports
        .iter()
        .find(|(k, _)| k.ends_with(".router_step"))
        .map(|(_, v)| v.clone())
        .expect("router_step exported");
    let mut m = Machine::new(report.image.clone()).unwrap();
    m.set_exec_mode(mode);
    m.set_profiling(true);
    m.call("__knit_init", &[]).expect("init");
    let entry = m.image().func_by_name(&entry).expect("entry resolves");

    let work = clack::packets::workload(&clack::packets::WorkloadOptions {
        count: 96,
        ..Default::default()
    });
    let mut results = Vec::new();
    for (dev, pkt) in &work {
        m.netdevs[*dev].inject(pkt.clone());
        loop {
            match m.call_idx(entry, &[]) {
                Ok(0) => break,
                Ok(n) => results.push(Ok(n)),
                Err(e) => {
                    results.push(Err(e));
                    break;
                }
            }
        }
    }
    let outputs = (0..m.netdevs.len())
        .map(|d| {
            let mut frames = Vec::new();
            while let Some(fr) = m.netdevs[d].collect() {
                frames.push(fr);
            }
            frames
        })
        .collect();
    let obs = Observed {
        results,
        counters: m.counters(),
        profile: m.profile(),
        memory: Vec::new(), // router memory is huge; counters + frames suffice
        console: m.console.output.clone(),
        serial: m.serial.output.clone(),
        trace: m.trace.clone(),
    };
    (outputs, obs)
}

#[test]
fn clack_router_is_bit_identical_across_modes() {
    let (frames_fast, fast) = run_router(ExecMode::Fast);
    let (frames_ref, reference) = run_router(ExecMode::Reference);
    assert_eq!(frames_fast, frames_ref, "routed frames must match");
    assert_eq!(fast, reference, "counters, profile, and device output must match");
    assert!(fast.counters.cycles > 0);
}
