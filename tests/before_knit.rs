//! The "Before Knit" workflow (§5.1): components as object files in
//! archives, overridden by careful ordering of `ld`'s arguments — and the
//! ways that workflow breaks, which motivated Knit.

use knit_repro::cmini;
use knit_repro::cobj::{self, Archive, LinkInput, LinkOptions};
use knit_repro::machine::{self, Machine};

fn compile(name: &str, src: &str) -> cobj::ObjectFile {
    cmini::compile_simple(name, src).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn opts() -> LinkOptions {
    LinkOptions::new("main", machine::runtime_symbols())
}

const APP: &str = r#"
int console_putc(int c);
static void puts_(char *s) { while (*s) { console_putc(*s); s++; } }
int main() { puts_("hello"); return 0; }
"#;

const VGA: &str = r#"
int __con_putc(int c);
int console_putc(int c) { return __con_putc(c); }
"#;

const SERIAL: &str = r#"
int __serial_putc(int c);
int console_putc(int c) { return __serial_putc(c); }
"#;

/// The kit as the OSKit shipped it: components in an archive, the default
/// console pulled in on demand.
fn kit() -> Archive {
    Archive::from_members(
        "liboskit.a",
        vec![compile("vga.o", VGA), compile("unused.o", "int unused_component() { return 0; }")],
    )
}

#[test]
fn default_configuration_pulls_the_archived_console() {
    let img =
        cobj::link(&[LinkInput::Object(compile("app.o", APP)), LinkInput::Archive(kit())], &opts())
            .unwrap();
    // only the needed member was pulled (no `unused_component`)
    assert!(img.func_by_name("unused_component").is_none());
    let mut m = Machine::new(img).unwrap();
    m.run_entry().unwrap();
    assert_eq!(m.console.output, "hello");
    assert_eq!(m.serial.output, "");
}

#[test]
fn override_by_ordering_swaps_the_console() {
    // §5.1: "a careful ordering of ld's arguments would allow a programmer
    // to override an existing component" — serial.o before the archive.
    let img = cobj::link(
        &[
            LinkInput::Object(compile("app.o", APP)),
            LinkInput::Object(compile("serial.o", SERIAL)),
            LinkInput::Archive(kit()),
        ],
        &opts(),
    )
    .unwrap();
    let mut m = Machine::new(img).unwrap();
    m.run_entry().unwrap();
    assert_eq!(m.serial.output, "hello", "output goes to the serial line now");
    assert_eq!(m.console.output, "");
}

#[test]
fn wrong_ordering_silently_keeps_the_default() {
    // The trap: put the override AFTER the archive and ld quietly keeps the
    // original (the member already satisfied the symbol)… unless the
    // override is an explicit object, in which case it is a multiple
    // definition. Both failure modes are why "experience soon revealed the
    // deficiencies of ld as a component-linking tool".
    let as_archive = Archive::from_members("libserial.a", vec![compile("serial.o", SERIAL)]);
    let img = cobj::link(
        &[
            LinkInput::Object(compile("app.o", APP)),
            LinkInput::Archive(kit()),
            LinkInput::Archive(as_archive),
        ],
        &opts(),
    )
    .unwrap();
    let mut m = Machine::new(img).unwrap();
    m.run_entry().unwrap();
    assert_eq!(m.console.output, "hello", "the override silently did nothing");

    let err = cobj::link(
        &[
            LinkInput::Object(compile("app.o", APP)),
            LinkInput::Archive(kit()),
            LinkInput::Object(compile("serial.o", SERIAL)),
        ],
        &opts(),
    );
    // explicit objects are always included, so this time it is an error
    assert!(matches!(err, Err(cobj::LinkError::MultipleDefinition { .. })));
}

#[test]
fn two_consoles_at_once_is_impossible_without_knit() {
    // wanting BOTH consoles in one program (the redirect_printf example)
    // cannot be expressed at all: the two objects collide on console_putc.
    let err = cobj::link(
        &[
            LinkInput::Object(compile("app.o", APP)),
            LinkInput::Object(compile("vga.o", VGA)),
            LinkInput::Object(compile("serial.o", SERIAL)),
        ],
        &opts(),
    );
    assert!(matches!(err, Err(cobj::LinkError::MultipleDefinition { .. })));
    // …which is exactly what the RedirectKernel does trivially with Knit
    // (see oskit::KERNEL_REDIRECT and examples/redirect_printf.rs).
}
