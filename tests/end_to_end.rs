//! Cross-crate integration tests: the full pipeline from `.unit` + mini-C
//! sources to executed images, across all the major subsystems.

use knit_repro::clack::{self, packets, RouterHarness};
use knit_repro::knit::{build, BuildOptions, Program, SourceTree};
use knit_repro::machine::{self, Machine};
use knit_repro::oskit;

fn options(root: &str) -> BuildOptions {
    BuildOptions::new(root, machine::runtime_symbols())
}

#[test]
fn every_oskit_kernel_builds_and_runs() {
    for k in oskit::GOOD_KERNELS {
        let report = oskit::build_kernel(k).unwrap_or_else(|e| panic!("{k}: {e}"));
        // kernels with a main export should run to completion
        if report.exports.keys().any(|e| e.ends_with(".main")) {
            let mut m = Machine::new(report.image).expect("machine");
            m.run_entry().unwrap_or_else(|e| panic!("{k} run: {e}"));
        }
    }
}

#[test]
fn four_router_implementations_agree_packet_for_packet() {
    // modular Clack, flattened Clack, hand-optimized, Click generic, Click
    // optimized: five independent implementations of the same router must
    // emit identical frames in identical order.
    let work = packets::workload(&packets::WorkloadOptions {
        count: 96,
        pct_non_ip: 10,
        pct_ttl_expired: 10,
        pct_no_route: 10,
        seed: 99,
        ..Default::default()
    });

    // (implementation name, frames out of port 0, frames out of port 1)
    type PortFrames = Vec<Vec<u8>>;
    let mut outputs: Vec<(String, PortFrames, PortFrames)> = Vec::new();

    let mut run = |name: &str, mut h: RouterHarness| {
        for (dev, p) in &work {
            h.inject(*dev, p.clone());
        }
        h.run_until_idle();
        outputs.push((name.to_string(), h.collect(0), h.collect(1)));
    };

    let g = clack::ip_router();
    run(
        "clack-modular",
        RouterHarness::new(&clack::build_clack_router(&g, false).unwrap()).unwrap(),
    );
    run("clack-flat", RouterHarness::new(&clack::build_clack_router(&g, true).unwrap()).unwrap());
    run("hand", RouterHarness::new(&clack::build_hand_router(false).unwrap()).unwrap());
    run(
        "click-generic",
        RouterHarness::from_image(
            clack::click::build_click_router(&g, None).unwrap(),
            Some("click_init"),
            "router_step",
        )
        .unwrap(),
    );
    run(
        "click-optimized",
        RouterHarness::from_image(
            clack::click::build_click_router(&g, Some(clack::click::ClickOpts::all())).unwrap(),
            Some("click_init"),
            "router_step",
        )
        .unwrap(),
    );

    let (ref_name, ref0, ref1) = outputs[0].clone();
    for (name, o0, o1) in &outputs[1..] {
        assert_eq!(o0, &ref0, "{name} port 0 differs from {ref_name}");
        assert_eq!(o1, &ref1, "{name} port 1 differs from {ref_name}");
    }
    assert!(!ref0.is_empty() && !ref1.is_empty());
}

#[test]
fn click_config_language_to_running_router() {
    let graph = clack::config::parse(
        "from0 :: FromDevice(0);\n\
         from1 :: FromDevice(1);\n\
         cls :: Classifier(12/0800, -);\n\
         ttl :: DecIPTTL;\n\
         rt :: LookupIPRoute(10.0.1.0/24 0, 10.0.2.0/24 1);\n\
         chk :: CheckIPHeader;\n\
         from0 -> Counter -> cls;\n\
         from1 -> Counter -> cls;\n\
         cls[0] -> Strip(14) -> chk;\n\
         cls[1] -> Discard;\n\
         chk[0] -> ttl;\n\
         chk[1] -> Discard;\n\
         ttl[0] -> rt;\n\
         ttl[1] -> Discard;\n\
         rt[0] -> EtherEncap(0) -> Queue(4) -> ToDevice(0);\n\
         rt[1] -> EtherEncap(1) -> Queue(4) -> ToDevice(1);\n\
         rt[2] -> Discard;",
    )
    .expect("config parses");
    let report = clack::build_clack_router(&graph, false).expect("builds");
    let mut h = RouterHarness::new(&report).expect("harness");
    h.inject(0, packets::ip_packet(1, packets::NET1 | 9, 5, &[1, 2, 3]));
    h.run_until_idle();
    assert_eq!(h.collect(1).len(), 1);
}

#[test]
fn schedule_failure_reported_with_cycle() {
    let mut p = Program::new();
    p.load_str(
        "cycle.unit",
        r#"
        bundletype A = { fa }
        bundletype B = { fb }
        unit UA = {
            imports [ b : B ];
            exports [ a : A ];
            initializer ia for a;
            depends { ia needs b; };
            files { "a.c" };
        }
        unit UB = {
            imports [ a : A ];
            exports [ b : B ];
            initializer ib for b;
            depends { ib needs a; };
            files { "b.c" };
        }
        unit Sys = {
            exports [ out : A ];
            link {
                ua : UA [ b = ub.b ];
                ub : UB [ a = ua.a ];
                out = ua.a;
            };
        }
        "#,
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("a.c", "void ia() { }\nint fa() { return 1; }");
    t.add("b.c", "void ib() { }\nint fb() { return 2; }");
    let err = build(&p, &t, &options("Sys")).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("initialization cycle"), "{msg}");
    assert!(msg.contains("ia") && msg.contains("ib"), "{msg}");
}

#[test]
fn flattened_oskit_fs_kernel_matches_unflattened() {
    // flatten the whole FsKernel and require byte-identical console output
    let (mut p, t) = oskit::setup();
    p.load_str(
        "flatfs.unit",
        r#"
        unit FsKernelFlat = {
            exports [ main : Main ];
            link {
                con : VgaConsole;
                out : Printf [ console = con.console ];
                str : StrLib;
                mem : ListAlloc;
                fs : MemFs [ mem = mem.mem, str = str.str ];
                stdio : StdioUnit [ fs = fs.fs, str = str.str ];
                m : FsMain [ stdout = out.stdout, stdio = stdio.stdio, str = str.str ];
                main = m.main;
            };
            flatten;
        }
        "#,
    )
    .unwrap();
    let plain = oskit::build_kernel(oskit::KERNEL_FS).unwrap();
    let flat = build(&p, &t, &options("FsKernelFlat")).unwrap();
    assert_eq!(flat.stats.flatten_groups, 1);

    let mut mp = Machine::new(plain.image).unwrap();
    let rp = mp.run_entry().unwrap();
    let mut mf = Machine::new(flat.image).unwrap();
    let rf = mf.run_entry().unwrap();
    assert_eq!(rp, rf);
    assert_eq!(mp.console.output, mf.console.output);
    // Like the paper's Table 1 (±3% text), flattening must not balloon the
    // image: inlined copies are paid for by garbage-collecting the merged
    // group's now-private functions.
    assert!(
        flat.stats.text_size < plain.stats.text_size * 13 / 10,
        "flattened text {} vs plain {}",
        flat.stats.text_size,
        plain.stats.text_size
    );
}

#[test]
fn flattening_a_group_with_duplicate_instances_keeps_state_apart() {
    // The hardest flatten interaction: the RedirectKernel instantiates the
    // SAME Printf unit twice. Under flattening, both instances merge into
    // one translation unit — their statics and helpers must stay distinct.
    let (mut p, t) = oskit::setup();
    p.load_str(
        "flatredir.unit",
        r#"
        unit RedirectKernelFlat = {
            exports [ main : Main ];
            link {
                vga : VgaConsole;
                ser : SerialConsole;
                appout : Printf [ console = vga.console ];
                drvout : Printf [ console = ser.console ];
                m : RedirectMain [ app = appout.stdout, drv = drvout.stdout ];
                main = m.main;
            };
            flatten;
        }
        "#,
    )
    .unwrap();
    let plain = oskit::build_kernel(oskit::KERNEL_REDIRECT).unwrap();
    let flat = build(&p, &t, &options("RedirectKernelFlat")).unwrap();
    assert_eq!(flat.stats.flatten_groups, 1);

    let mut mp = Machine::new(plain.image).unwrap();
    mp.run_entry().unwrap();
    let mut mf = Machine::new(flat.image).unwrap();
    mf.run_entry().unwrap();
    assert_eq!(mp.console.output, mf.console.output, "vga output identical");
    assert_eq!(mp.serial.output, mf.serial.output, "serial output identical");
    assert!(mf.console.output.contains("app:"));
    assert!(mf.serial.output.contains("drv:"));
}

#[test]
fn build_reports_are_deterministic_across_runs() {
    let a = clack::build_clack_router(&clack::ip_router(), true).unwrap();
    let b = clack::build_clack_router(&clack::ip_router(), true).unwrap();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.stats.text_size, b.stats.text_size);
    assert_eq!(a.exports, b.exports);
    let work = packets::workload(&packets::WorkloadOptions { count: 32, ..Default::default() });
    let ca = RouterHarness::new(&a).unwrap().measure(&work).unwrap().cycles_per_packet;
    let cb = RouterHarness::new(&b).unwrap().measure(&work).unwrap().cycles_per_packet;
    assert_eq!(ca, cb, "whole-stack determinism");
}
