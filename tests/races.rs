//! Differential verification of the cross-unit race detector
//! (`knit::analyze`, lints K1006–K1009) against the dynamic lockset
//! oracle in `machine` (DESIGN.md §11).
//!
//! A seeded generator emits random 2–4-core compositions — one shared
//! unit full of spin-lock-guarded statics, one worker unit instantiated
//! per core, a root exporting one `Work` port per core — whose baseline
//! lock discipline is correct by construction. Each baseline is then
//! re-generated with one seeded lock-discipline mutation:
//!
//! * `DropAcquire`  — delete a `lk = 1;`              → K1006
//! * `DropRelease`  — delete a `lk = 0;`              → K1008
//! * `SwapLock`     — guard a body with the other lock → K1007
//! * `EscapeRegion` — write a shared static after release → K1006
//! * `UnguardedRmw` — add a bare `ctr++` entry point   → K1009
//!
//! The static side must flag **every** mutant (zero false negatives,
//! ≥100 mutants), and every statically-clean baseline must run race-free
//! under the dynamic oracle at its generated core count. One targeted
//! case closes the loop in the other direction: a `DropAcquire` mutant
//! actually executed on two cores trips the oracle.
//!
//! Failures print the generated seed; replay one case with
//! `SIMPERF_SEED=<n> cargo test --test races`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use knit_repro::clack::{self, packets};
use knit_repro::knit::{build, lint, BuildOptions, LintConfig, Program, SourceTree};
use knit_repro::machine::{self, MultiMachine};

mod common;
use common::{override_seed, repro};

const CONC_LINTS: [&str; 4] = ["K1006", "K1007", "K1008", "K1009"];

#[derive(Clone, Copy, Debug, PartialEq)]
enum Mutation {
    DropAcquire,
    DropRelease,
    SwapLock,
    EscapeRegion,
    UnguardedRmw,
}

const MUTATIONS: [(Mutation, &str); 5] = [
    (Mutation::DropAcquire, "K1006"),
    (Mutation::DropRelease, "K1008"),
    (Mutation::SwapLock, "K1007"),
    (Mutation::EscapeRegion, "K1006"),
    (Mutation::UnguardedRmw, "K1009"),
];

struct Fuzz {
    program: Program,
    tree: SourceTree,
    opts: BuildOptions,
    ncores: usize,
}

/// Generate the seed's composition, optionally with one mutation folded
/// in. The program *structure* (core count, functions, statics, which
/// function touches what) depends only on `seed`, so a mutant differs
/// from its baseline by exactly the mutation.
///
/// Discipline by construction: two spin locks `lk0`/`lk1`; static `s{i}`
/// is owned by lock `lk{i%2}`; function `api{f}` holds lock `lk{f%2}`
/// for its whole body and touches only statics it owns, always including
/// `s{f%2}` — so `s0` is written by every even function, which is what
/// `SwapLock` (applied to `api2`) needs to manufacture an inconsistency.
fn gen_fuzz(seed: u64, mutation: Option<Mutation>) -> Fuzz {
    let mut rng = StdRng::seed_from_u64(seed);
    let ncores = rng.random_range(2usize..5);
    let nfuncs = rng.random_range(3usize..5);
    let nstatics = rng.random_range(2usize..5);
    let with_array = rng.random_range(0u32..2) == 1;

    let mut shared = String::new();
    // Lock words are non-`static` so they stay link-visible (mangled
    // `lk{n}_p<inst>`) and the oracle can register them by name.
    shared.push_str("int lk0;\nint lk1;\n");
    for i in 0..nstatics {
        shared.push_str(&format!("static int s{i};\n"));
    }
    if with_array {
        shared.push_str("static int buf[4];\n");
    }
    if mutation == Some(Mutation::UnguardedRmw) {
        shared.push_str("static int poke_ctr;\n");
    }
    for f in 0..nfuncs {
        let lock = f % 2;
        let swapped = if mutation == Some(Mutation::SwapLock) && f == 2 { 1 - lock } else { lock };
        shared.push_str(&format!("\nvoid api{f}(int v)\n{{\n"));
        shared.push_str(&format!("    while (lk{swapped}) {{ }}\n"));
        if !(mutation == Some(Mutation::DropAcquire) && f == 0) {
            shared.push_str(&format!("    lk{swapped} = 1;\n"));
        }
        shared.push_str(&format!("    s{lock} = s{lock} + v;\n"));
        for i in 0..nstatics {
            if i % 2 == lock && i != lock && rng.random_range(0u32..2) == 1 {
                match rng.random_range(0u32..3) {
                    0 => shared.push_str(&format!("    s{i}++;\n")),
                    1 => shared.push_str(&format!("    s{i} = v;\n")),
                    _ => shared.push_str(&format!("    if (v > 3) {{ s{i} = s{i} - 1; }}\n")),
                }
            }
        }
        if with_array && lock == 0 {
            shared.push_str("    buf[v & 3] = v;\n");
        }
        if !(mutation == Some(Mutation::DropRelease) && f == 0) {
            shared.push_str(&format!("    lk{swapped} = 0;\n"));
        }
        if mutation == Some(Mutation::EscapeRegion) && f == 1 {
            shared.push_str("    s0 = v;\n");
        }
        shared.push_str("}\n");
    }
    if mutation == Some(Mutation::UnguardedRmw) {
        shared.push_str("\nvoid poke(void)\n{\n    poke_ctr++;\n}\n");
    }

    let mut api: Vec<String> = (0..nfuncs).map(|f| format!("api{f}")).collect();
    if mutation == Some(Mutation::UnguardedRmw) {
        api.push("poke".into());
    }

    let mut worker = String::new();
    for f in &api {
        if f == "poke" {
            worker.push_str("void poke(void);\n");
        } else {
            worker.push_str(&format!("void {f}(int v);\n"));
        }
    }
    worker.push_str("\nint work(int n)\n{\n    int i;\n    for (i = 0; i < 2; i++) {\n");
    for f in &api {
        if f == "poke" {
            worker.push_str("        poke();\n");
        } else {
            worker.push_str(&format!("        {f}(n + i);\n"));
        }
    }
    worker.push_str("    }\n    return 0;\n}\n");

    let mut unit = String::new();
    unit.push_str(&format!("bundletype Api = {{ {} }}\n", api.join(", ")));
    unit.push_str("bundletype Work = { work }\n");
    unit.push_str("unit Shared = { exports [ api : Api ]; files { \"shared.c\" }; }\n");
    unit.push_str(
        "unit Worker = {\n    imports [ api : Api ];\n    exports [ w : Work ];\n    \
         depends { exports needs imports; };\n    files { \"worker.c\" };\n}\n",
    );
    unit.push_str("unit Fuzz = {\n    exports [ ");
    unit.push_str(&(0..ncores).map(|c| format!("w{c} : Work")).collect::<Vec<_>>().join(", "));
    unit.push_str(" ];\n    link {\n        s : Shared;\n");
    for c in 0..ncores {
        unit.push_str(&format!("        c{c} : Worker [ api = s.api ];\n"));
    }
    for c in 0..ncores {
        unit.push_str(&format!("        w{c} = c{c}.w;\n"));
    }
    unit.push_str("    };\n}\n");

    let mut program = Program::new();
    program.load_str("fuzz.unit", &unit).expect("generated unit file parses");
    let mut tree = SourceTree::new();
    tree.add("shared.c", shared);
    tree.add("worker.c", worker);
    let mut opts = BuildOptions::new("Fuzz", machine::runtime_symbols());
    opts.entry = None;
    Fuzz { program, tree, opts, ncores }
}

/// The concurrency-lint codes the composition trips, in canonical order.
fn conc_codes(fz: &Fuzz) -> Vec<String> {
    let report = lint(&fz.program, &fz.tree, &fz.opts, &LintConfig::new()).expect("lints");
    report
        .diagnostics
        .iter()
        .filter(|d| CONC_LINTS.contains(&d.code))
        .map(|d| d.code.to_string())
        .collect()
}

/// Run the composition's workers round-robin on its generated core count
/// with the dynamic lockset oracle armed over the data segment; returns
/// the number of race events the oracle recorded.
fn oracle_events(fz: &Fuzz) -> usize {
    let report = build(&fz.program, &fz.tree, &fz.opts).expect("baseline builds");
    let image = &report.image;
    let mut mm = MultiMachine::new(image.clone(), fz.ncores).expect("machine");
    if image.func_by_name("__knit_init").is_some() {
        mm.call_on(0, "__knit_init", &[]).expect("init");
    }
    let locks: Vec<(u64, u64)> = image
        .symbols
        .keys()
        .filter(|k| k.starts_with("lk0_p") || k.starts_with("lk1_p"))
        .map(|k| (image.data_by_name(k).expect("lock word in data"), 8))
        .collect();
    assert!(!locks.is_empty(), "generated locks must reach the image");
    mm.race_check_enable(image.data_base, image.data.len(), &locks);
    let entries: Vec<String> = (0..fz.ncores)
        .map(|c| report.exports.get(&format!("w{c}.work")).expect("root export").clone())
        .collect();
    for round in 0..4i64 {
        for (c, entry) in entries.iter().enumerate() {
            mm.call_on(c, entry, &[round * 7 + c as i64]).expect("work runs");
        }
    }
    mm.race_events().len()
}

/// ≥100 seeded lock-discipline mutations, zero static false negatives:
/// every mutant trips its expected lint.
#[test]
fn every_seeded_mutation_is_flagged_statically() {
    let mut mutants = 0;
    for case in 0..21u64 {
        let seed = override_seed(0xDACE_0000 + case);
        for (mutation, expected) in MUTATIONS {
            let codes = conc_codes(&gen_fuzz(seed, Some(mutation)));
            assert!(
                codes.iter().any(|c| c == expected),
                "{mutation:?} mutant must trip {expected}, got {codes:?}; {}",
                repro(seed)
            );
            mutants += 1;
        }
    }
    assert!(mutants >= 100, "mutation sweep shrank to {mutants} mutants");
}

/// The statically-clean baselines really are clean — and race-free under
/// the dynamic oracle at their generated core count.
#[test]
fn clean_baselines_are_quiet_statically_and_dynamically() {
    for case in 0..10u64 {
        let seed = override_seed(0xDACE_0000 + case);
        let fz = gen_fuzz(seed, None);
        let codes = conc_codes(&fz);
        assert!(codes.is_empty(), "baseline must lint clean, got {codes:?}; {}", repro(seed));
        let events = oracle_events(&fz);
        assert_eq!(events, 0, "clean baseline raced dynamically; {}", repro(seed));
    }
}

/// The differential closes in the other direction too: a deleted acquire
/// is not just a lint, it is an actual race the oracle observes once two
/// cores execute the unguarded writes.
#[test]
fn dropped_acquire_races_under_the_oracle() {
    let seed = override_seed(0xDACE_0101);
    let fz = gen_fuzz(seed, Some(Mutation::DropAcquire));
    assert!(conc_codes(&fz).iter().any(|c| c == "K1006"), "{}", repro(seed));
    let events = oracle_events(&fz);
    assert!(events > 0, "two cores wrote with no lock held, oracle must report; {}", repro(seed));
}

/// Dynamic-oracle smoke on the real sharded Clack router: the intact
/// 4-core router — pinned lint-clean in `tests/lints.rs` — processes the
/// canonical workload with the oracle armed over its whole data segment
/// and reports nothing.
#[test]
fn sharded_router_is_race_free_under_the_oracle() {
    let ncores = 4;
    let report = clack::build_mc_router(ncores, false).expect("sharded router builds");
    let image = report.image.clone();
    let locks: Vec<(u64, u64)> = image
        .symbols
        .keys()
        .filter(|k| k.starts_with("lock_p"))
        .map(|k| (image.data_by_name(k).expect("lock word in data"), 8))
        .collect();
    assert!(!locks.is_empty(), "SharedQueue lock words must reach the image");
    // The Discard `dropped` counters are deliberately approximate — the
    // units carry `#[allow(atomicity_hint)]` — so they get the matching
    // dynamic exemption.
    let exempt: Vec<(u64, u64)> = image
        .symbols
        .keys()
        .filter(|k| k.starts_with("dropped_p"))
        .map(|k| (image.data_by_name(k).expect("counter in data"), 8))
        .collect();
    assert!(!exempt.is_empty(), "Discard drop counters must reach the image");
    let mut h = clack::MultiRouterHarness::new(&report, ncores).unwrap();
    h.machine().race_check_enable(image.data_base, image.data.len(), &locks);
    h.machine().race_exempt(&exempt);
    for (_, pkt) in packets::workload(&packets::WorkloadOptions {
        count: 64,
        pct_non_ip: 10,
        pct_ttl_expired: 5,
        pct_no_route: 5,
        ..Default::default()
    }) {
        h.inject(pkt);
    }
    h.run_until_idle();
    let events = h.machine().race_events();
    assert!(events.is_empty(), "router raced: {events:?}");
}
