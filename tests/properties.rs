//! Property-based tests over the core invariants (DESIGN.md §9).

use proptest::prelude::*;

use knit_repro::clack::{self, packets, RouterHarness};
use knit_repro::cmini;
use knit_repro::cobj;
use knit_repro::knit_lang;
use knit_repro::machine::{self, Machine};

// ---------------------------------------------------------------------------
// front-end robustness: no panics on arbitrary input
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn knit_lang_parser_never_panics(src in ".{0,200}") {
        let _ = knit_lang::parse("fuzz.unit", &src);
    }

    #[test]
    fn cmini_frontend_never_panics(src in ".{0,200}") {
        let _ = cmini::compile_simple("fuzz.c", &src);
    }
}

// ---------------------------------------------------------------------------
// knit-lang: pretty-print / reparse round trip
// ---------------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "bundletype"
                | "flags"
                | "property"
                | "type"
                | "unit"
                | "imports"
                | "exports"
                | "depends"
                | "needs"
                | "files"
                | "with"
                | "rename"
                | "to"
                | "initializer"
                | "finalizer"
                | "for"
                | "link"
                | "flatten"
                | "constraints"
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn printed_knit_files_reparse_identically(
        bt in ident(),
        members in prop::collection::vec(ident(), 1..4),
        unit in ident(),
        port_in in ident(),
        port_out in ident(),
        file in "[a-z]{1,8}\\.c",
        flat in any::<bool>(),
    ) {
        prop_assume!(port_in != port_out);
        let mut decls = format!("bundletype {bt} = {{ {} }}\n", members.join(", "));
        decls.push_str(&format!(
            "unit {unit} = {{\n    imports [ {port_in} : {bt} ];\n    exports [ {port_out} : {bt} ];\n    depends {{ exports needs imports; }};\n    files {{ \"{file}\" }};\n{}}}\n",
            if flat { "    flatten;\n" } else { "" }
        ));
        let parsed = knit_lang::parse("gen.unit", &decls).expect("generated source parses");
        let printed = knit_lang::print(&parsed);
        let reparsed = knit_lang::parse("gen2.unit", &printed).expect("printed source reparses");
        prop_assert_eq!(knit_lang::print(&reparsed), printed);
    }
}

// ---------------------------------------------------------------------------
// compiler: O0 and O2 agree on randomly generated arithmetic programs
// ---------------------------------------------------------------------------

/// A tiny expression generator producing valid mini-C over variables a, b.
fn expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            (-100i64..100).prop_map(|v| v.to_string()),
            Just("a".to_string()),
            Just("b".to_string()),
        ]
        .boxed()
    } else {
        let sub = expr(depth - 1);
        let sub2 = expr(depth - 1);
        prop_oneof![
            (
                sub.clone(),
                prop_oneof![Just("+"), Just("-"), Just("*"), Just("&"), Just("|"), Just("^")],
                sub2.clone()
            )
                .prop_map(|(l, op, r)| format!("({l} {op} {r})")),
            (sub.clone(), prop_oneof![Just("<"), Just("<="), Just("=="), Just("!=")], sub2.clone())
                .prop_map(|(l, op, r)| format!("({l} {op} {r})")),
            (sub.clone(), sub2.clone(), expr(0)).prop_map(|(c, t, e)| format!("({c} ? {t} : {e})")),
            sub,
        ]
        .boxed()
    }
}

fn run_compiled(src: &str, opt: cmini::OptLevel, a: i64, b: i64) -> i64 {
    let opts = cmini::CompileOptions { opt, ..Default::default() };
    let obj = cmini::compile("gen.c", src, &opts, &cmini::NoFiles).expect("compiles");
    let img = cobj::link(
        &[cobj::LinkInput::Object(obj)],
        &cobj::LinkOptions {
            entry: None,
            runtime_symbols: machine::runtime_symbols().collect(),
            ..Default::default()
        },
    )
    .expect("links");
    let mut m = Machine::new(img).expect("machine");
    m.call("f", &[a, b]).expect("runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_arithmetic_semantics(
        e in expr(3),
        a in -50i64..50,
        b in -50i64..50,
    ) {
        let src = format!("int helper(int a, int b) {{ return {e}; }}\nint f(int a, int b) {{ int r = helper(a, b); return r + helper(b, a); }}");
        let o0 = run_compiled(&src, cmini::OptLevel::O0, a, b);
        let o2 = run_compiled(&src, cmini::OptLevel::O2, a, b);
        prop_assert_eq!(o0, o2, "src: {}", src);
    }
}

// ---------------------------------------------------------------------------
// linker invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn objcopy_duplicate_then_rename_is_consistent(suffix in "[a-z]{1,6}") {
        let obj = cmini::compile_simple(
            "t.c",
            "int helper();\nstatic int s;\nint entry() { s++; return helper(); }",
        ).expect("compiles");
        let dup = cobj::objcopy::duplicate(&obj, &format!("_{suffix}"));
        dup.validate().expect("duplicate is structurally valid");
        // every global got the suffix; locals untouched
        let expected_tail = format!("_{suffix}");
        for name in dup.exported_names() {
            prop_assert!(name.ends_with(&expected_tail));
        }
        for name in dup.undefined_names() {
            prop_assert!(name.ends_with(&expected_tail));
        }
        prop_assert!(dup.symbols.iter().any(|s| s.name == "s"));
    }
}

// ---------------------------------------------------------------------------
// machine invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn counters_are_monotone_and_reproducible(n in 1i64..200) {
        let obj = cmini::compile_simple(
            "t.c",
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i * i; return s; }",
        ).expect("compiles");
        let img = cobj::link(
            &[cobj::LinkInput::Object(obj)],
            &cobj::LinkOptions { entry: None, runtime_symbols: machine::runtime_symbols().collect(), ..Default::default() },
        ).expect("links");
        let mut m = Machine::new(img.clone()).expect("machine");
        let before = m.counters();
        let r1 = m.call("f", &[n]).expect("runs");
        let mid = m.counters();
        let r2 = m.call("f", &[n]).expect("runs again");
        let after = m.counters();
        prop_assert_eq!(r1, r2);
        prop_assert!(mid.cycles > before.cycles);
        prop_assert!(after.cycles > mid.cycles);
        prop_assert!(mid.instructions > 0);

        // fresh machine, same program, same answer and same cold cost
        let mut m2 = Machine::new(img).expect("machine");
        let r3 = m2.call("f", &[n]).expect("runs");
        prop_assert_eq!(r3, r1);
        prop_assert_eq!(m2.counters().cycles, mid.cycles - before.cycles);
    }
}

// ---------------------------------------------------------------------------
// whole-router optimization soundness on random packets
// ---------------------------------------------------------------------------

proptest! {
    // builds are cached outside the closure; only packets vary
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn flattening_is_sound_on_random_packets(
        dsts in prop::collection::vec((0u32..2, 1u32..255, 1u8..64), 1..12),
    ) {
        use std::sync::OnceLock;
        static BUILDS: OnceLock<(knit_repro::knit::BuildReport, knit_repro::knit::BuildReport)> =
            OnceLock::new();
        let (plain, flat) = BUILDS.get_or_init(|| {
            let g = clack::ip_router();
            (
                clack::build_clack_router(&g, false).expect("plain builds"),
                clack::build_clack_router(&g, true).expect("flat builds"),
            )
        });
        let mut hp = RouterHarness::new(plain).expect("harness");
        let mut hf = RouterHarness::new(flat).expect("harness");
        for (net, host, ttl) in &dsts {
            let dst = if *net == 0 { packets::NET0 } else { packets::NET1 } | *host;
            let p = packets::ip_packet(0x0A000301, dst, *ttl, &[7; 16]);
            hp.inject((*net ^ 1) as usize, p.clone());
            hf.inject((*net ^ 1) as usize, p);
        }
        hp.run_until_idle();
        hf.run_until_idle();
        prop_assert_eq!(hp.collect(0), hf.collect(0));
        prop_assert_eq!(hp.collect(1), hf.collect(1));
    }
}
