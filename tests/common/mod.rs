//! Shared plumbing for the differential test suites (`simperf.rs`,
//! `mc.rs`): reproducible-seed handling and the random program generator.
//!
//! The vendored proptest has no shrinking, so a failing case is reproduced
//! by the *generated* seed, not a shrunk one. Every differential proptest
//! therefore (a) routes its seed through [`override_seed`], so
//! `SIMPERF_SEED=<n> cargo test …` replays one specific trace from the
//! CLI, and (b) tags its assertion messages with [`repro`], so a failure
//! prints the exact command that replays it.

#![allow(dead_code)] // each integration test binary uses a subset

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use knit_repro::cobj::ir::{BinOp, Instr, UnOp, Width};
use knit_repro::cobj::object::{FuncDef, ObjectFile, Symbol};
use knit_repro::cobj::{link, Image, LinkInput, LinkOptions};
use knit_repro::machine;

/// Env var naming a seed to replay (decimal u64).
pub const SEED_ENV: &str = "SIMPERF_SEED";

/// Replace a generated seed with `SIMPERF_SEED` when set: every case of
/// the sweep then runs the requested trace, replaying a printed failure
/// directly from the CLI.
pub fn override_seed(generated: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(s) => s.trim().parse().unwrap_or(generated),
        Err(_) => generated,
    }
}

/// The standard repro suffix for failure messages: a copy-pasteable
/// replay command for the failing seed.
pub fn repro(seed: u64) -> String {
    format!("replay with `{SEED_ENV}={seed} cargo test`")
}

/// Intrinsics random programs may call (a mix of pure, device, faulting,
/// and counter-observing operations — `__clock` reads live cycle counts,
/// which is exactly the kind of thing a buggy fast path would skew).
pub const INTRINSICS: &[&str] = &["__brk", "__clock", "__con_putc", "__halt", "__trace"];

/// Generate a linked image from `seed`: a handful of functions with random
/// bodies that call each other (directly and through function pointers),
/// touch frame and heap memory, and hit every fault class.
pub fn gen_image(seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let nfuncs = rng.random_range(2usize..5);
    let mut o = ObjectFile::new("diff.o");
    let intr_syms: Vec<_> = INTRINSICS.iter().map(|n| o.add_symbol(Symbol::undef(*n))).collect();
    let shapes: Vec<(u32, u32, u32)> = (0..nfuncs)
        .map(|_| {
            let params = rng.random_range(0u32..3);
            let nregs = rng.random_range(4u32..8);
            let frame = [0u32, 16, 32][rng.random_range(0usize..3)];
            (params, nregs, frame)
        })
        .collect();
    let func_syms: Vec<_> =
        (0..nfuncs).map(|i| o.add_symbol(Symbol::func(format!("f{i}")))).collect();

    for (i, &(params, nregs, frame)) in shapes.iter().enumerate() {
        let len = rng.random_range(4usize..14);
        let mut body = Vec::with_capacity(len);
        let reg = |rng: &mut StdRng| rng.random_range(0u32..nregs);
        for _ in 0..len {
            let ins = match rng.random_range(0u32..20) {
                0 | 1 => Instr::Const {
                    dst: reg(&mut rng),
                    // Mostly small values (zeros make natural div-by-zero
                    // divisors); occasionally a wild one for OOB addresses.
                    value: if rng.random_bool(0.15) {
                        rng.random::<i64>() >> 16
                    } else {
                        rng.random_range(-64i64..64)
                    },
                },
                2 => Instr::Mov { dst: reg(&mut rng), src: reg(&mut rng) },
                3..=5 => {
                    const OPS: &[BinOp] = &[
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Div,
                        BinOp::Rem,
                        BinOp::And,
                        BinOp::Xor,
                        BinOp::Shl,
                        BinOp::Eq,
                        BinOp::Lt,
                    ];
                    Instr::Bin {
                        op: OPS[rng.random_range(0usize..OPS.len())],
                        dst: reg(&mut rng),
                        a: reg(&mut rng),
                        b: reg(&mut rng),
                    }
                }
                6 => Instr::Un {
                    op: [UnOp::Neg, UnOp::Not, UnOp::BitNot][rng.random_range(0usize..3)],
                    dst: reg(&mut rng),
                    a: reg(&mut rng),
                },
                7 | 8 if frame > 0 => Instr::FrameAddr {
                    dst: reg(&mut rng),
                    offset: rng.random_range(0i64..frame as i64),
                },
                9 => Instr::Load {
                    dst: reg(&mut rng),
                    addr: reg(&mut rng),
                    offset: rng.random_range(-4i64..12),
                    width: [Width::W1, Width::W2, Width::W4, Width::W8]
                        [rng.random_range(0usize..4)],
                },
                10 => Instr::Store {
                    addr: reg(&mut rng),
                    offset: rng.random_range(-4i64..12),
                    src: reg(&mut rng),
                    width: [Width::W1, Width::W2, Width::W4, Width::W8]
                        [rng.random_range(0usize..4)],
                },
                11 => Instr::VarArg { dst: reg(&mut rng), idx: reg(&mut rng) },
                12 | 13 => {
                    // Direct call: another function (recursion allowed — the
                    // depth limit is itself under test) or an intrinsic.
                    let target = if rng.random_bool(0.6) {
                        func_syms[rng.random_range(0usize..nfuncs)]
                    } else {
                        intr_syms[rng.random_range(0usize..intr_syms.len())]
                    };
                    let nargs = rng.random_range(0usize..3);
                    Instr::Call {
                        dst: if rng.random_bool(0.7) { Some(reg(&mut rng)) } else { None },
                        target,
                        args: (0..nargs).map(|_| reg(&mut rng)).collect(),
                    }
                }
                14 => Instr::Addr {
                    dst: reg(&mut rng),
                    sym: if rng.random_bool(0.7) {
                        func_syms[rng.random_range(0usize..nfuncs)]
                    } else {
                        intr_syms[rng.random_range(0usize..intr_syms.len())]
                    },
                    offset: 0,
                },
                15 => {
                    // Often a garbage pointer → BadFunctionPointer; after an
                    // `Addr`, a live one → real indirect call.
                    let nargs = rng.random_range(0usize..3);
                    Instr::CallInd {
                        dst: if rng.random_bool(0.7) { Some(reg(&mut rng)) } else { None },
                        target: reg(&mut rng),
                        args: (0..nargs).map(|_| reg(&mut rng)).collect(),
                    }
                }
                16 => Instr::Jump { target: rng.random_range(0usize..len) },
                17 => Instr::Branch {
                    cond: reg(&mut rng),
                    then_to: rng.random_range(0usize..len),
                    else_to: rng.random_range(0usize..len),
                },
                18 => Instr::Ret {
                    value: if rng.random_bool(0.8) { Some(reg(&mut rng)) } else { None },
                },
                _ => Instr::Nop,
            };
            body.push(ins);
        }
        o.funcs.push(FuncDef { sym: func_syms[i], params, nregs, frame_size: frame, body });
    }
    link(&[LinkInput::Object(o)], &LinkOptions::new("f0", machine::runtime_symbols()))
        .expect("generated object links")
}
