//! Lockstep differential tests for the multi-core machine.
//!
//! The `MultiMachine` schedules cores round-robin at call granularity, so
//! a trace is a deterministic interleaving — the same interleaving in
//! `ExecMode::Fast` and `ExecMode::Reference`. Everything observable must
//! then be bit-identical across the two interpreter loops: per-call
//! results and faults, per-core performance counters (including the new
//! coherence counters), bus transaction counts, per-core device output,
//! and the synced shared memory image. These tests drive that contract
//! over random multi-core programs (which fault, recurse, and race on
//! shared data on purpose) and over the real sharded Clack router, and
//! close with the sharded-vs-single-core output-multiset oracle.
//!
//! Failures print the generated seed; replay one trace with
//! `SIMPERF_SEED=<n> cargo test --test mc`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use knit_repro::clack::{self, packets};
use knit_repro::machine::{
    BusStats, CostModel, DCacheParams, ExecMode, Fault, Machine, MultiMachine, PerfCounters,
    RunLimits,
};

mod common;
use common::{gen_image, override_seed, repro};

// ---------------------------------------------------------------------------
// random multi-core programs
// ---------------------------------------------------------------------------

/// Everything a multi-core execution can observe, snapshot for the
/// bit-identity comparison.
#[derive(Debug, PartialEq)]
struct McObserved {
    /// Call results in interleaving order (core-major round-robin).
    results: Vec<Result<i64, Fault>>,
    /// Per-core performance counters (coherence fields included).
    counters: Vec<PerfCounters>,
    /// Bus transaction counts.
    bus: BusStats,
    /// The shared memory with dirty lines and pending write-backs folded
    /// in — the canonical memory observation.
    memory: Vec<u8>,
    /// Per-core console output.
    consoles: Vec<String>,
    /// Per-core trace buffers.
    traces: Vec<Vec<i64>>,
}

/// Run `rounds` round-robin rounds of `f0` on an `ncores` machine and
/// snapshot every observable.
fn observe_mc(
    image: &knit_repro::cobj::Image,
    mode: ExecMode,
    ncores: usize,
    rounds: usize,
    args: &[i64],
    dcache: DCacheParams,
) -> McObserved {
    // The stack region is split across cores, so it must be big enough
    // for every core to get a useful slice.
    let limits = RunLimits {
        max_steps: 20_000,
        max_call_depth: 32,
        heap_size: 1 << 16,
        stack_size: 16 * 4096,
    };
    let costs = CostModel { dcache, ..CostModel::default() };
    let mut mm = MultiMachine::with_config(image.clone(), costs, limits, ncores).unwrap();
    mm.set_exec_mode(mode);
    let mut results = Vec::new();
    for _ in 0..rounds {
        for c in 0..ncores {
            results.push(mm.call_on(c, "f0", args));
        }
    }
    mm.check_invariants().expect("MESI invariants hold after the trace");
    McObserved {
        results,
        counters: (0..ncores).map(|c| mm.counters(c)).collect(),
        bus: mm.bus_stats(),
        memory: mm.memory_synced(),
        consoles: (0..ncores).map(|c| mm.core(c).console.output.clone()).collect(),
        traces: (0..ncores).map(|c| mm.core(c).trace.clone()).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lockstep differential property: random programs racing on
    /// shared globals behave bit-identically under both interpreter
    /// loops, for 2–4 cores and three D-cache geometries.
    #[test]
    fn fast_matches_reference_on_random_multicore_programs(seed in any::<u64>()) {
        let seed = override_seed(seed);
        let image = gen_image(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d63); // "mc"
        let ncores = rng.random_range(2usize..5);
        let rounds = rng.random_range(1usize..4);
        let args: Vec<i64> = (0..rng.random_range(0usize..3))
            .map(|_| rng.random_range(-8i64..8))
            .collect();
        // Tiny caches force evictions, write-backs, and snoop traffic.
        let geometries = [
            DCacheParams::default(),
            DCacheParams { size: 128, line: 32, ..DCacheParams::default() },
            DCacheParams { size: 64, line: 16, ..DCacheParams::default() },
        ];
        let dcache = geometries[rng.random_range(0usize..3)];

        let fast = observe_mc(&image, ExecMode::Fast, ncores, rounds, &args, dcache);
        let reference = observe_mc(&image, ExecMode::Reference, ncores, rounds, &args, dcache);
        prop_assert_eq!(fast, reference, "{}", repro(seed));
    }
}

/// A multi-core machine must agree with a single-core machine about
/// guest-visible semantics: the same calls on core 0 of an N-core
/// machine return the same results as on a plain `Machine` (costs differ
/// — the D-cache charges stalls — but values may not).
#[test]
fn core_zero_results_match_the_single_core_machine() {
    for seed in [3u64, 17, 4242, 0xdead] {
        let image = gen_image(seed);
        let limits = RunLimits {
            max_steps: 20_000,
            max_call_depth: 32,
            heap_size: 1 << 16,
            stack_size: 16 * 4096,
        };
        let mut single = Machine::with_config(image.clone(), CostModel::default(), limits).unwrap();
        let mut multi = MultiMachine::with_config(image, CostModel::default(), limits, 2).unwrap();
        for _ in 0..3 {
            let a = single.call("f0", &[1, 2]);
            let b = multi.call_on(0, "f0", &[1, 2]);
            assert_eq!(a, b, "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------------
// the real thing: the sharded Clack router
// ---------------------------------------------------------------------------

/// Drive the sharded router end to end in `mode` over the canonical
/// workload and snapshot every observable, per-packet outputs included.
fn run_sharded(ncores: usize, mode: ExecMode) -> (Vec<Vec<Vec<u8>>>, McObserved) {
    let report = clack::build_mc_router(ncores, false).expect("sharded router builds");
    let mut h = clack::MultiRouterHarness::new(&report, ncores).unwrap();
    h.set_exec_mode(mode);
    let work = packets::workload(&packets::WorkloadOptions {
        count: 80,
        pct_non_ip: 10,
        pct_ttl_expired: 5,
        pct_no_route: 5,
        ..Default::default()
    });
    let mut results = Vec::new();
    for (_, pkt) in &work {
        h.inject(pkt.clone());
    }
    loop {
        match h.step_round() {
            Ok(0) => break,
            other => results.push(other),
        }
    }
    let outputs = (0..2).map(|p| h.collect(p)).collect();
    let mm = h.machine();
    mm.check_invariants().unwrap();
    let obs = McObserved {
        results,
        counters: (0..ncores).map(|c| mm.counters(c)).collect(),
        bus: mm.bus_stats(),
        memory: mm.memory_synced(),
        consoles: (0..ncores).map(|c| mm.core(c).console.output.clone()).collect(),
        traces: (0..ncores).map(|c| mm.core(c).trace.clone()).collect(),
    };
    (outputs, obs)
}

#[test]
fn sharded_router_is_bit_identical_across_modes() {
    for ncores in [2usize, 4] {
        let (frames_fast, fast) = run_sharded(ncores, ExecMode::Fast);
        let (frames_ref, reference) = run_sharded(ncores, ExecMode::Reference);
        assert_eq!(frames_fast, frames_ref, "{ncores}-core routed frames must match");
        assert_eq!(fast, reference, "{ncores}-core counters/bus/memory must match");
        // and the run did real multi-core work
        assert!(fast.counters.iter().all(|c| c.instructions > 0));
        assert!(fast.counters.iter().map(|c| c.coherence_misses).sum::<u64>() > 0);
    }
}

/// The tentpole oracle: the sharded router on N cores emits exactly the
/// same multiset of output frames per port as the single-core router on
/// the same input trace — RSS sharding and the coherent SharedQueue may
/// reorder packets, never alter or drop them.
#[test]
fn sharded_router_matches_single_core_output_multiset() {
    let work = packets::workload(&packets::WorkloadOptions {
        count: 120,
        pct_non_ip: 10,
        pct_ttl_expired: 10,
        pct_no_route: 10,
        ..Default::default()
    });
    let single = clack::build_clack_router(&clack::ip_router(), false).unwrap();
    let mut hs = clack::RouterHarness::new(&single).unwrap();
    for (dev, pkt) in &work {
        hs.inject(*dev, pkt.clone());
    }
    hs.run_until_idle();
    let mut oracle: Vec<Vec<Vec<u8>>> = (0..2).map(|p| hs.collect(p)).collect();
    oracle.iter_mut().for_each(|v| v.sort());

    for ncores in [1usize, 2, 4] {
        let report = clack::build_mc_router(ncores, false).unwrap();
        let mut h = clack::MultiRouterHarness::new(&report, ncores).unwrap();
        for (_, pkt) in &work {
            h.inject(pkt.clone());
        }
        h.run_until_idle();
        for (port, want) in oracle.iter().enumerate() {
            let mut got = h.collect(port);
            got.sort();
            assert_eq!(
                &got, want,
                "{ncores}-core port {port} output multiset diverged from the single-core oracle"
            );
        }
        h.machine().check_invariants().unwrap();
    }
}
