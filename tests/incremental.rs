//! Incremental-build correctness and precision tests for
//! [`knit::BuildSession`] (DESIGN.md §3): a session rebuild must always
//! produce the byte-identical image a cold build of the same inputs
//! would, and — the precision half — each kind of edit must rerun
//! *exactly* the phases whose inputs changed, counted by
//! [`knit::SessionStats`].

use proptest::prelude::*;

use knit_repro::clack::{ip_router, router_build_inputs};
use knit_repro::knit::{build, BuildOptions, BuildSession, KnitError, SessionStats};
use knit_repro::machine;

// ---------------------------------------------------------------------------
// fixture: a three-unit program with an initializer, a dependency, and
// constraints, so every pipeline phase has real work to memoize
// ---------------------------------------------------------------------------

/// The `.unit` source, parameterized the way the edit tests (and the
/// random-edit proptest) mutate it: `strict` toggles App's constraint
/// annotation, `comment` appends a comment-only line (which must change
/// no fingerprint at all).
fn unit_src(strict: bool, comment: bool) -> String {
    let ctx = if strict { "ProcessContext" } else { "NoContext" };
    let mut s = format!(
        r#"
property context
type NoContext
type ProcessContext < NoContext
bundletype Main = {{ main }}
bundletype Val = {{ value }}
unit Value = {{
    exports [ v : Val ];
    files {{ "value.c" }};
    initializer value_init for v;
    constraints {{ context(v) = NoContext; }};
}}
unit App = {{
    imports [ v : Val ];
    exports [ m : Main ];
    depends {{ exports needs imports; }};
    files {{ "app.c" }};
    constraints {{ context(m) = {ctx}; context(m) <= context(v); }};
}}
unit Top = {{
    exports [ m : Main ];
    link {{
        val : Value;
        app : App [ v = val.v ];
        m = app.m;
    }};
}}
"#
    );
    if comment {
        s.push_str("// comment-only edit: no fingerprint may change\n");
    }
    s
}

fn value_c(ret: i64) -> String {
    format!("static int base;\nvoid value_init() {{\n    base = {ret};\n}}\nint value() {{\n    return base;\n}}\n")
}

fn app_c(boost: i64) -> String {
    format!("int value();\nint main() {{\n    return value() + {boost};\n}}\n")
}

fn session() -> BuildSession {
    let mut s = BuildSession::new(
        BuildOptions::root("Top").runtime_symbols(machine::runtime_symbols()).jobs(1).build(),
    );
    s.load_units("inc.unit", &unit_src(false, false)).expect("fixture parses");
    s.update_source("value.c", &value_c(40));
    s.update_source("app.c", &app_c(2));
    s
}

fn run_to_exit(image: knit_repro::cobj::Image) -> i64 {
    let mut m = machine::Machine::new(image).expect("machine");
    m.run_entry().expect("runs")
}

/// Phase `runs` deltas between two stats snapshots, for precision asserts.
fn run_deltas(before: &SessionStats, after: &SessionStats) -> [(String, usize); 8] {
    let d = |n: &str, b: knit_repro::knit::PhaseCount, a: knit_repro::knit::PhaseCount| {
        (n.to_string(), a.runs - b.runs)
    };
    [
        d("elaborate", before.elaborate, after.elaborate),
        d("constraints", before.constraints, after.constraints),
        d("schedule", before.schedule, after.schedule),
        d("unit_compiles", before.unit_compiles, after.unit_compiles),
        d("objcopy", before.objcopy, after.objcopy),
        d("flatten", before.flatten, after.flatten),
        d("generate", before.generate, after.generate),
        d("link", before.link, after.link),
    ]
}

fn assert_deltas(got: &[(String, usize)], want: &[(&str, usize)]) {
    for (name, runs) in got {
        let expect = want.iter().find(|(n, _)| n == name).map(|(_, r)| *r).unwrap_or(0);
        assert_eq!(*runs, expect, "phase `{name}` reran {runs} times, expected {expect}");
    }
}

// ---------------------------------------------------------------------------
// precision: exactly the invalidated phases rerun
// ---------------------------------------------------------------------------

/// An unchanged session rebuild runs nothing at all — not even a phase
/// fingerprint recomputation is visible in the stats.
#[test]
fn unchanged_rebuild_is_fully_memoized() {
    let mut s = session();
    let cold = s.build().expect("cold build");
    assert_eq!(run_to_exit(cold.image.clone()), 42);

    let before = s.stats().clone();
    let again = s.build().expect("no-op rebuild");
    assert_eq!(s.stats().full_reuse_builds, 1, "second build must take the fast path");
    assert_deltas(&run_deltas(&before, s.stats()), &[]);
    assert_eq!(again.stats.units_compiled, 0);
    assert_eq!(again.image, cold.image, "fast path must return the same image");
}

/// Editing one C body reruns exactly that unit's compile, its instances'
/// objcopy, and the final link — elaboration, constraints, the schedule,
/// and the boot object are all reused.
#[test]
fn c_body_edit_recompiles_one_unit_and_relinks() {
    let mut s = session();
    s.build().expect("cold build");

    let before = s.stats().clone();
    s.update_source("value.c", &value_c(41));
    let report = s.build().expect("incremental build");
    assert_deltas(
        &run_deltas(&before, s.stats()),
        &[("unit_compiles", 1), ("objcopy", 1), ("link", 1)],
    );
    assert_eq!(report.stats.units_compiled, 1, "only Value recompiles");
    assert_eq!(run_to_exit(report.image), 43, "the edit is visible in the program");
}

/// A comment-only edit to the `.unit` file reruns nothing: fingerprints
/// are span-free.
#[test]
fn comment_only_unit_edit_reruns_nothing() {
    let mut s = session();
    let cold = s.build().expect("cold build");

    let before = s.stats().clone();
    s.update_unit("inc.unit", &unit_src(false, true)).expect("reparse");
    let report = s.build().expect("rebuild");
    assert_deltas(&run_deltas(&before, s.stats()), &[]);
    assert_eq!(report.stats.units_compiled, 0);
    assert_eq!(report.image, cold.image);
}

/// Renaming a link instance is an interface-level edit: elaboration (and
/// everything downstream of the instance names — symbol maps, objcopy,
/// the boot object, the link) rerun, but no unit is recompiled.
#[test]
fn interface_edit_reelaborates_without_recompiling() {
    let mut s = session();
    let cold = s.build().expect("cold build");

    let before = s.stats().clone();
    let renamed = unit_src(false, false)
        .replace("val : Value", "core : Value")
        .replace("app : App [ v = val.v ]", "app : App [ v = core.v ]");
    s.update_unit("inc.unit", &renamed).expect("reparse");
    let report = s.build().expect("rebuild");
    let deltas = run_deltas(&before, s.stats());
    let get = |n: &str| deltas.iter().find(|(m, _)| m == n).unwrap().1;
    assert_eq!(get("elaborate"), 1, "instance names are elaboration inputs");
    assert_eq!(get("unit_compiles"), 0, "unit bodies are untouched — no recompiles");
    assert_eq!(report.stats.units_compiled, 0);
    assert_eq!(run_to_exit(report.image.clone()), 42);
    // mangled symbols are keyed by instance *index*, so the rename leaves
    // the image untouched — and a cold build of the same inputs agrees
    let cold2 = build(s.program(), s.tree(), s.options()).expect("cold rebuild");
    assert_eq!(report.image, cold2.image);
    assert_eq!(report.image, cold.image);
}

/// Editing only a `constraints { … }` clause reruns the constraint check
/// and nothing else — the image is untouched.
#[test]
fn constraint_edit_reruns_only_the_checker() {
    let mut s = session();
    let cold = s.build().expect("cold build");

    let before = s.stats().clone();
    s.update_unit("inc.unit", &unit_src(true, false)).expect("reparse");
    let report = s.build().expect("rebuild");
    assert_deltas(&run_deltas(&before, s.stats()), &[("constraints", 1)]);
    assert_eq!(report.image, cold.image, "constraints don't shape the image");
}

/// Changing the entry option reruns boot-object generation and the link;
/// compiles and elaboration are reused.
#[test]
fn entry_option_change_reruns_generate_and_link() {
    let mut s = session();
    let cold = s.build().expect("cold build");

    let before = s.stats().clone();
    let opts = BuildOptions::root("Top")
        .runtime_symbols(machine::runtime_symbols())
        .jobs(1)
        .entry("main")
        .build();
    s.set_options(opts);
    let report = s.build().expect("rebuild");
    assert_deltas(&run_deltas(&before, s.stats()), &[("generate", 1), ("link", 1)]);
    // `entry main` resolves to the same symbol the default picks
    assert_eq!(report.image, cold.image);
}

/// Changing only the worker count is not a semantic edit: the session
/// answers from the fast path.
#[test]
fn jobs_change_hits_the_fast_path() {
    let mut s = session();
    s.build().expect("cold build");

    let mut opts = s.options().clone();
    opts.jobs = 3;
    s.set_options(opts);
    let report = s.build().expect("rebuild");
    assert_eq!(s.stats().full_reuse_builds, 1, "jobs is not a build input");
    assert_eq!(report.jobs, 3, "but the report reflects the new setting");
}

/// Swapping a layout profile in (or out) invalidates exactly the link
/// phase: the objects are unchanged, only function placement moves. The
/// same profile again is a full-reuse no-op, and dropping the profile
/// restores the historical input-order image byte for byte.
#[test]
fn profile_swap_relinks_and_nothing_else() {
    let mut s = session();
    let cold = s.build().expect("cold build");
    assert_eq!(run_to_exit(cold.image.clone()), 42);

    // collect a real profile by running the built image instrumented
    let mut m = machine::Machine::new(cold.image.clone()).expect("machine");
    m.set_profiling(true);
    m.run_entry().expect("runs");
    let profile = std::sync::Arc::new(m.profile().layout_profile());

    let before = s.stats().clone();
    s.set_profile(Some(profile.clone()));
    let laid = s.build().expect("pgo rebuild");
    assert_deltas(&run_deltas(&before, s.stats()), &[("link", 1)]);
    assert_eq!(run_to_exit(laid.image.clone()), 42, "layout is a semantic permutation");

    // the same profile again is not a change at all
    let before = s.stats().clone();
    s.set_profile(Some(profile));
    s.build().expect("same-profile rebuild");
    assert_deltas(&run_deltas(&before, s.stats()), &[]);

    // dropping the profile relinks back to the historical placement
    let before = s.stats().clone();
    s.set_profile(None);
    let back = s.build().expect("unprofiled rebuild");
    assert_deltas(&run_deltas(&before, s.stats()), &[("link", 1)]);
    assert_eq!(back.image, cold.image, "no profile must restore input-order placement");
}

// ---------------------------------------------------------------------------
// diagnostics: session build errors blame the offending `.unit` line
// ---------------------------------------------------------------------------

/// A build rejected mid-pipeline surfaces a [`knit::Diagnostic`] whose
/// span points at the `.unit` declaration at fault (here: `Wrap` on
/// line 3 needs a `rename`).
#[test]
fn session_error_diagnostics_blame_the_unit_line() {
    let mut s = BuildSession::new(
        BuildOptions::root("Sys").runtime_symbols(machine::runtime_symbols()).build(),
    );
    s.load_units(
        "inc.unit",
        r#"
bundletype T = { f }
unit Wrap = { imports [ i : T ]; exports [ o : T ]; files { "w.c" }; }
unit Base = { exports [ o : T ]; files { "b.c" }; }
unit Sys = { exports [ o : T ]; link { b : Base; w : Wrap [ i = b.o ]; o = w.o; }; }
"#,
    )
    .expect("parses");
    s.update_source("w.c", "int f() { return 1; }");
    s.update_source("b.c", "int f() { return 2; }");
    let err = s.build().expect_err("Wrap exports and imports the same C name");
    assert!(matches!(err.root(), KnitError::NeedsRename { .. }), "got {err}");
    let diags = err.diagnostics();
    let span = diags[0].span.as_ref().expect("diagnostic carries a span");
    assert_eq!(span.0, "inc.unit");
    assert_eq!(span.1, 3, "span must blame unit Wrap's declaration line");
    // a failed build must not poison the session: fixing the unit builds
    let fixed = r#"
bundletype T = { f }
unit Wrap = { imports [ i : T ]; exports [ o : T ]; files { "w.c" }; rename { i.f to inner_f; }; }
unit Base = { exports [ o : T ]; files { "b.c" }; }
unit Sys = { exports [ o : T ]; link { b : Base; w : Wrap [ i = b.o ]; o = w.o; }; }
"#;
    s.update_unit("inc.unit", fixed).expect("reparse");
    s.update_source("w.c", "int inner_f();\nint f() { return inner_f(); }");
    s.build().expect("fixed program builds");
}

// ---------------------------------------------------------------------------
// equivalence: any session state builds the image a cold build would
// ---------------------------------------------------------------------------

/// The full Clack router through a session: one `.c` edit recompiles
/// exactly one of its ~25 units, and the image matches a cold build of
/// the edited tree.
#[test]
fn clack_router_incremental_edit_is_minimal_and_exact() {
    let (p, t, opts) = router_build_inputs(&ip_router(), false).expect("router inputs");
    let mut s = BuildSession::from_parts(p, t, opts);
    let cold = s.build().expect("cold build");
    assert!(cold.stats.units_compiled > 10, "the router is a real program");

    let edited =
        format!("{}\nstatic int incr_poke;\n", s.tree().get("counter.c").expect("counter.c"));
    s.update_source("counter.c", &edited);
    let incr = s.build().expect("incremental build");
    assert_eq!(incr.stats.units_compiled, 1, "only Counter recompiles");
    assert_eq!(incr.stats.units_reused, cold.stats.units_compiled - 1);

    let cold2 = build(s.program(), s.tree(), s.options()).expect("cold build of edited tree");
    assert_eq!(incr.image, cold2.image, "incremental image must equal a cold build");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Apply a random sequence of edits (C bodies, comment-only `.unit`
    /// tweaks, constraint changes) to one session; after every single
    /// edit the session image must be byte-identical to a cold build of
    /// the session's current program/tree/options.
    #[test]
    fn random_edit_sequences_match_cold_builds(edits in prop::collection::vec(0usize..5, 1..6)) {
        let mut s = session();
        s.build().expect("cold build");
        let (mut strict, mut comment) = (false, false);
        for (i, e) in edits.into_iter().enumerate() {
            match e {
                0 => s.update_source("value.c", &value_c(40 + i as i64)),
                1 => s.update_source("app.c", &app_c(2 + i as i64)),
                2 => { comment = !comment; s.update_unit("inc.unit", &unit_src(strict, comment)).expect("reparse"); }
                3 => { strict = !strict; s.update_unit("inc.unit", &unit_src(strict, comment)).expect("reparse"); }
                _ => s.update_source("value.c", &value_c(40)),
            }
            let incr = s.build().expect("incremental build");
            let cold = build(s.program(), s.tree(), s.options()).expect("cold build");
            prop_assert_eq!(&incr.image, &cold.image, "divergence after edit #{}", i);
            prop_assert_eq!(run_to_exit(incr.image), run_to_exit(cold.image));
        }
    }
}
