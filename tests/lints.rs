//! Integration tests for the cross-unit static analyzer (DESIGN.md §3,
//! `knit::analyze`): the pinned diagnostic stream for the intentionally
//! dirty `examples/lints/` program, lint-cleanliness of the generated
//! Clack router, pragma/CLI level composition, and the session-level
//! precision guarantee that editing one unit's source reruns analysis
//! for exactly that unit.

use std::fs;
use std::path::Path;

use knit_repro::clack::{ip_router, mc_router_build_inputs, router_build_inputs};
use knit_repro::knit::{
    lint, BuildOptions, BuildSession, LintConfig, LintLevel, Program, SourceTree,
};
use knit_repro::machine;

// ---------------------------------------------------------------------------
// fixture: examples/lints/ loaded from disk (root tests run with cwd at the
// workspace root, and the unit file registers under its repo-relative path so
// diagnostic spans match what `knitc lint examples/lints/lints.unit` prints)
// ---------------------------------------------------------------------------

const LINTS_DIR: &str = "examples/lints";
const LINTS_UNIT: &str = "examples/lints/lints.unit";
const LINTS_SOURCES: [&str; 5] = ["dirty.c", "extra.c", "logger.c", "boot.c", "appmain.c"];

fn lints_example() -> (Program, SourceTree, BuildOptions) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(LINTS_DIR);
    let mut program = Program::new();
    program.load_str(LINTS_UNIT, &fs::read_to_string(dir.join("lints.unit")).unwrap()).unwrap();
    let mut tree = SourceTree::new();
    for file in LINTS_SOURCES {
        tree.add(file, fs::read_to_string(dir.join(file)).unwrap());
    }
    (program, tree, BuildOptions::new("LintDemo", machine::runtime_symbols()))
}

/// The exact diagnostics `examples/lints/` must produce, in the canonical
/// `diag::sort_dedupe` order, rendered by `Diagnostic::human()`. One entry
/// per line of `knitc lint examples/lints/lints.unit` output (sans the
/// `knitc: ` prefix). Covers all four lint classes of the ISSUE.
const EXPECTED: [&str; 8] = [
    "warning[K1005]: examples/lints/lints.unit:19:1: unit `Dirty` (in a flatten group): \
     function `chatter` takes varargs\n  \
     note: the flattening inliner never inlines vararg functions",
    "warning[K1005]: examples/lints/lints.unit:19:1: unit `Dirty` (in a flatten group): \
     static `counter` is defined in more than one file of the unit\n  \
     note: flattening merges the unit's files; same-named statics are collision-prone \
     under source merging",
    "warning[K1005]: examples/lints/lints.unit:19:1: unit `Dirty` (in a flatten group): \
     the address of function `add` is taken\n  \
     note: calls through a function pointer defeat cross-unit inlining",
    "warning[K1002]: examples/lints/lints.unit:20:15: unit `Dirty`: imported symbol \
     `log.log_msg` (C `log_msg`) is never referenced\n  \
     note: drop the import `log` or use `log_msg`",
    "warning[K1001]: examples/lints/lints.unit:21:28: unit `Dirty`: export `x.extra_op` \
     resolves to C symbol `extra_op`, but no file of the unit defines it\n  \
     note: define `extra_op` in one of { dirty.c, extra.c } or rename the member",
    "warning[K1003]: examples/lints/lints.unit:21:28: instance `LintDemo/d`: export `x` \
     is never imported by any instance and is not a root export\n  \
     note: remove the instance or wire something to the export",
    "warning[K1003]: examples/lints/lints.unit:26:15: instance `LintDemo/spare`: export \
     `log` is never imported by any instance and is not a root export\n  \
     note: remove the instance or wire something to the export",
    "warning[K1004]: examples/lints/lints.unit:38:35: instance `LintDemo/b`: initializer \
     `boot_init` reaches a call to imported `log.log_msg` (C `log_msg`), but provider \
     `LintDemo/l`'s initializer `log_open` is scheduled later\n  \
     note: add `depends { boot_init needs (log); }` to unit `Boot` so the scheduler \
     runs `log_open` first",
];

#[test]
fn lints_example_reports_all_four_classes_exactly() {
    let (program, tree, opts) = lints_example();
    let report = lint(&program, &tree, &opts, &LintConfig::new()).unwrap();
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.human()).collect();
    assert_eq!(rendered, EXPECTED, "pinned lint output drifted");
    assert_eq!(report.units_analyzed, 4);
    assert_eq!(report.warnings(), EXPECTED.len());
    assert!(!report.has_errors(), "default levels must stay warnings");
}

#[test]
fn deny_warnings_promotes_every_diagnostic_to_error() {
    let (program, tree, opts) = lints_example();
    let mut config = LintConfig::new();
    config.deny_warnings(true);
    let report = lint(&program, &tree, &opts, &config).unwrap();
    assert!(report.has_errors());
    assert_eq!(report.errors(), EXPECTED.len());
    assert_eq!(report.warnings(), 0);
    // same findings, same order — only the severity changes
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.human()).collect();
    let expected: Vec<String> =
        EXPECTED.iter().map(|s| s.replacen("warning[", "error[", 1)).collect();
    assert_eq!(rendered, expected);
}

#[test]
fn cli_level_overrides_silence_and_promote_single_lints() {
    let (program, tree, opts) = lints_example();
    let mut config = LintConfig::new();
    config.set("dead-export", LintLevel::Allow).unwrap();
    config.set("init_order_use", LintLevel::Deny).unwrap();
    let report = lint(&program, &tree, &opts, &config).unwrap();
    assert!(!report.diagnostics.iter().any(|d| d.code == "K1003"), "allowed lint still fired");
    let k1004: Vec<_> = report.diagnostics.iter().filter(|d| d.code == "K1004").collect();
    assert_eq!(k1004.len(), 1);
    assert_eq!(k1004[0].severity, knit_repro::knit::Severity::Error);
    assert_eq!(report.errors(), 1);
}

#[test]
fn allow_pragma_on_the_unit_suppresses_matching_lints() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(LINTS_DIR);
    let src = fs::read_to_string(dir.join("lints.unit")).unwrap();
    // attach an allow pragma to unit Dirty, the source of K1001/K1002/K1005
    let patched = src.replacen(
        "unit Dirty = {",
        "#[allow(undefined_export, unused_import, flatten_hazard)]\nunit Dirty = {",
        1,
    );
    let mut program = Program::new();
    program.load_str("lints-patched.unit", &patched).unwrap();
    let mut tree = SourceTree::new();
    for file in LINTS_SOURCES {
        tree.add(file, fs::read_to_string(dir.join(file)).unwrap());
    }
    let opts = BuildOptions::new("LintDemo", machine::runtime_symbols());
    let report = lint(&program, &tree, &opts, &LintConfig::new()).unwrap();
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    // Dirty's own findings are gone; graph-level findings on other units stay
    assert_eq!(codes, ["K1003", "K1003", "K1004"], "{codes:?}");
}

// ---------------------------------------------------------------------------
// the Clack router — generated, and required to stay lint-clean
// ---------------------------------------------------------------------------

#[test]
fn clack_router_is_lint_clean() {
    let (program, tree, opts) = router_build_inputs(&ip_router(), false).unwrap();
    let report = lint(&program, &tree, &opts, &LintConfig::new()).unwrap();
    assert_eq!(report.errors(), 0, "router must have zero lint errors: {:#?}", report.diagnostics);
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.human()).collect();
    assert_eq!(rendered, Vec::<String>::new(), "router must be fully lint-clean");
    assert!(report.units_analyzed > 0, "analyzer must have visited the router units");
}

// ---------------------------------------------------------------------------
// the sharded multi-core router — lint-clean for the concurrency lints, and
// pinned to produce exactly one K1006 when the acquire is deleted
// ---------------------------------------------------------------------------

#[test]
fn mc_router_is_lint_clean_for_concurrency_lints() {
    let (program, tree, opts) = mc_router_build_inputs(4, false).unwrap();
    let mut config = LintConfig::new();
    config.deny_warnings(true);
    let report = lint(&program, &tree, &opts, &config).unwrap();
    let conc: Vec<&knit_repro::knit::Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| ["K1006", "K1007", "K1008", "K1009"].contains(&d.code))
        .collect();
    assert!(conc.is_empty(), "sharded router must be race-lint-clean: {conc:#?}");
}

/// Since PR 3 the oskit corpus carried three K1002 findings (EXPERIMENTS.md);
/// they are now annotated at the unit definitions, so every kernel in the kit
/// lints clean — including the concurrency lints, whose only corpus finding
/// (K1008 on the lock providers, which return holding the lock by design) is
/// likewise `#[allow]`ed. Pin that, so a corpus edit can't silently regress.
#[test]
fn oskit_corpus_is_lint_clean() {
    use knit_repro::oskit;
    let (program, tree) = oskit::setup();
    let mut config = LintConfig::new();
    config.deny_warnings(true);
    for root in [
        oskit::KERNEL_HELLO,
        oskit::KERNEL_HELLO_SERIAL,
        oskit::KERNEL_FS,
        oskit::KERNEL_REDIRECT,
        oskit::KERNEL_IRQ_GOOD,
        oskit::KERNEL_LOCK,
        oskit::KERNEL_LOCK_SPIN,
        oskit::KERNEL_NETECHO,
        oskit::KERNEL_UPTIME,
    ] {
        let opts = oskit::kernel_options(root);
        let report = lint(&program, &tree, &opts, &config).unwrap();
        assert!(report.diagnostics.is_empty(), "{root}: {:#?}", report.diagnostics);
    }
}

#[test]
fn deleting_the_acquire_is_exactly_one_k1006() {
    let (program, mut tree, opts) = mc_router_build_inputs(4, false).unwrap();
    let sq = tree.get("shared_queue.c").expect("shared_queue.c in the tree").to_string();
    assert_eq!(sq.matches("lock = 1;").count(), 1, "one acquire to delete");
    tree.add("shared_queue.c", sq.replace("lock = 1;", ""));
    let report = lint(&program, &tree, &opts, &LintConfig::new()).unwrap();
    // Exactly one unguarded-shared-write: the ring buffer itself. The other
    // fallout of the deleted acquire is a set of K1009 atomicity hints on the
    // downstream egress counters (which really do become unguarded), but no
    // spurious K1007/K1008, and no second K1006 — in particular the analyzer
    // must keep recognizing `lock` as a lock word even though its only
    // nonzero assignment is gone.
    let k1006: Vec<_> = report.diagnostics.iter().filter(|d| d.code == "K1006").collect();
    assert_eq!(k1006.len(), 1, "{:#?}", report.diagnostics);
    assert!(
        k1006[0].message.contains("`ring`"),
        "the racy write is the ring escape: {}",
        k1006[0].message
    );
    assert!(
        !report.diagnostics.iter().any(|d| d.code == "K1007" || d.code == "K1008"),
        "{:#?}",
        report.diagnostics
    );
    for d in report.diagnostics.iter().filter(|d| d.code == "K1009") {
        assert!(
            d.message.contains("`ToDevice`") || d.message.contains("`Counter`"),
            "K1009 fallout should be confined to the egress chain: {}",
            d.message
        );
    }
}

// ---------------------------------------------------------------------------
// session precision: a one-unit edit reruns analysis for exactly that unit
// ---------------------------------------------------------------------------

const SESSION_UNITS: &str = r#"
bundletype FA = { fa }
bundletype FB = { fb }
bundletype Main = { main }
unit A = { exports [ pa : FA ]; files { "a.c" }; }
unit B = { imports [ pa : FA ]; exports [ pb : FB ]; files { "b.c" }; }
unit C = { imports [ pb : FB ]; exports [ main : Main ]; files { "c.c" }; }
unit Top = {
    exports [ main : Main ];
    link { a : A; b : B [ pa = a.pa ]; c : C [ pb = b.pb ]; main = c.main; };
}
"#;

#[test]
fn session_reanalyzes_exactly_the_edited_unit() {
    let mut session = BuildSession::new(BuildOptions::new("Top", machine::runtime_symbols()));
    session.load_units("t.unit", SESSION_UNITS).unwrap();
    session.update_source("a.c", "int fa() { return 1; }");
    session.update_source("b.c", "int fa();\nint fb() { return fa(); }");
    session.update_source("c.c", "int fb();\nint main() { return fb(); }");

    let config = LintConfig::new();
    let report = session.analyze(&config).unwrap();
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    // compound Top has no sources; the three atoms are summarized
    assert_eq!(report.units_analyzed, 3);
    assert_eq!(session.stats().analyze.runs, 3);
    assert_eq!(session.stats().analyze.reuses, 0);

    // no edits: everything comes out of the memo
    session.analyze(&config).unwrap();
    assert_eq!(session.stats().analyze.runs, 3);
    assert_eq!(session.stats().analyze.reuses, 3);

    // touch exactly one unit's source: exactly one summary is rebuilt
    session.update_source("b.c", "int fa();\nint fb() { return fa() + 1; }");
    let report = session.analyze(&config).unwrap();
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(session.stats().analyze.runs, 4, "only unit B reruns");
    assert_eq!(session.stats().analyze.reuses, 5, "A and C come from the memo");

    // introduce a lint in the edited unit: the incremental path must see it
    session.update_source("b.c", "int fb() { return 7; }");
    let report = session.analyze(&config).unwrap();
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["K1002"], "dropped use of import `pa` must fire unused-import");
    assert_eq!(session.stats().analyze.runs, 5);
}
