//! Integration tests for the cross-unit static analyzer (DESIGN.md §3,
//! `knit::analyze`): the pinned diagnostic stream for the intentionally
//! dirty `examples/lints/` program, lint-cleanliness of the generated
//! Clack router, pragma/CLI level composition, and the session-level
//! precision guarantee that editing one unit's source reruns analysis
//! for exactly that unit.

use std::fs;
use std::path::Path;

use knit_repro::clack::{ip_router, router_build_inputs};
use knit_repro::knit::{
    lint, BuildOptions, BuildSession, LintConfig, LintLevel, Program, SourceTree,
};
use knit_repro::machine;

// ---------------------------------------------------------------------------
// fixture: examples/lints/ loaded from disk (root tests run with cwd at the
// workspace root, and the unit file registers under its repo-relative path so
// diagnostic spans match what `knitc lint examples/lints/lints.unit` prints)
// ---------------------------------------------------------------------------

const LINTS_DIR: &str = "examples/lints";
const LINTS_UNIT: &str = "examples/lints/lints.unit";
const LINTS_SOURCES: [&str; 5] = ["dirty.c", "extra.c", "logger.c", "boot.c", "appmain.c"];

fn lints_example() -> (Program, SourceTree, BuildOptions) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(LINTS_DIR);
    let mut program = Program::new();
    program.load_str(LINTS_UNIT, &fs::read_to_string(dir.join("lints.unit")).unwrap()).unwrap();
    let mut tree = SourceTree::new();
    for file in LINTS_SOURCES {
        tree.add(file, fs::read_to_string(dir.join(file)).unwrap());
    }
    (program, tree, BuildOptions::new("LintDemo", machine::runtime_symbols()))
}

/// The exact diagnostics `examples/lints/` must produce, in the canonical
/// `diag::sort_dedupe` order, rendered by `Diagnostic::human()`. One entry
/// per line of `knitc lint examples/lints/lints.unit` output (sans the
/// `knitc: ` prefix). Covers all four lint classes of the ISSUE.
const EXPECTED: [&str; 8] = [
    "warning[K1005]: examples/lints/lints.unit:19:1: unit `Dirty` (in a flatten group): \
     function `chatter` takes varargs\n  \
     note: the flattening inliner never inlines vararg functions",
    "warning[K1005]: examples/lints/lints.unit:19:1: unit `Dirty` (in a flatten group): \
     static `counter` is defined in more than one file of the unit\n  \
     note: flattening merges the unit's files; same-named statics are collision-prone \
     under source merging",
    "warning[K1005]: examples/lints/lints.unit:19:1: unit `Dirty` (in a flatten group): \
     the address of function `add` is taken\n  \
     note: calls through a function pointer defeat cross-unit inlining",
    "warning[K1002]: examples/lints/lints.unit:20:15: unit `Dirty`: imported symbol \
     `log.log_msg` (C `log_msg`) is never referenced\n  \
     note: drop the import `log` or use `log_msg`",
    "warning[K1001]: examples/lints/lints.unit:21:28: unit `Dirty`: export `x.extra_op` \
     resolves to C symbol `extra_op`, but no file of the unit defines it\n  \
     note: define `extra_op` in one of { dirty.c, extra.c } or rename the member",
    "warning[K1003]: examples/lints/lints.unit:21:28: instance `LintDemo/d`: export `x` \
     is never imported by any instance and is not a root export\n  \
     note: remove the instance or wire something to the export",
    "warning[K1003]: examples/lints/lints.unit:26:15: instance `LintDemo/spare`: export \
     `log` is never imported by any instance and is not a root export\n  \
     note: remove the instance or wire something to the export",
    "warning[K1004]: examples/lints/lints.unit:38:35: instance `LintDemo/b`: initializer \
     `boot_init` reaches a call to imported `log.log_msg` (C `log_msg`), but provider \
     `LintDemo/l`'s initializer `log_open` is scheduled later\n  \
     note: add `depends { boot_init needs (log); }` to unit `Boot` so the scheduler \
     runs `log_open` first",
];

#[test]
fn lints_example_reports_all_four_classes_exactly() {
    let (program, tree, opts) = lints_example();
    let report = lint(&program, &tree, &opts, &LintConfig::new()).unwrap();
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.human()).collect();
    assert_eq!(rendered, EXPECTED, "pinned lint output drifted");
    assert_eq!(report.units_analyzed, 4);
    assert_eq!(report.warnings(), EXPECTED.len());
    assert!(!report.has_errors(), "default levels must stay warnings");
}

#[test]
fn deny_warnings_promotes_every_diagnostic_to_error() {
    let (program, tree, opts) = lints_example();
    let mut config = LintConfig::new();
    config.deny_warnings(true);
    let report = lint(&program, &tree, &opts, &config).unwrap();
    assert!(report.has_errors());
    assert_eq!(report.errors(), EXPECTED.len());
    assert_eq!(report.warnings(), 0);
    // same findings, same order — only the severity changes
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.human()).collect();
    let expected: Vec<String> =
        EXPECTED.iter().map(|s| s.replacen("warning[", "error[", 1)).collect();
    assert_eq!(rendered, expected);
}

#[test]
fn cli_level_overrides_silence_and_promote_single_lints() {
    let (program, tree, opts) = lints_example();
    let mut config = LintConfig::new();
    config.set("dead-export", LintLevel::Allow).unwrap();
    config.set("init_order_use", LintLevel::Deny).unwrap();
    let report = lint(&program, &tree, &opts, &config).unwrap();
    assert!(!report.diagnostics.iter().any(|d| d.code == "K1003"), "allowed lint still fired");
    let k1004: Vec<_> = report.diagnostics.iter().filter(|d| d.code == "K1004").collect();
    assert_eq!(k1004.len(), 1);
    assert_eq!(k1004[0].severity, knit_repro::knit::Severity::Error);
    assert_eq!(report.errors(), 1);
}

#[test]
fn allow_pragma_on_the_unit_suppresses_matching_lints() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join(LINTS_DIR);
    let src = fs::read_to_string(dir.join("lints.unit")).unwrap();
    // attach an allow pragma to unit Dirty, the source of K1001/K1002/K1005
    let patched = src.replacen(
        "unit Dirty = {",
        "#[allow(undefined_export, unused_import, flatten_hazard)]\nunit Dirty = {",
        1,
    );
    let mut program = Program::new();
    program.load_str("lints-patched.unit", &patched).unwrap();
    let mut tree = SourceTree::new();
    for file in LINTS_SOURCES {
        tree.add(file, fs::read_to_string(dir.join(file)).unwrap());
    }
    let opts = BuildOptions::new("LintDemo", machine::runtime_symbols());
    let report = lint(&program, &tree, &opts, &LintConfig::new()).unwrap();
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    // Dirty's own findings are gone; graph-level findings on other units stay
    assert_eq!(codes, ["K1003", "K1003", "K1004"], "{codes:?}");
}

// ---------------------------------------------------------------------------
// the Clack router — generated, and required to stay lint-clean
// ---------------------------------------------------------------------------

#[test]
fn clack_router_is_lint_clean() {
    let (program, tree, opts) = router_build_inputs(&ip_router(), false).unwrap();
    let report = lint(&program, &tree, &opts, &LintConfig::new()).unwrap();
    assert_eq!(report.errors(), 0, "router must have zero lint errors: {:#?}", report.diagnostics);
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.human()).collect();
    assert_eq!(rendered, Vec::<String>::new(), "router must be fully lint-clean");
    assert!(report.units_analyzed > 0, "analyzer must have visited the router units");
}

// ---------------------------------------------------------------------------
// session precision: a one-unit edit reruns analysis for exactly that unit
// ---------------------------------------------------------------------------

const SESSION_UNITS: &str = r#"
bundletype FA = { fa }
bundletype FB = { fb }
bundletype Main = { main }
unit A = { exports [ pa : FA ]; files { "a.c" }; }
unit B = { imports [ pa : FA ]; exports [ pb : FB ]; files { "b.c" }; }
unit C = { imports [ pb : FB ]; exports [ main : Main ]; files { "c.c" }; }
unit Top = {
    exports [ main : Main ];
    link { a : A; b : B [ pa = a.pa ]; c : C [ pb = b.pb ]; main = c.main; };
}
"#;

#[test]
fn session_reanalyzes_exactly_the_edited_unit() {
    let mut session = BuildSession::new(BuildOptions::new("Top", machine::runtime_symbols()));
    session.load_units("t.unit", SESSION_UNITS).unwrap();
    session.update_source("a.c", "int fa() { return 1; }");
    session.update_source("b.c", "int fa();\nint fb() { return fa(); }");
    session.update_source("c.c", "int fb();\nint main() { return fb(); }");

    let config = LintConfig::new();
    let report = session.analyze(&config).unwrap();
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    // compound Top has no sources; the three atoms are summarized
    assert_eq!(report.units_analyzed, 3);
    assert_eq!(session.stats().analyze.runs, 3);
    assert_eq!(session.stats().analyze.reuses, 0);

    // no edits: everything comes out of the memo
    session.analyze(&config).unwrap();
    assert_eq!(session.stats().analyze.runs, 3);
    assert_eq!(session.stats().analyze.reuses, 3);

    // touch exactly one unit's source: exactly one summary is rebuilt
    session.update_source("b.c", "int fa();\nint fb() { return fa() + 1; }");
    let report = session.analyze(&config).unwrap();
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(session.stats().analyze.runs, 4, "only unit B reruns");
    assert_eq!(session.stats().analyze.reuses, 5, "A and C come from the memo");

    // introduce a lint in the edited unit: the incremental path must see it
    session.update_source("b.c", "int fb() { return 7; }");
    let report = session.analyze(&config).unwrap();
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["K1002"], "dropped use of import `pa` must fire unused-import");
    assert_eq!(session.stats().analyze.runs, 5);
}
