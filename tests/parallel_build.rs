//! Determinism and cache-correctness tests for the parallel, cache-aware
//! build pipeline (DESIGN.md §3): `BuildOptions::jobs` must never change
//! the produced image, and the content-addressed [`knit::BuildCache`] must
//! hit exactly when unit content is unchanged.
//!
//! `build_with_cache` is deprecated (sessions are the blessed surface) but
//! keeps its one-release grace period — this suite pins its semantics
//! until it is removed.
#![allow(deprecated)]

use proptest::prelude::*;

use knit_repro::clack::{ip_router, router_build_inputs};
use knit_repro::knit::{build_with_cache, BuildCache, BuildOptions, Program, SourceTree};
use knit_repro::machine;

// ---------------------------------------------------------------------------
// determinism: jobs = 1 vs jobs = N
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Building the modular Clack router with any worker count yields the
    /// byte-identical image and identical (timing-free) statistics as the
    /// strictly serial build.
    #[test]
    fn parallel_build_is_deterministic(jobs in 2usize..9) {
        let (p, t, opts) = router_build_inputs(&ip_router(), false).expect("router inputs");
        let mut serial = opts.clone();
        serial.jobs = 1;
        let mut parallel = opts;
        parallel.jobs = jobs;
        let r1 = build_with_cache(&p, &t, &serial, &BuildCache::new()).expect("serial");
        let rn = build_with_cache(&p, &t, &parallel, &BuildCache::new()).expect("parallel");
        prop_assert_eq!(&r1.image, &rn.image, "image differs at jobs={}", jobs);
        prop_assert_eq!(&r1.stats, &rn.stats);
        prop_assert_eq!(&r1.exports, &rn.exports);
        prop_assert_eq!(&r1.schedule, &rn.schedule);
    }
}

/// Flattened builds take the parallel group-recompile path; it must be
/// just as deterministic.
#[test]
fn parallel_flattened_build_is_deterministic() {
    let (p, t, opts) = router_build_inputs(&ip_router(), true).expect("router inputs");
    let mut serial = opts.clone();
    serial.jobs = 1;
    let mut parallel = opts;
    parallel.jobs = 8;
    let r1 = build_with_cache(&p, &t, &serial, &BuildCache::new()).expect("serial");
    let rn = build_with_cache(&p, &t, &parallel, &BuildCache::new()).expect("parallel");
    assert_eq!(r1.image, rn.image);
    assert_eq!(r1.stats, rn.stats);
}

// ---------------------------------------------------------------------------
// cache correctness: warm rebuilds and precise invalidation
// ---------------------------------------------------------------------------

/// A warm rebuild of unchanged inputs compiles nothing and reproduces the
/// cold image byte for byte.
#[test]
fn warm_rebuild_compiles_nothing_and_matches_cold() {
    let (p, t, opts) = router_build_inputs(&ip_router(), false).expect("router inputs");
    let cache = BuildCache::new();
    let cold = build_with_cache(&p, &t, &opts, &cache).expect("cold");
    assert_eq!(cold.stats.cache_hits, 0, "cold build starts from an empty cache");
    assert_eq!(cold.stats.cache_misses, cold.stats.units_compiled);
    let warm = build_with_cache(&p, &t, &opts, &cache).expect("warm");
    assert_eq!(warm.stats.cache_misses, 0, "warm rebuild must not run cmini");
    assert_eq!(warm.stats.cache_hits, cold.stats.units_compiled);
    assert_eq!(warm.image, cold.image, "cache must reproduce the image exactly");
    assert!(warm.unit_compiles.iter().all(|u| u.cache_hit));
}

/// Editing one C file invalidates exactly the unit that compiles it; every
/// other unit still hits.
#[test]
fn editing_one_source_invalidates_exactly_its_unit() {
    let (p, mut t, opts) = router_build_inputs(&ip_router(), false).expect("router inputs");
    let cache = BuildCache::new();
    let cold = build_with_cache(&p, &t, &opts, &cache).expect("cold");
    let total = cold.stats.units_compiled;

    // counter.c belongs to the Counter unit alone (nothing includes it)
    let counter = t.get("counter.c").expect("counter.c in the tree").to_string();
    t.add("counter.c", format!("{counter}\nstatic int cache_poke;\n"));

    let rebuilt = build_with_cache(&p, &t, &opts, &cache).expect("rebuild");
    assert_eq!(rebuilt.stats.cache_misses, 1, "only Counter should recompile");
    assert_eq!(rebuilt.stats.cache_hits, total - 1);
    let miss: Vec<&str> =
        rebuilt.unit_compiles.iter().filter(|u| !u.cache_hit).map(|u| u.unit.as_str()).collect();
    assert_eq!(miss, ["Counter"]);
}

/// Editing a shared header invalidates every unit that (transitively)
/// includes it — the hash is over *preprocessed* text, so `#include`
/// changes are seen — while units that don't include it still hit.
#[test]
fn editing_a_shared_header_invalidates_every_includer() {
    let (p, mut t, opts) = router_build_inputs(&ip_router(), false).expect("router inputs");
    let cache = BuildCache::new();
    let cold = build_with_cache(&p, &t, &opts, &cache).expect("cold");
    let total = cold.stats.units_compiled;

    let header = t.get("include/clack.h").expect("clack.h in the tree").to_string();
    t.add("include/clack.h", format!("{header}\n#define CLACK_POKE 1\n"));

    let rebuilt = build_with_cache(&p, &t, &opts, &cache).expect("rebuild");
    // every element unit includes clack.h; the 13 generated parameter
    // units and the merge shims don't
    assert!(
        rebuilt.stats.cache_misses >= 10,
        "all element units include clack.h: {} misses of {total}",
        rebuilt.stats.cache_misses
    );
    assert!(
        rebuilt.stats.cache_hits >= 10,
        "generated parameter units don't include clack.h and must still hit: {} hits",
        rebuilt.stats.cache_hits
    );
    assert_eq!(rebuilt.stats.cache_hits + rebuilt.stats.cache_misses, total);
}

// ---------------------------------------------------------------------------
// flag invalidation, on a small self-contained program
// ---------------------------------------------------------------------------

fn tiny_program(flags: &str) -> (Program, SourceTree, BuildOptions) {
    let units = format!(
        r#"
bundletype Main = {{ main }}
bundletype Val = {{ value }}
flags FastFlags = {{ {flags} }}
unit Value = {{
    exports [ v : Val ];
    files {{ "value.c" }} with flags FastFlags;
}}
unit App = {{
    imports [ v : Val ];
    exports [ m : Main ];
    depends {{ exports needs imports; }};
    files {{ "app.c" }};
}}
unit Top = {{
    exports [ m : Main ];
    link {{
        val : Value;
        app : App [ v = val.v ];
        m = app.m;
    }};
}}
"#
    );
    let mut p = Program::new();
    p.load_str("tiny.unit", &units).expect("tiny program parses");
    let mut t = SourceTree::new();
    t.add(
        "value.c",
        "#ifdef BUMP\nint value() { return 41; }\n#else\nint value() { return 40; }\n#endif\n",
    );
    t.add("app.c", "int value();\nint main() { return value() + 2; }\n");
    (p, t, BuildOptions::new("Top", machine::runtime_symbols()))
}

/// Changing one unit's compiler flags invalidates that unit's cache entry
/// and no other — and the recompile actually picks up the new flags.
#[test]
fn changing_unit_flags_invalidates_exactly_that_unit() {
    let cache = BuildCache::new();
    let (p, t, opts) = tiny_program(r#""-O2""#);
    let cold = build_with_cache(&p, &t, &opts, &cache).expect("cold");
    assert_eq!(cold.stats.units_compiled, 2);
    assert_eq!(run_to_exit(cold.image), 42);

    // same sources, but Value now compiles with -DBUMP
    let (p2, t2, opts2) = tiny_program(r#""-O2", "-DBUMP""#);
    let rebuilt = build_with_cache(&p2, &t2, &opts2, &cache).expect("rebuild");
    assert_eq!(rebuilt.stats.cache_misses, 1, "only Value saw a flag change");
    assert_eq!(rebuilt.stats.cache_hits, 1, "App is untouched and must hit");
    let miss: Vec<&str> =
        rebuilt.unit_compiles.iter().filter(|u| !u.cache_hit).map(|u| u.unit.as_str()).collect();
    assert_eq!(miss, ["Value"]);
    assert_eq!(run_to_exit(rebuilt.image), 43, "the recompile honours the new define");
}

fn run_to_exit(image: knit_repro::cobj::Image) -> i64 {
    let mut m = machine::Machine::new(image).expect("machine");
    m.run_entry().expect("runs")
}
