//! Property-based tests over the profile-guided layout pipeline: a layout
//! is only ever a *permutation* of the program. Whatever profile the linker
//! is fed — accurate, stale, or pure garbage — the image must contain the
//! same functions, compute the same results, and spend the same non-stall
//! cycles; only instruction-fetch behaviour may change.

use proptest::prelude::*;

use knit_repro::cmini;
use knit_repro::cobj::{self, Layout, LayoutProfile};
use knit_repro::machine::{self, Machine};

/// Compile a call DAG: `f0` is a leaf; each `fi` combines its argument
/// with calls to some lower-numbered functions. One object per function,
/// like separately compiled translation units.
fn compile_dag(callees: &[Vec<usize>]) -> Vec<cobj::LinkInput> {
    let mut inputs = Vec::new();
    for (i, cs) in callees.iter().enumerate() {
        let mut decls = String::new();
        let mut body = format!("int f{i}(int x) {{ int acc = x * {} + {i}; ", i + 2);
        for &c in cs {
            decls.push_str(&format!("int f{c}(int x);\n"));
            body.push_str(&format!("acc = acc + f{c}(x - 1); "));
        }
        body.push_str("return acc; }\n");
        let src = format!("{decls}{body}");
        let obj = cmini::compile_simple(&format!("f{i}.c"), &src).expect("dag function compiles");
        inputs.push(cobj::LinkInput::Object(obj));
    }
    inputs
}

fn link_with(inputs: &[cobj::LinkInput], layout: Layout) -> cobj::Image {
    cobj::link(
        inputs,
        &cobj::LinkOptions {
            entry: None,
            runtime_symbols: machine::runtime_symbols().collect(),
            layout,
        },
    )
    .expect("links")
}

/// `(name, size)` multiset of an image's functions, order-independent.
fn func_set(img: &cobj::Image) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = img.funcs.iter().map(|f| (f.name.clone(), f.size)).collect();
    v.sort();
    v
}

fn run(img: &cobj::Image, entry: &str, arg: i64) -> (i64, u64) {
    let mut m = Machine::new(img.clone()).expect("machine");
    let r = m.call(entry, &[arg]).expect("runs");
    let c = m.counters();
    (r, c.cycles - c.ifetch_stall_cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any profile — including edges naming functions that don't exist,
    /// weights over arbitrary subsets, or nothing at all — yields a
    /// permutation of the input-order image: same function set, same
    /// results, same non-stall cycles. And the profile-guided link is
    /// deterministic: linking twice gives byte-identical images.
    #[test]
    fn profile_guided_layout_is_a_semantic_permutation(
        // 2..7 functions; each calls a subset of the lower-numbered ones
        calls in prop::collection::vec(prop::collection::vec(any::<prop::sample::Index>(), 0..3), 1..6),
        edges in prop::collection::vec(
            ((0usize..8), (0usize..8), (0u64..10_000)),
            0..12
        ),
        hot in prop::collection::vec(((0usize..8), (1u64..1_000)), 0..6),
        garbage_edge in any::<bool>(),
        arg in 1i64..50,
    ) {
        // resolve the call DAG (f0 is the forced leaf)
        let mut callees: Vec<Vec<usize>> = vec![vec![]];
        for (i, picks) in calls.iter().enumerate() {
            let lower = i + 1; // callees must come from 0..lower
            let mut cs: Vec<usize> = picks.iter().map(|p| p.index(lower)).collect();
            cs.sort();
            cs.dedup();
            callees.push(cs);
        }
        let n = callees.len();
        let inputs = compile_dag(&callees);
        let entry = format!("f{}", n - 1);

        let mut profile = LayoutProfile::default();
        for (a, b, w) in &edges {
            profile.record_edge(format!("f{a}"), format!("f{b}"), *w);
        }
        for (f, c) in &hot {
            profile.record_func(format!("f{f}"), *c);
        }
        if garbage_edge {
            profile.record_edge("no_such_fn", "also_missing", 123_456);
        }

        let base = link_with(&inputs, Layout::InputOrder);
        let laid = link_with(&inputs, Layout::ProfileGuided(profile.clone()));
        let again = link_with(&inputs, Layout::ProfileGuided(profile.clone()));

        // determinism: same objects + same profile → byte-identical image
        prop_assert_eq!(&laid, &again);
        // an empty profile must not move anything at all
        if profile.is_empty() {
            prop_assert_eq!(&laid, &base);
        }

        // permutation: same functions, same sizes, same total text
        prop_assert_eq!(func_set(&laid), func_set(&base));
        prop_assert_eq!(laid.text_size, base.text_size);

        // semantics: same answer, same non-stall cycles
        let (r0, work0) = run(&base, &entry, arg);
        let (r1, work1) = run(&laid, &entry, arg);
        prop_assert_eq!(r0, r1);
        prop_assert_eq!(work0, work1, "layout must only change fetch stalls");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The profile JSON codec round-trips arbitrary symbol names and
    /// counts exactly, and hashing is insensitive to insertion order.
    #[test]
    fn profile_json_roundtrip_and_stable_hash(
        names in prop::collection::vec("[ -~]{1,12}", 1..6),
        counts in prop::collection::vec(0u64..u64::MAX / 2, 6..7),
        indirect in any::<bool>(),
    ) {
        let mut p = machine::Profile::default();
        for (i, w) in names.windows(2).enumerate() {
            p.edges.push(machine::CallEdge {
                caller: w[0].clone(),
                callee: w[1].clone(),
                indirect,
                count: counts[i % counts.len()],
            });
        }
        p.funcs.push(machine::FuncCount { name: names[0].clone(), instructions: counts[0] });
        p.edges.sort();
        p.edges.dedup();
        let rt = machine::Profile::from_json(&p.to_json()).expect("round-trips");
        prop_assert_eq!(&rt, &p);
        prop_assert_eq!(rt.stable_hash(), p.stable_hash());
    }
}
