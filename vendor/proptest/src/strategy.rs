//! Value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform};

/// How many times `prop_filter` re-draws before giving up.
const MAX_FILTER_TRIES: usize = 10_000;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (re-drawing on rejection).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected {MAX_FILTER_TRIES} draws in a row", self.reason);
    }
}

/// Always the same value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

// --- primitive strategies ---------------------------------------------------

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// String literals act as regex-subset generators (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut StdRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.random::<usize>())
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --- tuple strategies --------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
