//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of proptest's API its tests use: the [`proptest!`] macro,
//! `prop_assert*`/`prop_assume!`, [`strategy::Strategy`] with `prop_map` /
//! `prop_filter` / `boxed`, [`prop_oneof!`], [`strategy::Just`], `any::<T>()`,
//! integer-range and regex-literal strategies, `prop::collection::vec`, and
//! `prop::sample::Index`.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases from a
//! deterministic per-test seed (derived from the test name, overridable with
//! `PROPTEST_SEED`). There is **no shrinking** — a failure reports the seed
//! and case number, which reproduce the run exactly.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `proptest::prelude::prop` look-alike: module paths used by tests.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The usual glob import surface.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::test_runner::run_cases(&__cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Assert a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($lhs), stringify!($rhs), lhs, rhs, format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Discard the current case (retried without counting) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Choose uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
