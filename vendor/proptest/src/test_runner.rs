//! Case runner: deterministic seeds, reject/retry, failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration (only `cases` is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!`); it is retried and does not
    /// count toward the case total.
    Reject(String),
    /// The case failed (`prop_assert*`).
    Fail(String),
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `cases` successful iterations of `case`, panicking on failure with
/// enough information (seed + case number) to reproduce the run.
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
        Err(_) => fnv1a(name.as_bytes()),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = cfg.cases.saturating_mul(16).max(1024);
    let mut i: u32 = 0;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected cases ({rejected}); \
                         last reason: {why} (seed {seed})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {i} (seed {seed}):\n{msg}");
            }
        }
        i += 1;
    }
}
