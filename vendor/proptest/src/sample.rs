//! Sampling helpers (`prop::sample::Index`).

/// An arbitrary index into any slice: the stored draw is reduced modulo the
/// slice length at use time, so one generated `Index` is valid for slices
/// of any (non-zero) length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Wrap a raw draw.
    pub fn new(raw: usize) -> Index {
        Index(raw)
    }

    /// The element of `slice` this index selects.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "Index::get on an empty slice");
        &slice[self.0 % slice.len()]
    }

    /// The index this draw selects for a collection of `len` elements.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index with len 0");
        self.0 % len
    }
}
