//! Generator for the regex subset this workspace's tests use as string
//! strategies: literals, `[...]` character classes with ranges, `.`,
//! escaped characters, `\PC` (printable), and `{m}` / `{m,n}` repetition.

use rand::rngs::StdRng;
use rand::RngExt;

#[derive(Debug, Clone)]
enum Atom {
    /// One character drawn from this set.
    Class(Vec<char>),
    /// Exactly this character.
    Literal(char),
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7F).map(char::from).collect()
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated character class");
        match c {
            ']' => break,
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = prev.take().expect("range start");
                let hi = chars.next().expect("range end");
                for v in lo as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(v) {
                        set.push(ch);
                    }
                }
            }
            '\\' => {
                if let Some(p) = prev.take() {
                    set.push(p);
                }
                prev = Some(chars.next().expect("escape in class"));
            }
            _ => {
                if let Some(p) = prev.take() {
                    set.push(p);
                }
                prev = Some(c);
            }
        }
    }
    if let Some(p) = prev {
        set.push(p);
    }
    assert!(!set.is_empty(), "empty character class");
    set
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut out = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '.' => Atom::Class(printable_ascii()),
            '\\' => {
                let e = chars.next().expect("dangling escape");
                match e {
                    // `\PC` — "not a control character"; approximated as
                    // printable ASCII, a valid subset for generation.
                    'P' => {
                        let cat = chars.next().expect("category after \\P");
                        assert_eq!(cat, 'C', "only \\PC is supported");
                        Atom::Class(printable_ascii())
                    }
                    'd' => Atom::Class(('0'..='9').collect()),
                    'w' => {
                        let mut s: Vec<char> = ('a'..='z').collect();
                        s.extend('A'..='Z');
                        s.extend('0'..='9');
                        s.push('_');
                        Atom::Class(s)
                    }
                    other => Atom::Literal(other),
                }
            }
            other => Atom::Literal(other),
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.parse().expect("repetition lower bound"),
                    b.parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push((atom, lo, hi));
    }
    out
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for (atom, lo, hi) in parse(pattern) {
        let count = if lo == hi { lo } else { rng.random_range(lo..hi + 1) };
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.random_range(0..set.len())]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn patterns_shape_output() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let id = generate("[a-z][a-z0-9_]{0,10}", &mut rng);
            assert!((1..=11).contains(&id.len()), "{id:?}");
            assert!(id.chars().next().unwrap().is_ascii_lowercase());
            let f = generate("[a-z]{1,8}\\.c", &mut rng);
            assert!(f.ends_with(".c"), "{f:?}");
            let any = generate("\\PC{0,300}", &mut rng);
            assert!(any.len() <= 300);
            assert!(any.chars().all(|c| !c.is_control()));
        }
    }
}
