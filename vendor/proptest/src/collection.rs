//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// Strategy for a `Vec` whose length is drawn from `size` and whose
/// elements come from `element`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "vec strategy needs a non-empty size range");
    VecStrategy { element, size }
}
