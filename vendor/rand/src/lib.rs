//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the *tiny* slice of the `rand` 0.10 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! sampling helpers (`random`, `random_range`, `random_bool`). The generator
//! is xoshiro256** seeded through SplitMix64 — deterministic for a given
//! seed, which is all the workloads and property tests require.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for rand's
    /// `StdRng`; statistical quality is more than enough for workload
    /// generation and property tests).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable over a half-open range.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`; `lo < hi` required.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "random_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounding: bias is negligible at these spans.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling helpers, mirroring rand 0.10's `Rng`/`RngExt` surface.
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform draw from `range` (half-open `lo..hi`).
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(0..100);
            assert!(v < 100);
            let w = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&w));
        }
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
    }
}
