//! Offline stand-in for the `criterion` crate.
//!
//! Supports the surface this workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `finish` — timing each closure with `std::time::Instant`
//! and printing mean/min per sample. No warm-up modelling, outlier analysis,
//! or HTML reports.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _c: self, sample_size: 10 }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark: `f` is called once per sample with a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
        }
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "  {id:32} mean {:>12.3} ms   min {:>12.3} ms   ({} samples)",
            mean.as_secs_f64() * 1e3,
            min.as_secs_f64() * 1e3,
            samples.len()
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; [`Bencher::iter`] times its argument.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Time one execution of `f` (called once per sample here; real
    /// criterion batches, which this stand-in does not need).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(out);
    }
}

/// Group several bench functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// The bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
