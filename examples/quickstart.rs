//! Quickstart: the paper's running example (Figures 5 and 6) end to end.
//!
//! A web server's `serve_web` is wrapped by a logging unit; the logging
//! unit's `open_log` initializer depends on stdio being initialized first,
//! so Knit schedules `stdio_init` before `open_log` automatically — the
//! §3.2 subtlety that "open_log needs stdio" orders components while
//! "serveLog needs stdio" alone would not.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use knit_repro::knit::{build, BuildOptions, Program, SourceTree};
use knit_repro::machine::{self, Machine};

const UNITS: &str = r#"
bundletype Serve = { serve_web }
bundletype Stdio = { fopen, fprintf }
bundletype Main = { main }
flags CFlags = { "-O2" }

unit Web = {
    imports [ serveFile : Serve, serveCGI : Serve ];
    exports [ serveWeb : Serve ];
    depends { serveWeb needs (serveFile + serveCGI); };
    files { "web.c" } with flags CFlags;
    rename {
        serveFile.serve_web to serve_file;
        serveCGI.serve_web to serve_cgi;
    };
}

unit Log = {
    imports [ serveWeb : Serve, stdio : Stdio ];
    exports [ serveLog : Serve ];
    initializer open_log for serveLog;
    finalizer close_log for serveLog;
    depends {
        open_log needs stdio;
        close_log needs stdio;
        serveLog needs (serveWeb + stdio);
    };
    files { "log.c" } with flags CFlags;
    rename {
        serveWeb.serve_web to serve_unlogged;
        serveLog.serve_web to serve_logged;
    };
}

unit FileServer = { exports [ serve : Serve ]; files { "file.c" } with flags CFlags; }
unit CgiServer  = { exports [ serve : Serve ]; files { "cgi.c" } with flags CFlags; }

unit StdioUnit = {
    exports [ stdio : Stdio ];
    initializer stdio_init for stdio;
    files { "stdio.c" } with flags CFlags;
}

unit Driver = {
    imports [ serve : Serve ];
    exports [ main : Main ];
    depends { main needs serve; };
    files { "driver.c" } with flags CFlags;
}

unit WebServer = {
    exports [ main : Main ];
    link {
        fserve : FileServer;
        cgi : CgiServer;
        io : StdioUnit;
        web : Web [ serveFile = fserve.serve, serveCGI = cgi.serve ];
        log : Log [ serveWeb = web.serveWeb, stdio = io.stdio ];
        drv : Driver [ serve = log.serveLog ];
        main = drv.main;
    };
}
"#;

fn sources() -> SourceTree {
    let mut t = SourceTree::new();
    // Figure 6's web.c, verbatim in spirit.
    t.add(
        "web.c",
        r#"
int serve_file(int s, char *path);
int serve_cgi(int s, char *path);
static int strncmp_(char *a, char *b, int n) {
    for (int i = 0; i < n; i++) {
        if (a[i] != b[i]) return a[i] - b[i];
        if (a[i] == 0) return 0;
    }
    return 0;
}
int serve_web(int s, char *path) {
    if (!strncmp_(path, "/cgi-bin/", 9))
        return serve_cgi(s, path + 9);
    else
        return serve_file(s, path);
}
"#,
    );
    // Figure 6's log.c.
    t.add(
        "log.c",
        r#"
int fopen(char *path, char *mode);
int fprintf(int f, char *fmt, ...);
int serve_unlogged(int s, char *path);
static int log;
void open_log() {
    log = fopen("ServerLog", "a");
}
void close_log() {
    fprintf(log, "-- log closed --\n");
}
int serve_logged(int s, char *path) {
    int r;
    r = serve_unlogged(s, path);
    fprintf(log, "%s -> %d\n", path, r);
    return r;
}
"#,
    );
    t.add("file.c", "int serve_web(int s, char *path) { return 200; }\n");
    t.add("cgi.c", "int serve_web(int s, char *path) { return 201; }\n");
    t.add(
        "stdio.c",
        r#"
int __con_putc(int c);
static int ready = 0;
void stdio_init() { ready = 1; }
int fopen(char *path, char *mode) { return ready ? 3 : -1; }
static void put_str(char *s) { while (*s) { __con_putc(*s); s++; } }
static void put_int(int v) {
    if (v < 0) { __con_putc('-'); v = -v; }
    if (v >= 10) put_int(v / 10);
    __con_putc('0' + v % 10);
}
int fprintf(int f, char *fmt, ...) {
    int argi = 0;
    if (f < 0) return -1;
    while (*fmt) {
        if (*fmt == '%') {
            fmt++;
            if (*fmt == 'd') put_int(__vararg(argi));
            if (*fmt == 's') put_str((char*)__vararg(argi));
            argi++;
        } else {
            __con_putc(*fmt);
        }
        fmt++;
    }
    return 0;
}
"#,
    );
    t.add(
        "driver.c",
        r#"
int serve_web(int s, char *path);
int main() {
    int a = serve_web(1, "/index.html");
    int b = serve_web(2, "/cgi-bin/status");
    return a + b;
}
"#,
    );
    t
}

fn main() {
    let mut program = Program::new();
    program.load_str("webserver.unit", UNITS).expect("unit file parses");
    let tree = sources();

    let report =
        build(&program, &tree, &BuildOptions::new("WebServer", machine::runtime_symbols()))
            .expect("web server builds");

    println!("== build ==");
    println!("instances: {}", report.stats.instances);
    println!("initializer schedule (note stdio_init before open_log):");
    for s in &report.schedule {
        println!("  {s}");
    }

    let mut m = Machine::new(report.image).expect("machine boots");
    let code = m.run_entry().expect("kernel runs");
    println!("\n== run ==");
    println!("exit code: {code}");
    println!("console:\n{}", m.console.output);
}
