//! §5.2's Clack: a Click configuration, written in the Click language,
//! compiled to Knit units, built, and driven with packets — then the same
//! configuration under a `flatten` boundary (§6) for comparison.
//!
//! ```text
//! cargo run --release --example clack_router
//! ```

use knit_repro::clack::{self, config, packets, RouterHarness};

/// The canonical two-interface IP router, in the Click language (§5.2's
/// `FromDevice(eth0) -> Counter -> Discard` style, full-size).
const CONFIG: &str = r#"
    from0 :: FromDevice(0);
    from1 :: FromDevice(1);
    cls0 :: Classifier(12/0800, -);
    cls1 :: Classifier(12/0800, -);
    ttl :: DecIPTTL;
    rt :: LookupIPRoute(10.0.1.0/24 0, 10.0.2.0/24 1);
    chk0 :: CheckIPHeader;
    chk1 :: CheckIPHeader;
    dcls :: Discard;
    dbad :: Discard;
    dttl :: Discard;
    drt :: Discard;

    from0 -> Counter -> cls0;
    from1 -> Counter -> cls1;
    cls0[0] -> Strip(14) -> chk0;
    cls1[0] -> Strip(14) -> chk1;
    cls0[1] -> dcls;
    cls1[1] -> dcls;
    chk0[0] -> ttl;
    chk1[0] -> ttl;
    chk0[1] -> dbad;
    chk1[1] -> dbad;
    ttl[0] -> rt;
    ttl[1] -> dttl;
    rt[0] -> EtherEncap(0) -> Queue(4) -> Counter -> ToDevice(0);
    rt[1] -> EtherEncap(1) -> Queue(4) -> Counter -> ToDevice(1);
    rt[2] -> drt;
"#;

fn main() {
    let graph = config::parse(CONFIG).expect("Click config parses");
    println!(
        "parsed Click config: {} elements, {} connections",
        graph.elems.len(),
        graph.edges.len()
    );

    let work = packets::workload(&packets::WorkloadOptions {
        count: 256,
        pct_non_ip: 5,
        pct_ttl_expired: 5,
        pct_no_route: 5,
        ..Default::default()
    });

    for flatten in [false, true] {
        let label = if flatten { "flattened" } else { "modular" };
        let report = clack::build_clack_router(&graph, flatten).expect("router builds");
        println!(
            "\n== {label} build: {} unit instances, {} bytes of text ==",
            report.elaboration.instances.len(),
            report.stats.text_size
        );
        let mut h = RouterHarness::new(&report).expect("harness");
        let m = h.measure(&work).expect("measure");
        let out0 = h.collect(0);
        let out1 = h.collect(1);
        println!("forwarded: {} to port 0, {} to port 1", out0.len(), out1.len());
        println!(
            "dropped:   {} (non-IP, bad header, expired TTL, or no route)",
            work.len() - out0.len() - out1.len()
        );
        println!(
            "cost:      {} cycles/packet ({} i-fetch stall cycles/packet)",
            m.cycles_per_packet, m.ifetch_stalls_per_packet
        );
        // every forwarded frame has a decremented TTL and a valid checksum
        for f in out0.iter().chain(out1.iter()) {
            assert!(packets::frame_checksum_ok(f));
        }
    }
    println!("\n(flattening preserved every forwarded byte; see `--bin table1` for Table 1)");
}
