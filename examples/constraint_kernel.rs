//! §4's architectural constraint checking on real kernel configurations.
//!
//! The mini-OSKit ships two interrupt kernels that differ in ONE line of
//! wiring: the interrupt handler's lock is a spinlock (safe anywhere) or a
//! blocking mutex (requires a process context). The `context` property —
//! `type ProcessContext < NoContext` — lets the checker reject the second
//! configuration before anything is compiled, reproducing the paper's
//! check "that code executing without a process context will never call
//! code that requires a process context".
//!
//! ```text
//! cargo run --example constraint_kernel
//! ```

use knit_repro::machine::Machine;
use knit_repro::oskit;

fn main() {
    println!("== good kernel: interrupt handler over a spinlock ==");
    let good = oskit::build_kernel(oskit::KERNEL_IRQ_GOOD).expect("spinlock kernel passes");
    if let Some(c) = &good.constraints {
        println!(
            "constraints: {} checked over {} variables in {} iterations",
            c.constraints, c.vars, c.iterations
        );
    }
    let mut m = Machine::new(good.image).expect("machine");
    let r = m.run_entry().expect("runs");
    println!("kernel ran, returned {r}; console: {}", m.console.output.trim_end());

    println!("\n== bad kernel: the same handler over a blocking mutex ==");
    match oskit::build_kernel(oskit::KERNEL_IRQ_BAD) {
        Err(e) => {
            println!("rejected at configuration time, before compiling anything:");
            println!("  {e}");
        }
        Ok(_) => panic!("the unsafe configuration must not build"),
    }

    println!("\n== the same application works over either lock in process context ==");
    for k in [oskit::KERNEL_LOCK, oskit::KERNEL_LOCK_SPIN] {
        let report = oskit::build_kernel(k).expect("lock kernels pass constraints");
        let mut m = Machine::new(report.image).expect("machine");
        let r = m.run_entry().expect("runs");
        println!("  {k}: returned {r}");
    }
}
