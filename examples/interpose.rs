//! Figure 1(c): interposition is impossible with `ld`, trivial with Knit.
//!
//! We try to slip a call-counting component between a client and a worker
//! that both speak the symbol `serve`:
//!
//! * with the bag-of-objects linker, including both providers of `serve`
//!   is a multiple-definition error — "the bag of objects does not provide
//!   enough linking information" to build the three-piece puzzle;
//! * with Knit, interposition is just different wiring in a link block,
//!   touching neither component's source.
//!
//! ```text
//! cargo run --example interpose
//! ```

use knit_repro::cmini;
use knit_repro::cobj::{self, LinkInput, LinkOptions};
use knit_repro::knit::{build, BuildOptions, Program, SourceTree};
use knit_repro::machine::{self, Machine};

const WORKER_C: &str = "int serve(int x) {\n    return x * 2;\n}\n";
const COUNTER_C: &str = r#"
int inner_serve(int x);
static int calls;
int serve(int x) {
    calls++;
    return inner_serve(x);
}
int call_count() {
    return calls;
}
"#;
const MAIN_C: &str = r#"
int serve(int x);
int call_count();
int main() {
    int a = serve(10);
    int b = serve(11);
    return call_count() * 100 + a + b;
}
"#;

fn try_with_ld() {
    println!("== attempt 1: plain ld, bag of objects ==");
    let copts = cmini::CompileOptions::default();
    let worker = cmini::compile("worker.c", WORKER_C, &copts, &cmini::NoFiles).unwrap();
    let counter = cmini::compile("counter.c", COUNTER_C, &copts, &cmini::NoFiles).unwrap();
    let main_o = cmini::compile("main.c", MAIN_C, &copts, &cmini::NoFiles).unwrap();
    let result = cobj::link(
        &[LinkInput::Object(main_o), LinkInput::Object(counter), LinkInput::Object(worker)],
        &LinkOptions::new("main", machine::runtime_symbols()),
    );
    match result {
        Err(e) => println!("ld fails, as Figure 1(c) predicts:\n  {e}\n"),
        Ok(_) => println!("unexpectedly linked?!\n"),
    }
}

fn with_knit() {
    println!("== attempt 2: Knit units ==");
    let mut p = Program::new();
    p.load_str(
        "interpose.unit",
        r#"
        bundletype Serve = { serve }
        bundletype Stats = { call_count }
        bundletype Main = { main }

        unit Worker = { exports [ out : Serve ]; files { "worker.c" }; }

        // the counter both imports and exports Serve; renaming the import
        // resolves the identifier conflict (§3.2)
        unit CallCounter = {
            imports [ inner : Serve ];
            exports [ out : Serve, stats : Stats ];
            depends { exports needs imports; };
            files { "counter.c" };
            rename { inner.serve to inner_serve; };
        }

        unit App = {
            imports [ serve : Serve, stats : Stats ];
            exports [ main : Main ];
            depends { exports needs imports; };
            files { "main.c" };
        }

        unit System = {
            exports [ main : Main ];
            link {
                w : Worker;
                c : CallCounter [ inner = w.out ];
                app : App [ serve = c.out, stats = c.stats ];
                main = app.main;
            };
        }
        "#,
    )
    .unwrap();
    let mut t = SourceTree::new();
    t.add("worker.c", WORKER_C);
    t.add("counter.c", COUNTER_C);
    t.add("main.c", MAIN_C);

    let report = build(&p, &t, &BuildOptions::new("System", machine::runtime_symbols())).unwrap();
    let mut m = Machine::new(report.image).unwrap();
    let code = m.run_entry().unwrap();
    println!("Knit links it: same sources, interposition by wiring alone.");
    println!("exit code = {code}  (2 counted calls -> 200, plus 20 + 22)");
    assert_eq!(code, 242);
}

fn main() {
    try_with_ld();
    with_knit();
}
