//! §5.1's multiple-instantiation example: "OSKit device drivers generate
//! output by calling printf, which is also used for application output.
//! Redirecting device driver output without Knit requires creating two
//! separate copies of printf … Using Knit, interposition and configuration
//! changes can be implemented and tested in just a few minutes."
//!
//! The RedirectKernel instantiates the SAME `Printf` unit twice — Knit
//! duplicates the object code per instance (the `objcopy` step) — wiring
//! one copy to the VGA console and one to the serial console, and renames
//! the two imports apart in the application.
//!
//! ```text
//! cargo run --example redirect_printf
//! ```

use knit_repro::machine::Machine;
use knit_repro::oskit;

fn main() {
    let report = oskit::build_kernel(oskit::KERNEL_REDIRECT).expect("redirect kernel builds");
    println!(
        "built: {} instances from {} compiled units (Printf compiled once, instantiated twice)",
        report.stats.instances, report.stats.units_compiled
    );

    let mut m = Machine::new(report.image).expect("machine");
    m.run_entry().expect("runs");

    println!("\nVGA console (application output):");
    for line in m.console.output.lines() {
        println!("  | {line}");
    }
    println!("\nserial console (device-driver output):");
    for line in m.serial.output.lines() {
        println!("  | {line}");
    }

    assert!(m.console.output.contains("app:"));
    assert!(!m.console.output.contains("drv:"));
    assert!(m.serial.output.contains("drv:"));
    assert!(!m.serial.output.contains("app:"));
    println!("\noutputs fully separated — two independent printf instances, one source file");
}
