int run();
int add(int a, int b);

int main() {
    return add(run(), 1);
}
