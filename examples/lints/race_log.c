/* A shared event log with every lock-discipline mistake the analyzer
 * knows about, one per static. Two spin locks exist; the statics below
 * are guarded badly on purpose. */

static int lock_a;
static int lock_b;

static int events; /* K1006: written with no lock held */
static int depth;  /* K1007: lock_a on one path, lock_b on the other */
static int hits;   /* K1009: unguarded read-modify-write */

void log_event(int v)
{
    events = v;
    hits++;
}

void log_push(int v)
{
    while (lock_a) { }
    lock_a = 1;
    depth = depth + v;
    lock_a = 0;
}

void log_pop(int v)
{
    while (lock_b) { }
    lock_b = 1;
    depth = depth - v;
    lock_b = 0;
}

int log_begin(void)
{
    while (lock_a) { }
    lock_a = 1;
    return depth; /* oops: no lock_a = 0 on the way out */
}
