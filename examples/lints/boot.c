void log_msg(char *m);

int booted;

/* Calls an import from an initializer without a depends clause (K1004). */
int boot_init() {
    log_msg("booting");
    booted = 1;
    return 0;
}

int run() {
    return booted;
}
