int log_calls;

void log_msg(char *m) {
    log_calls += 1;
}

void log_open() {
    log_calls = 0;
}
