/* Intentionally lint-dirty; see lints.unit. */

static int counter; /* extra.c defines another static `counter` (K1005) */

int add(int a, int b) {
    counter += 1;
    return a + b;
}

/* varargs: the flattening inliner never inlines this (K1005) */
int chatter(int n, ...) {
    return n + counter;
}

/* address-taken: calls through the pointer defeat inlining (K1005) */
int (*handler)(int, int) = &add;
