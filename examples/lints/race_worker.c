/* One core's worker: hammers the shared log through every entry point.
 * log_begin comes last so the leaked lock_a does not (accidentally)
 * guard the earlier calls in this function's lockset. */

void log_event(int v);
void log_push(int v);
void log_pop(int v);
int log_begin(void);

int work(int n)
{
    log_event(n);
    log_push(n);
    log_pop(n);
    return log_begin();
}
