/* Second file of unit Dirty. Deliberately does NOT define `extra_op`,
 * the member of the exported `x : Extra` bundle (K1001), and duplicates
 * dirty.c's static `counter` (K1005). */

static int counter;

int use_counter() {
    counter += 2;
    return counter;
}
