/* Console-backed stdio with an initializer. */
int __con_putc(int c);

static int ready = 0;

void stdio_init() { ready = 1; }

int fopen(char *path, char *mode) { return ready ? 3 : -1; }

static void put_str(char *s) { while (*s) { __con_putc(*s); s++; } }

static void put_int(int v) {
    if (v < 0) { __con_putc('-'); v = -v; }
    if (v >= 10) put_int(v / 10);
    __con_putc('0' + v % 10);
}

int fprintf(int f, char *fmt, ...) {
    int argi = 0;
    if (f < 0) return -1;
    while (*fmt) {
        if (*fmt == '%') {
            fmt++;
            if (*fmt == 'd') put_int(__vararg(argi));
            if (*fmt == 's') put_str((char*)__vararg(argi));
            argi++;
        } else {
            __con_putc(*fmt);
        }
        fmt++;
    }
    return 0;
}
