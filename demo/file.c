int serve_web(int s, char *path) { return 200; }
