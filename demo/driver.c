int serve_web(int s, char *path);

int main() {
    serve_web(1, "/index.html");
    serve_web(2, "/cgi-bin/status");
    return 0;
}
