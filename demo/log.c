/* Figure 6's log.c: wrap serve_web with logging. */
int fopen(char *path, char *mode);
int fprintf(int f, char *fmt, ...);
int serve_unlogged(int s, char *path);

static int log;

void open_log() {
    log = fopen("ServerLog", "a");
}

void close_log() {
    fprintf(log, "-- log closed --\n");
}

int serve_logged(int s, char *path) {
    int r;
    r = serve_unlogged(s, path);
    fprintf(log, "%s -> %d\n", path, r);
    return r;
}
