//! `knit-repro` — umbrella package for the Rust reproduction of
//! *Knit: Component Composition for Systems Software* (OSDI 2000).
//!
//! The actual functionality lives in the workspace crates; this package
//! re-exports them so the root `examples/` and `tests/` can reach everything
//! through one dependency:
//!
//! * [`knit`] — the paper's contribution: the component language semantics,
//!   elaboration, initializer scheduling, constraint checking, and the
//!   build pipeline.
//! * [`knit_lang`] — front end (lexer/parser) for the Knit language.
//! * [`cmini`] — a mini-C compiler substrate.
//! * [`cobj`] — object files, `objcopy`-style renaming, and a bag-of-objects
//!   `ld` baseline.
//! * [`flatten`] — cross-component optimization (source merging).
//! * [`machine`] — the execution substrate with a cycle/I-cache cost model.
//! * [`oskit`] — a mini component kit in the spirit of the Flux OSKit.
//! * [`clack`] — the Click-subset modular router used by the evaluation.

pub use clack;
pub use cmini;
pub use cobj;
pub use flatten;
pub use knit;
pub use knit_lang;
pub use machine;
pub use oskit;
